//! Property-based tests for the tensor substrate.

use proptest::prelude::*;
use snn_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_backward_input, gemm, max_pool2d,
    max_pool2d_backward, Conv2dSpec, Pool2dSpec, Tensor, Transpose,
};

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |v| Tensor::from_vec(v, &[r, c]).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A B) C == A (B C) within fp tolerance.
    #[test]
    fn matmul_associative(
        a in small_matrix(6),
        bv in proptest::collection::vec(-5.0f32..5.0, 36),
        cv in proptest::collection::vec(-5.0f32..5.0, 36),
    ) {
        let k = a.dims()[1];
        let b = Tensor::from_vec(bv[..k * 4].to_vec(), &[k, 4]).expect("sized");
        let c = Tensor::from_vec(cv[..4 * 3].to_vec(), &[4, 3]).expect("sized");
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let scale = 1.0 + left.abs_max();
        prop_assert!(left.allclose(&right, 1e-3 * scale));
    }

    /// (A B)^T == B^T A^T.
    #[test]
    fn matmul_transpose_identity(a in small_matrix(6)) {
        let k = a.dims()[1];
        let b = Tensor::full(&[k, 5], 0.5);
        let ab_t = a.matmul(&b).unwrap().transpose().unwrap();
        let bt_at = gemm(&b, Transpose::Yes, &a, Transpose::Yes).unwrap();
        prop_assert!(ab_t.allclose(&bt_at, 1e-4));
    }

    /// Convolution is linear in its input: conv(x + y) == conv(x) + conv(y).
    #[test]
    fn conv_linear_in_input(
        xv in proptest::collection::vec(-2.0f32..2.0, 2 * 4 * 4),
        yv in proptest::collection::vec(-2.0f32..2.0, 2 * 4 * 4),
        wv in proptest::collection::vec(-1.0f32..1.0, 3 * 2 * 9),
    ) {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let x = Tensor::from_vec(xv, &[1, 2, 4, 4]).expect("sized");
        let y = Tensor::from_vec(yv, &[1, 2, 4, 4]).expect("sized");
        let w = Tensor::from_vec(wv, &[3, 2, 3, 3]).expect("sized");
        let lhs = conv2d(&x.add(&y).unwrap(), &w, None, &spec).unwrap();
        let rhs = conv2d(&x, &w, None, &spec)
            .unwrap()
            .add(&conv2d(&y, &w, None, &spec).unwrap())
            .unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    /// Adjoint identity: <conv(x), g> == <x, conv_backward_input(g)>.
    #[test]
    fn conv_backward_is_adjoint(
        xv in proptest::collection::vec(-2.0f32..2.0, 2 * 4 * 4),
        gv in proptest::collection::vec(-2.0f32..2.0, 3 * 4 * 4),
        wv in proptest::collection::vec(-1.0f32..1.0, 3 * 2 * 9),
    ) {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let x = Tensor::from_vec(xv, &[1, 2, 4, 4]).expect("sized");
        let g = Tensor::from_vec(gv, &[1, 3, 4, 4]).expect("sized");
        let w = Tensor::from_vec(wv, &[3, 2, 3, 3]).expect("sized");
        let y = conv2d(&x, &w, None, &spec).unwrap();
        let xt = conv2d_backward_input(&g, &w, &spec, (4, 4)).unwrap();
        let lhs: f32 = y.as_slice().iter().zip(g.as_slice()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.as_slice().iter().zip(xt.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() <= 1e-2 * (1.0 + lhs.abs()));
    }

    /// Max pooling output is bounded by input extrema and backward conserves
    /// gradient mass.
    #[test]
    fn max_pool_bounds_and_mass(
        xv in proptest::collection::vec(-5.0f32..5.0, 16),
        gv in proptest::collection::vec(-1.0f32..1.0, 4),
    ) {
        let x = Tensor::from_vec(xv, &[1, 1, 4, 4]).expect("sized");
        let spec = Pool2dSpec::new(2, 2);
        let (y, arg) = max_pool2d(&x, &spec).unwrap();
        prop_assert!(y.max() <= x.max() + 1e-6);
        prop_assert!(y.min() >= x.min() - 1e-6);
        let g = Tensor::from_vec(gv, &[1, 1, 2, 2]).expect("sized");
        let gin = max_pool2d_backward(&g, &arg, &[1, 1, 4, 4]).unwrap();
        prop_assert!((gin.sum() - g.sum()).abs() < 1e-5);
    }

    /// Average pooling preserves the mean; its backward conserves mass.
    #[test]
    fn avg_pool_mean_and_mass(xv in proptest::collection::vec(-5.0f32..5.0, 16)) {
        let x = Tensor::from_vec(xv, &[1, 1, 4, 4]).expect("sized");
        let spec = Pool2dSpec::new(2, 2);
        let y = avg_pool2d(&x, &spec).unwrap();
        prop_assert!((y.mean() - x.mean()).abs() < 1e-4);
        let g = Tensor::full(&[1, 1, 2, 2], 1.0);
        let gin = avg_pool2d_backward(&g, &spec, &[1, 1, 4, 4]).unwrap();
        prop_assert!((gin.sum() - g.sum()).abs() < 1e-5);
    }
}
