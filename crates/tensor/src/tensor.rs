use serde::{Deserialize, Serialize};
use std::fmt;

use crate::{gemm, Shape, ShapeError, Transpose};

/// Owned, row-major, `f32` N-dimensional array.
///
/// This is the numeric workhorse of the reproduction: activations, weights,
/// membrane voltages and hardware traces all flow through `Tensor`.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
///
/// # fn main() -> Result<(), snn_tensor::ShapeError> {
/// let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3])?;
/// let relu = t.map(|x| x.max(0.0));
/// assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given dimensions.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let data = vec![0.0; shape.len()];
        Self { shape, data }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let data = vec![value; shape.len()];
        Self { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len()` does not equal the product of
    /// `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(
                "from_vec",
                format!("{} elements into shape {shape}", data.len()),
            ));
        }
        Ok(Self { shape, data })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at multi-index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank mismatch or out-of-bounds index.
    pub fn at(&self, idx: &[usize]) -> Result<f32, ShapeError> {
        Ok(self.data[self.shape.offset(idx)?])
    }

    /// Sets the element at multi-index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on rank mismatch or out-of-bounds index.
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<(), ShapeError> {
        let off = self.shape.offset(idx)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data reinterpreted under new dims.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if !shape.same_len(&self.shape) {
            return Err(ShapeError::new(
                "reshape",
                format!("{} -> {shape}", self.shape),
            ));
        }
        Ok(Self {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self, ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                "zip",
                format!("{} vs {}", self.shape, other.shape),
            ));
        }
        Ok(Self {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self, ShapeError> {
        self.zip(other, |a, b| a * b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), ShapeError> {
        if self.shape != other.shape {
            return Err(ShapeError::new(
                "axpy",
                format!("{} vs {}", self.shape, other.shape),
            ));
        }
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum of `|x|` over all elements (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element (first one on ties).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Matrix product of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either operand is not rank-2 or the inner
    /// dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, ShapeError> {
        gemm(self, Transpose::No, other, Transpose::No)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the tensor is not rank-2.
    pub fn transpose(&self) -> Result<Tensor, ShapeError> {
        if self.shape.rank() != 2 {
            return Err(ShapeError::new(
                "transpose",
                format!("rank {} tensor", self.shape.rank()),
            ));
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// True when every pairwise difference is at most `tol` in magnitude.
    ///
    /// Shapes must match; otherwise returns `false`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} {:?}", self.shape, &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn eye_matmul_is_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_slice(&[1.0, -3.0, 2.0]);
        assert_eq!(a.sum(), 0.0);
        assert_eq!(a.max(), 2.0);
        assert_eq!(a.min(), -3.0);
        assert_eq!(a.abs_max(), 3.0);
        assert_eq!(a.argmax(), Some(2));
    }

    #[test]
    fn argmax_empty_is_none() {
        let a = Tensor::from_vec(Vec::new(), &[0]).unwrap();
        assert_eq!(a.argmax(), None);
    }

    #[test]
    fn zip_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0 + 1e-7, 2.0 - 1e-7]);
        assert!(a.allclose(&b, 1e-6));
        assert!(!a.allclose(&b, 1e-9));
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]).unwrap();
        let r = a.reshape(&[3, 2]).unwrap();
        assert_eq!(r.as_slice(), a.as_slice());
        assert!(a.reshape(&[4]).is_err());
    }
}
