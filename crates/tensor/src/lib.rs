//! Minimal N-dimensional `f32` tensor substrate for the TTFS-CAT reproduction.
//!
//! The paper trains VGG-style convolutional networks before converting them to
//! spiking networks. The Rust DNN ecosystem is thin, so this crate provides the
//! dense-math substrate from scratch: an owned row-major [`Tensor`], a blocked
//! GEMM, im2col-based 2-D convolution (forward and both backward passes),
//! max/average pooling, and weight initializers.
//!
//! # Example
//!
//! ```
//! use snn_tensor::Tensor;
//!
//! # fn main() -> Result<(), snn_tensor::ShapeError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

mod conv;
mod error;
mod init;
mod matmul;
mod pool;
mod shape;
mod tensor;

pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weight, im2col, Conv2dSpec};
pub use error::ShapeError;
pub use init::{kaiming_normal, uniform, xavier_uniform};
pub use matmul::{gemm, Transpose};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Pool2dSpec};
pub use shape::Shape;
pub use tensor::Tensor;
