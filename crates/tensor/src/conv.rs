use crate::{gemm, ShapeError, Tensor, Transpose};

/// Geometry of a 2-D convolution (NCHW layout, square stride/padding).
///
/// # Example
///
/// ```
/// use snn_tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 16, 3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a convolution spec.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an `h`×`w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Rows of the im2col matrix: `in_channels * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Number of multiply-accumulate operations for one sample on an
    /// `h`×`w` input (used by the hardware cost model).
    pub fn macs(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.output_hw(h, w);
        self.out_channels * oh * ow * self.col_rows()
    }
}

/// Unfolds one `[C, H, W]` image into an im2col matrix
/// `[C*k*k, out_h*out_w]`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not rank-3 or its channel count
/// disagrees with `spec`.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor, ShapeError> {
    let dims = input.dims();
    if dims.len() != 3 || dims[0] != spec.in_channels {
        return Err(ShapeError::new(
            "im2col",
            format!("expected [{}, H, W], got {:?}", spec.in_channels, dims),
        ));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let rows = spec.col_rows();
    let cols = oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let src = input.as_slice();
    let pad = spec.padding as isize;
    let stride = spec.stride;

    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let dst_row = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = oy as isize * stride as isize + ki as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_base = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = ox as isize * stride as isize + kj as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        dst_row[oy * ow + ox] = src[src_base + ix as usize];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Folds an im2col-layout gradient back into a `[C, H, W]` image,
/// accumulating overlapping contributions (inverse of [`im2col`] in the
/// adjoint sense).
fn col2im(cols: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let c = spec.in_channels;
    let n_cols = oh * ow;
    let mut out = vec![0.0f32; c * h * w];
    let src = cols.as_slice();
    let pad = spec.padding as isize;
    let stride = spec.stride;

    for ci in 0..c {
        for ki in 0..k {
            for kj in 0..k {
                let row = (ci * k + ki) * k + kj;
                let src_row = &src[row * n_cols..(row + 1) * n_cols];
                for oy in 0..oh {
                    let iy = oy as isize * stride as isize + ki as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dst_base = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = ox as isize * stride as isize + kj as isize - pad;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[dst_base + ix as usize] += src_row[oy * ow + ox];
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[c, h, w]).expect("col2im buffer sized to shape")
}

/// 2-D convolution forward pass.
///
/// * `input`: `[N, C, H, W]`
/// * `weight`: `[out_c, C, k, k]`
/// * `bias`: `[out_c]` or `None`
///
/// Returns `[N, out_c, oh, ow]`.
///
/// # Errors
///
/// Returns [`ShapeError`] if any operand disagrees with `spec`.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<Tensor, ShapeError> {
    let idims = input.dims();
    if idims.len() != 4 || idims[1] != spec.in_channels {
        return Err(ShapeError::new(
            "conv2d",
            format!("input {:?} vs spec {:?}", idims, spec),
        ));
    }
    let wdims = weight.dims();
    if wdims
        != [
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ]
    {
        return Err(ShapeError::new(
            "conv2d",
            format!("weight {:?} vs spec {:?}", wdims, spec),
        ));
    }
    if let Some(b) = bias {
        if b.dims() != [spec.out_channels] {
            return Err(ShapeError::new(
                "conv2d",
                format!("bias {:?} vs out_channels {}", b.dims(), spec.out_channels),
            ));
        }
    }
    let (n, _, h, w) = (idims[0], idims[1], idims[2], idims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    let w_mat = weight.reshape(&[spec.out_channels, spec.col_rows()])?;
    let mut out = vec![0.0f32; n * spec.out_channels * oh * ow];
    let plane = spec.in_channels * h * w;
    let out_plane = spec.out_channels * oh * ow;

    for s in 0..n {
        let img = Tensor::from_vec(
            input.as_slice()[s * plane..(s + 1) * plane].to_vec(),
            &[spec.in_channels, h, w],
        )?;
        let cols = im2col(&img, spec)?;
        let res = gemm(&w_mat, Transpose::No, &cols, Transpose::No)?;
        let dst = &mut out[s * out_plane..(s + 1) * out_plane];
        dst.copy_from_slice(res.as_slice());
        if let Some(b) = bias {
            for oc in 0..spec.out_channels {
                let bv = b.as_slice()[oc];
                for v in &mut dst[oc * oh * ow..(oc + 1) * oh * ow] {
                    *v += bv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, spec.out_channels, oh, ow])
}

/// Gradient of the convolution with respect to its input.
///
/// `grad_out` is `[N, out_c, oh, ow]`; returns `[N, C, H, W]` where
/// `(H, W)` is `input_hw`.
///
/// # Errors
///
/// Returns [`ShapeError`] on operand/spec mismatch.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    input_hw: (usize, usize),
) -> Result<Tensor, ShapeError> {
    let (h, w) = input_hw;
    let (oh, ow) = spec.output_hw(h, w);
    let gdims = grad_out.dims();
    if gdims.len() != 4 || gdims[1] != spec.out_channels || gdims[2] != oh || gdims[3] != ow {
        return Err(ShapeError::new(
            "conv2d_backward_input",
            format!(
                "grad {:?} vs expected [N, {}, {oh}, {ow}]",
                gdims, spec.out_channels
            ),
        ));
    }
    let n = gdims[0];
    let w_mat = weight.reshape(&[spec.out_channels, spec.col_rows()])?;
    let out_plane = spec.out_channels * oh * ow;
    let in_plane = spec.in_channels * h * w;
    let mut out = vec![0.0f32; n * in_plane];

    for s in 0..n {
        let g = Tensor::from_vec(
            grad_out.as_slice()[s * out_plane..(s + 1) * out_plane].to_vec(),
            &[spec.out_channels, oh * ow],
        )?;
        // cols_grad = W^T (out_c x rows)^T * g
        let cols_grad = gemm(&w_mat, Transpose::Yes, &g, Transpose::No)?;
        let img_grad = col2im(&cols_grad, spec, h, w);
        out[s * in_plane..(s + 1) * in_plane].copy_from_slice(img_grad.as_slice());
    }
    Tensor::from_vec(out, &[n, spec.in_channels, h, w])
}

/// Gradients of the convolution with respect to weight and bias.
///
/// Returns `(grad_weight [out_c, C, k, k], grad_bias [out_c])`, both summed
/// over the batch.
///
/// # Errors
///
/// Returns [`ShapeError`] on operand/spec mismatch.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_out: &Tensor,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor), ShapeError> {
    let idims = input.dims();
    if idims.len() != 4 || idims[1] != spec.in_channels {
        return Err(ShapeError::new(
            "conv2d_backward_weight",
            format!("input {:?} vs spec {:?}", idims, spec),
        ));
    }
    let (n, _, h, w) = (idims[0], idims[1], idims[2], idims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    let in_plane = spec.in_channels * h * w;
    let out_plane = spec.out_channels * oh * ow;

    let mut gw = Tensor::zeros(&[spec.out_channels, spec.col_rows()]);
    let mut gb = Tensor::zeros(&[spec.out_channels]);

    for s in 0..n {
        let img = Tensor::from_vec(
            input.as_slice()[s * in_plane..(s + 1) * in_plane].to_vec(),
            &[spec.in_channels, h, w],
        )?;
        let cols = im2col(&img, spec)?;
        let g = Tensor::from_vec(
            grad_out.as_slice()[s * out_plane..(s + 1) * out_plane].to_vec(),
            &[spec.out_channels, oh * ow],
        )?;
        let gw_s = gemm(&g, Transpose::No, &cols, Transpose::Yes)?;
        gw.axpy(1.0, &gw_s)?;
        for oc in 0..spec.out_channels {
            let row = &g.as_slice()[oc * oh * ow..(oc + 1) * oh * ow];
            gb.as_mut_slice()[oc] += row.iter().sum::<f32>();
        }
    }
    Ok((
        gw.reshape(&[
            spec.out_channels,
            spec.in_channels,
            spec.kernel,
            spec.kernel,
        ])?,
        gb,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_conv(input: &Tensor, weight: &Tensor, spec: &Conv2dSpec) -> Tensor {
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (oh, ow) = spec.output_hw(h, w);
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for s in 0..n {
            for oc in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c {
                            for ki in 0..spec.kernel {
                                for kj in 0..spec.kernel {
                                    let iy =
                                        (oy * spec.stride + ki) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kj) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    acc += input.at(&[s, ci, iy as usize, ix as usize]).unwrap()
                                        * weight.at(&[oc, ci, ki, kj]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, oc, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    fn rand_tensor(dims: &[usize], seed: u64) -> Tensor {
        // Tiny deterministic LCG; avoids pulling rand into unit tests.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let n: usize = dims.iter().product();
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5);
        }
        Tensor::from_vec(v, dims).unwrap()
    }

    #[test]
    fn conv_matches_naive_padded() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let input = rand_tensor(&[2, 2, 5, 5], 7);
        let weight = rand_tensor(&[3, 2, 3, 3], 13);
        let fast = conv2d(&input, &weight, None, &spec).unwrap();
        let slow = naive_conv(&input, &weight, &spec);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn conv_matches_naive_strided() {
        let spec = Conv2dSpec::new(1, 2, 3, 2, 0);
        let input = rand_tensor(&[1, 1, 7, 7], 3);
        let weight = rand_tensor(&[2, 1, 3, 3], 5);
        let fast = conv2d(&input, &weight, None, &spec).unwrap();
        let slow = naive_conv(&input, &weight, &spec);
        assert_eq!(fast.dims(), &[1, 2, 3, 3]);
        assert!(fast.allclose(&slow, 1e-4));
    }

    #[test]
    fn bias_adds_per_channel() {
        let spec = Conv2dSpec::new(1, 2, 1, 1, 0);
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let weight = Tensor::from_vec(vec![1.0, 0.0], &[2, 1, 1, 1]).unwrap();
        let bias = Tensor::from_slice(&[10.0, -1.0]);
        let out = conv2d(&input, &weight, Some(&bias), &spec).unwrap();
        assert_eq!(
            out.as_slice(),
            &[11.0, 12.0, 13.0, 14.0, -1.0, -1.0, -1.0, -1.0]
        );
    }

    /// Finite-difference check of both backward passes.
    #[test]
    fn gradients_match_finite_difference() {
        let spec = Conv2dSpec::new(2, 2, 3, 1, 1);
        let input = rand_tensor(&[1, 2, 4, 4], 11);
        let weight = rand_tensor(&[2, 2, 3, 3], 17);
        // Loss = sum(conv output); dL/dout = ones.
        let out = conv2d(&input, &weight, None, &spec).unwrap();
        let grad_out = Tensor::full(out.dims(), 1.0);

        let gin = conv2d_backward_input(&grad_out, &weight, &spec, (4, 4)).unwrap();
        let (gw, gb) = conv2d_backward_weight(&input, &grad_out, &spec).unwrap();
        assert_eq!(gb.dims(), &[2]);

        let eps = 1e-3;
        // Check a few input coordinates.
        for &flat in &[0usize, 5, 17, 31] {
            let mut ip = input.clone();
            ip.as_mut_slice()[flat] += eps;
            let lp = conv2d(&ip, &weight, None, &spec).unwrap().sum();
            let mut im = input.clone();
            im.as_mut_slice()[flat] -= eps;
            let lm = conv2d(&im, &weight, None, &spec).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.as_slice()[flat]).abs() < 1e-2,
                "input grad at {flat}: numeric {num} vs analytic {}",
                gin.as_slice()[flat]
            );
        }
        // Check a few weight coordinates.
        for &flat in &[0usize, 7, 20, 35] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[flat] += eps;
            let lp = conv2d(&input, &wp, None, &spec).unwrap().sum();
            let mut wm = weight.clone();
            wm.as_mut_slice()[flat] -= eps;
            let lm = conv2d(&input, &wm, None, &spec).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gw.as_slice()[flat]).abs() < 1e-2,
                "weight grad at {flat}: numeric {num} vs analytic {}",
                gw.as_slice()[flat]
            );
        }
    }

    #[test]
    fn macs_counts_inner_products() {
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
        // 8 output channels * 4x4 map * 27-long dot products
        assert_eq!(spec.macs(4, 4), 8 * 16 * 27);
    }

    #[test]
    fn im2col_rejects_wrong_channels() {
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1);
        let img = Tensor::zeros(&[2, 4, 4]);
        assert!(im2col(&img, &spec).is_err());
    }
}
