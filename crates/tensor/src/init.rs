use rand::distributions::{Distribution, Uniform};
use rand::Rng;

use crate::Tensor;

/// Kaiming (He) normal initialization for ReLU-family networks:
/// `N(0, sqrt(2 / fan_in))`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let w = snn_tensor::kaiming_normal(&[16, 3, 3, 3], 27, &mut rng);
/// assert_eq!(w.len(), 16 * 27);
/// ```
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let n: usize = dims.iter().product();
    let mut data = Vec::with_capacity(n);
    // Box-Muller transform; rand's StandardNormal lives in rand_distr which
    // we avoid pulling in for a single sampler.
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, dims).expect("sampled element count matches dims")
}

/// Xavier/Glorot uniform initialization:
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(dims, -bound, bound, rng)
}

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    assert!(lo < hi, "uniform bounds must satisfy lo < hi");
    let dist = Uniform::new(lo, hi);
    let n: usize = dims.iter().product();
    let data = (0..n).map(|_| dist.sample(rng)).collect();
    Tensor::from_vec(data, dims).expect("sampled element count matches dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_close_to_expected() {
        let mut rng = StdRng::seed_from_u64(42);
        let fan_in = 64;
        let t = kaiming_normal(&[4096], fan_in, &mut rng);
        let mean = t.mean();
        let var = t
            .as_slice()
            .iter()
            .map(|&x| (x - mean).powi(2))
            .sum::<f32>()
            / t.len() as f32;
        let expected = 2.0 / fan_in as f32;
        assert!(
            (var - expected).abs() < expected * 0.2,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[1000], -0.25, 0.25, &mut rng);
        assert!(t.max() < 0.25);
        assert!(t.min() >= -0.25);
    }

    #[test]
    fn xavier_bound_shrinks_with_fanout() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = xavier_uniform(&[1000], 10, 10, &mut rng);
        let narrow = xavier_uniform(&[1000], 1000, 1000, &mut rng);
        assert!(wide.abs_max() > narrow.abs_max());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = kaiming_normal(&[32], 8, &mut StdRng::seed_from_u64(7));
        let b = kaiming_normal(&[32], 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
