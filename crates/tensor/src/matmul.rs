use crate::{ShapeError, Tensor};

/// Whether a GEMM operand is used transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Transpose {
    /// Use the operand as stored.
    #[default]
    No,
    /// Use the operand transposed.
    Yes,
}

/// General matrix multiply `op(a) * op(b)` for rank-2 tensors.
///
/// Inner loops are written cache-friendly (ikj order) for the `No`/`No`
/// case, which dominates the training workload via im2col convolution.
/// Accumulation is in `f64` with a single final rounding to `f32`: the
/// result is then independent of summation order (to f32 precision), which
/// the SNN backends rely on — their per-spike accumulation must reproduce
/// this GEMM bit-for-bit so that kernel-grid quantization never flips a
/// spike time between backends.
///
/// # Errors
///
/// Returns [`ShapeError`] if either tensor is not rank-2 or the contracted
/// dimensions disagree.
///
/// # Example
///
/// ```
/// use snn_tensor::{gemm, Tensor, Transpose};
///
/// # fn main() -> Result<(), snn_tensor::ShapeError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// // a * a^T
/// let c = gemm(&a, Transpose::No, &a, Transpose::Yes)?;
/// assert_eq!(c.as_slice(), &[5.0, 11.0, 11.0, 25.0]);
/// # Ok(())
/// # }
/// ```
pub fn gemm(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Result<Tensor, ShapeError> {
    if a.shape().rank() != 2 || b.shape().rank() != 2 {
        return Err(ShapeError::new(
            "matmul",
            format!(
                "expected rank-2 operands, got ranks {} and {}",
                a.shape().rank(),
                b.shape().rank()
            ),
        ));
    }
    let (ar, ac) = (a.dims()[0], a.dims()[1]);
    let (br, bc) = (b.dims()[0], b.dims()[1]);
    let (m, k1) = match ta {
        Transpose::No => (ar, ac),
        Transpose::Yes => (ac, ar),
    };
    let (k2, n) = match tb {
        Transpose::No => (br, bc),
        Transpose::Yes => (bc, br),
    };
    if k1 != k2 {
        return Err(ShapeError::new(
            "matmul",
            format!("inner dimensions {k1} vs {k2}"),
        ));
    }
    let k = k1;
    let mut out = vec![0.0f64; m * n];
    let ad = a.as_slice();
    let bd = b.as_slice();

    match (ta, tb) {
        (Transpose::No, Transpose::No) => {
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av as f64 * bv as f64;
                    }
                }
            }
        }
        (Transpose::No, Transpose::Yes) => {
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                for j in 0..n {
                    let brow = &bd[j * k..(j + 1) * k];
                    let mut acc = 0.0f64;
                    for (&av, &bv) in arow.iter().zip(brow.iter()) {
                        acc += av as f64 * bv as f64;
                    }
                    out[i * n + j] = acc;
                }
            }
        }
        (Transpose::Yes, Transpose::No) => {
            // a is (k x m) stored row-major; walk k outer for locality.
            for p in 0..k {
                let arow = &ad[p * m..(p + 1) * m];
                let brow = &bd[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av as f64 * bv as f64;
                    }
                }
            }
        }
        (Transpose::Yes, Transpose::Yes) => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for p in 0..k {
                        acc += ad[p * m + i] as f64 * bd[j * k + p] as f64;
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out.into_iter().map(|v| v as f32).collect(), &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                out.as_mut_slice()[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn matches_naive() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.5 - 2.0).collect(), &[3, 4]).unwrap();
        let b = Tensor::from_vec((0..20).map(|i| (i as f32).sin()).collect(), &[4, 5]).unwrap();
        let c = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();
        assert!(c.allclose(&naive(&a, &b), 1e-5));
    }

    #[test]
    fn transposed_variants_agree() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32 * 0.3).collect(), &[3, 4]).unwrap();
        let b = Tensor::from_vec((0..20).map(|i| i as f32 * 0.1 - 1.0).collect(), &[4, 5]).unwrap();
        let base = gemm(&a, Transpose::No, &b, Transpose::No).unwrap();

        let at = a.transpose().unwrap();
        let bt = b.transpose().unwrap();
        assert!(gemm(&at, Transpose::Yes, &b, Transpose::No)
            .unwrap()
            .allclose(&base, 1e-5));
        assert!(gemm(&a, Transpose::No, &bt, Transpose::Yes)
            .unwrap()
            .allclose(&base, 1e-5));
        assert!(gemm(&at, Transpose::Yes, &bt, Transpose::Yes)
            .unwrap()
            .allclose(&base, 1e-5));
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(gemm(&a, Transpose::No, &b, Transpose::No).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(gemm(&v, Transpose::No, &b, Transpose::No).is_err());
    }
}
