use std::error::Error;
use std::fmt;

/// Error raised when tensor shapes are incompatible with the requested
/// operation.
///
/// # Example
///
/// ```
/// use snn_tensor::Tensor;
///
/// let a = Tensor::zeros(&[2, 3]);
/// let b = Tensor::zeros(&[4, 4]);
/// assert!(a.matmul(&b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    op: &'static str,
    detail: String,
}

impl ShapeError {
    /// Creates a shape error for operation `op` with a human-readable detail.
    pub fn new(op: &'static str, detail: impl Into<String>) -> Self {
        Self {
            op,
            detail: detail.into(),
        }
    }

    /// The operation that rejected the shapes (e.g. `"matmul"`).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Human-readable description of the mismatch.
    pub fn detail(&self) -> &str {
        &self.detail
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape mismatch in {}: {}", self.op, self.detail)
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_op_and_detail() {
        let e = ShapeError::new("matmul", "2x3 vs 4x4");
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3 vs 4x4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
