use crate::{ShapeError, Tensor};

/// Geometry of a 2-D pooling window (NCHW layout, no padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Pool2dSpec {
    /// Square window extent.
    pub window: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Creates a pooling spec; `window == stride` gives non-overlapping
    /// pooling as used by VGG.
    pub fn new(window: usize, stride: usize) -> Self {
        Self { window, stride }
    }

    /// Output spatial extent for an `h`×`w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        )
    }
}

fn check_input(
    op: &'static str,
    input: &Tensor,
) -> Result<(usize, usize, usize, usize), ShapeError> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(ShapeError::new(
            op,
            format!("expected NCHW input, got {:?}", d),
        ));
    }
    Ok((d[0], d[1], d[2], d[3]))
}

/// Max pooling forward pass. Returns `(output, argmax_indices)`; the indices
/// are flat offsets into the input and feed [`max_pool2d_backward`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not rank-4.
pub fn max_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<(Tensor, Vec<usize>), ShapeError> {
    let (n, c, h, w) = check_input("max_pool2d", input)?;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    let src = input.as_slice();

    let mut o = 0usize;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let idx = base + iy * w + ix;
                            if src[idx] > best {
                                best = src[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    out[o] = best;
                    arg[o] = best_idx;
                    o += 1;
                }
            }
        }
    }
    Ok((Tensor::from_vec(out, &[n, c, oh, ow])?, arg))
}

/// Routes `grad_out` back to the argmax positions recorded by
/// [`max_pool2d`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `grad_out` element count differs from the
/// recorded index count.
pub fn max_pool2d_backward(
    grad_out: &Tensor,
    argmax: &[usize],
    input_dims: &[usize],
) -> Result<Tensor, ShapeError> {
    if grad_out.len() != argmax.len() {
        return Err(ShapeError::new(
            "max_pool2d_backward",
            format!("{} grads vs {} indices", grad_out.len(), argmax.len()),
        ));
    }
    let mut gin = Tensor::zeros(input_dims);
    let g = grad_out.as_slice();
    let dst = gin.as_mut_slice();
    for (i, &idx) in argmax.iter().enumerate() {
        dst[idx] += g[i];
    }
    Ok(gin)
}

/// Average pooling forward pass.
///
/// # Errors
///
/// Returns [`ShapeError`] if `input` is not rank-4.
pub fn avg_pool2d(input: &Tensor, spec: &Pool2dSpec) -> Result<Tensor, ShapeError> {
    let (n, c, h, w) = check_input("avg_pool2d", input)?;
    let (oh, ow) = spec.output_hw(h, w);
    let norm = 1.0 / (spec.window * spec.window) as f32;
    let mut out = vec![0.0f32; n * c * oh * ow];
    let src = input.as_slice();

    let mut o = 0usize;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            acc += src[base + (oy * spec.stride + ky) * w + ox * spec.stride + kx];
                        }
                    }
                    out[o] = acc * norm;
                    o += 1;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns [`ShapeError`] if `grad_out` is not rank-4.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    spec: &Pool2dSpec,
    input_dims: &[usize],
) -> Result<Tensor, ShapeError> {
    let (n, c, oh, ow) = check_input("avg_pool2d_backward", grad_out)?;
    let (h, w) = (input_dims[2], input_dims[3]);
    let norm = 1.0 / (spec.window * spec.window) as f32;
    let mut gin = Tensor::zeros(input_dims);
    let g = grad_out.as_slice();
    let dst = gin.as_mut_slice();

    let mut o = 0usize;
    for s in 0..n {
        for ci in 0..c {
            let base = (s * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let gv = g[o] * norm;
                    o += 1;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            dst[base + (oy * spec.stride + ky) * w + ox * spec.stride + kx] += gv;
                        }
                    }
                }
            }
        }
    }
    Ok(gin)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_max() {
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (out, arg) = max_pool2d(&input, &Pool2dSpec::new(2, 2)).unwrap();
        assert_eq!(out.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec((1..=16).map(|i| i as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let spec = Pool2dSpec::new(2, 2);
        let (_, arg) = max_pool2d(&input, &spec).unwrap();
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let gin = max_pool2d_backward(&g, &arg, &[1, 1, 4, 4]).unwrap();
        assert_eq!(gin.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gin.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(gin.sum(), 10.0);
    }

    #[test]
    fn avg_pool_averages() {
        let input = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[1, 1, 2, 2]).unwrap();
        let out = avg_pool2d(&input, &Pool2dSpec::new(2, 2)).unwrap();
        assert_eq!(out.as_slice(), &[5.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]).unwrap();
        let gin = avg_pool2d_backward(&g, &Pool2dSpec::new(2, 2), &[1, 1, 2, 2]).unwrap();
        assert_eq!(gin.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pool_output_dims() {
        assert_eq!(Pool2dSpec::new(2, 2).output_hw(32, 32), (16, 16));
        assert_eq!(Pool2dSpec::new(3, 2).output_hw(7, 7), (3, 3));
    }
}
