use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ShapeError;

/// Row-major tensor shape: a list of dimension extents.
///
/// # Example
///
/// ```
/// use snn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A scalar (rank-0) shape with one element.
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// Dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of the multi-index `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `idx` has the wrong rank or an index is out
    /// of bounds.
    pub fn offset(&self, idx: &[usize]) -> Result<usize, ShapeError> {
        if idx.len() != self.dims.len() {
            return Err(ShapeError::new(
                "index",
                format!("rank {} index into rank {} shape", idx.len(), self.rank()),
            ));
        }
        let mut off = 0usize;
        for (axis, (&i, &d)) in idx.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(ShapeError::new(
                    "index",
                    format!("index {i} out of bounds for axis {axis} of extent {d}"),
                ));
            }
            off = off * d + i;
        }
        Ok(off)
    }

    /// Whether two shapes have the same element count (reshape-compatible).
    pub fn same_len(&self, other: &Shape) -> bool {
        self.len() == other.len()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 12 + 8 + 3);
    }

    #[test]
    fn offset_rejects_bad_rank_and_oob() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 3]).is_err());
    }

    #[test]
    fn scalar_has_one_element() {
        assert_eq!(Shape::scalar().len(), 1);
        assert_eq!(Shape::scalar().rank(), 0);
    }
}
