//! Quantization-aware training (QAT) for logarithmic weights.
//!
//! The paper quantizes weights *post-training* and notes in §5 that its
//! accuracy gap to the ANN baseline "can be improved if the quantization
//! aware training is applied instead of post-training quantization". This
//! module implements that extension with the standard fake-quantization /
//! straight-through-estimator recipe (Jacob et al., CVPR 2018, which the
//! paper cites as [12]):
//!
//! 1. keep full-precision *shadow* weights;
//! 2. before each forward/backward, project rank ≥ 2 parameters onto the
//!    log-quantized grid (biases and BN affine parameters stay fp32);
//! 3. compute gradients at the quantized point (STE);
//! 4. restore the shadow weights and apply the optimizer step to them.

use rand::seq::SliceRandom;
use rand::Rng;
use snn_nn::{cross_entropy, EpochStats, NnError, Sequential, Sgd, TrainConfig};
use snn_tensor::Tensor;

use crate::{LogBase, LogQuantizer, QuantError};

/// Fake-quantization trainer for logarithmic weights.
///
/// # Example
///
/// ```
/// use snn_logquant::{LogBase, QatTrainer};
///
/// let trainer = QatTrainer::new(LogBase::inv_sqrt2(), 5);
/// assert_eq!(trainer.bits(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QatTrainer {
    base: LogBase,
    bits: u8,
}

impl QatTrainer {
    /// Creates a QAT trainer for the given base and bit width.
    pub fn new(base: LogBase, bits: u8) -> Self {
        Self { base, bits }
    }

    /// Quantization base.
    pub fn base(&self) -> LogBase {
        self.base
    }

    /// Weight bit width.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Projects every rank ≥ 2 parameter of `net` onto the quantized grid,
    /// returning the full-precision shadow copies (in visit order).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] if a weight tensor cannot be fitted (e.g.
    /// all-zero).
    pub fn project(&self, net: &mut Sequential) -> Result<Vec<Tensor>, QuantError> {
        let mut shadows = Vec::new();
        let mut failure: Option<QuantError> = None;
        let (base, bits) = (self.base, self.bits);
        net.visit_params(&mut |p, _| {
            shadows.push(p.clone());
            if p.shape().rank() >= 2 && failure.is_none() {
                match LogQuantizer::fit(base, bits, p.as_slice()) {
                    Ok(q) => *p = q.quantize_tensor(p),
                    Err(QuantError::DegenerateRange) => {} // all-zero: leave as-is
                    Err(e) => failure = Some(e),
                }
            }
        });
        match failure {
            Some(e) => Err(e),
            None => Ok(shadows),
        }
    }

    /// Restores shadow parameters captured by [`QatTrainer::project`].
    ///
    /// # Panics
    ///
    /// Panics if `shadows` does not match the network's parameter count —
    /// that indicates interleaved structural mutation, a caller bug.
    pub fn restore(&self, net: &mut Sequential, shadows: Vec<Tensor>) {
        let mut iter = shadows.into_iter();
        net.visit_params(&mut |p, _| {
            *p = iter.next().expect("shadow count matches parameter count");
        });
        assert!(
            iter.next().is_none(),
            "shadow count matches parameter count"
        );
    }

    /// One epoch of quantization-aware SGD: per batch, gradients are
    /// computed at the quantized weights (STE) and applied to the
    /// full-precision shadows.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors ([`NnError`]); quantization failures are
    /// reported as [`NnError::Config`].
    #[allow(clippy::too_many_arguments)]
    pub fn train_epoch(
        &self,
        net: &mut Sequential,
        opt: &mut Sgd,
        images: &Tensor,
        labels: &[usize],
        config: &TrainConfig,
        rng: &mut impl Rng,
    ) -> Result<EpochStats, NnError> {
        let n = images.dims()[0];
        if labels.len() != n {
            return Err(NnError::Config(format!(
                "{} labels for {n} images",
                labels.len()
            )));
        }
        if n == 0 {
            return Ok(EpochStats::default());
        }
        let sample_len = images.len() / n;
        let mut order: Vec<usize> = (0..n).collect();
        if config.shuffle {
            order.shuffle(rng);
        }
        let mut total_loss = 0.0f32;
        let mut total_correct = 0usize;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let mut dims = images.dims().to_vec();
            dims[0] = chunk.len();
            let mut data = Vec::with_capacity(chunk.len() * sample_len);
            let mut batch_labels = Vec::with_capacity(chunk.len());
            for &s in chunk {
                data.extend_from_slice(&images.as_slice()[s * sample_len..(s + 1) * sample_len]);
                batch_labels.push(labels[s]);
            }
            let bx = Tensor::from_vec(data, &dims)?;

            net.zero_grad();
            let shadows = self
                .project(net)
                .map_err(|e| NnError::Config(format!("qat projection: {e}")))?;
            let result = (|| -> Result<_, NnError> {
                let logits = net.forward(&bx, true)?;
                let out = cross_entropy(&logits, &batch_labels)?;
                net.backward(&out.grad_logits)?;
                Ok(out)
            })();
            // Always restore the fp32 shadows, even on error.
            self.restore(net, shadows);
            let out = result?;
            opt.step(net);
            total_loss += out.loss;
            total_correct += out.correct;
            batches += 1;
        }
        Ok(EpochStats {
            loss: total_loss / batches.max(1) as f32,
            accuracy: total_correct as f32 / n as f32,
        })
    }

    /// Permanently quantizes the network's rank ≥ 2 parameters (the final
    /// deployment step after QAT).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError`] as in [`QatTrainer::project`].
    pub fn finalize(&self, net: &mut Sequential) -> Result<(), QuantError> {
        self.project(net).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Layer, Relu};

    fn blobs(rng: &mut StdRng, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * 2);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { 0.25 } else { 0.75 };
            data.push(c + rng.gen_range(-0.1..0.1f32));
            data.push(c + rng.gen_range(-0.1..0.1f32));
            labels.push(label);
        }
        (Tensor::from_vec(data, &[n, 2]).unwrap(), labels)
    }

    fn net(rng: &mut StdRng) -> Sequential {
        Sequential::new(vec![
            Layer::Dense(DenseLayer::new(2, 16, rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(16, 2, rng)),
        ])
    }

    #[test]
    fn project_restore_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut n = net(&mut rng);
        let mut before = Vec::new();
        n.visit_params(&mut |p, _| before.push(p.clone()));

        let trainer = QatTrainer::new(LogBase::inv_sqrt2(), 5);
        let shadows = trainer.project(&mut n).unwrap();
        // Weights must now be on the log grid (rank-2 params changed).
        let mut quantized_weight_seen = false;
        n.visit_params(&mut |p, _| {
            if p.shape().rank() >= 2 {
                for &v in p.as_slice() {
                    if v != 0.0 {
                        let l = v.abs().log2() * 2.0;
                        assert!((l - l.round()).abs() < 1e-3, "off-grid weight {v}");
                        quantized_weight_seen = true;
                    }
                }
            }
        });
        assert!(quantized_weight_seen);
        trainer.restore(&mut n, shadows);
        let mut after = Vec::new();
        n.visit_params(&mut |p, _| after.push(p.clone()));
        assert_eq!(before, after, "restore must be exact");
    }

    #[test]
    fn qat_learns_blobs_and_finalizes_on_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let (images, labels) = blobs(&mut rng, 64);
        let mut n = net(&mut rng);
        let trainer = QatTrainer::new(LogBase::inv_sqrt2(), 5);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let config = TrainConfig {
            batch_size: 16,
            shuffle: true,
        };
        let mut last = EpochStats::default();
        for _ in 0..25 {
            last = trainer
                .train_epoch(&mut n, &mut opt, &images, &labels, &config, &mut rng)
                .unwrap();
        }
        assert!(last.accuracy > 0.9, "qat accuracy {}", last.accuracy);
        trainer.finalize(&mut n).unwrap();
        // Deployed network performs with quantized weights.
        let acc = snn_nn::evaluate(&mut n, &images, &labels, 16).unwrap();
        assert!(acc > 0.9, "finalized accuracy {acc}");
    }

    /// QAT must beat post-training quantization at an aggressive bit width
    /// — the paper's §5 improvement claim.
    #[test]
    fn qat_beats_ptq_at_low_bits() {
        let mut rng = StdRng::seed_from_u64(2);
        let (images, labels) = blobs(&mut rng, 96);
        let bits = 3u8;
        let config = TrainConfig {
            batch_size: 16,
            shuffle: true,
        };

        // PTQ: train fp32, quantize afterwards.
        let mut fp_net = net(&mut rng);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..25 {
            snn_nn::train_epoch(&mut fp_net, &mut opt, &images, &labels, &config, &mut rng)
                .unwrap();
        }
        let trainer = QatTrainer::new(LogBase::pow2(), bits);
        let mut ptq_net = fp_net.clone();
        trainer.finalize(&mut ptq_net).unwrap();
        let ptq_acc = snn_nn::evaluate(&mut ptq_net, &images, &labels, 16).unwrap();

        // QAT: same budget, fake-quantized training.
        let mut qat_net = net(&mut rng);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..25 {
            trainer
                .train_epoch(&mut qat_net, &mut opt, &images, &labels, &config, &mut rng)
                .unwrap();
        }
        trainer.finalize(&mut qat_net).unwrap();
        let qat_acc = snn_nn::evaluate(&mut qat_net, &images, &labels, 16).unwrap();
        assert!(
            qat_acc >= ptq_acc,
            "QAT ({qat_acc}) must not lose to PTQ ({ptq_acc}) at {bits} bits"
        );
    }
}
