use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

use crate::{LogBase, QuantError};

/// The hardware representation of one quantized weight: a sign, a zero
/// flag, and an exponent *code* counting `log2_step`s below the full-scale
/// range (eq. 15). With `b` bits: 1 sign bit and `b−1` exponent bits giving
/// `2^(b−1) − 1` magnitude levels plus a dedicated zero code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogCode {
    /// True for negative weights.
    pub negative: bool,
    /// Exponent steps below FSR (0 = largest magnitude). Meaningless when
    /// `zero`.
    pub steps: u16,
    /// Dedicated zero code (weights that underflow the range).
    pub zero: bool,
}

impl LogCode {
    /// The zero code.
    pub fn zeroed() -> Self {
        Self {
            negative: false,
            steps: 0,
            zero: true,
        }
    }
}

/// Post-training logarithmic weight quantizer (eq. 15, after Vogel et al.).
///
/// Fitted to a weight population: the full-scale range (FSR) anchors at the
/// largest magnitude, and every weight is rounded to the nearest power of
/// the base below it, clipped to the representable window.
///
/// # Example
///
/// ```
/// use snn_logquant::{LogBase, LogQuantizer};
///
/// # fn main() -> Result<(), snn_logquant::QuantError> {
/// let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[1.0, -0.5, 0.1])?;
/// assert_eq!(q.levels(), 15); // 2^(5-1) - 1
/// assert_eq!(q.quantize(1.0), 1.0); // FSR is exactly representable
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogQuantizer {
    base: LogBase,
    bits: u8,
    fsr_log2: f32,
}

impl LogQuantizer {
    /// Fits a quantizer to a weight population: FSR := max |w|.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadBitWidth`] for `bits < 2` and
    /// [`QuantError::DegenerateRange`] when no weight is nonzero.
    pub fn fit(base: LogBase, bits: u8, weights: &[f32]) -> Result<Self, QuantError> {
        Self::fit_slice(base, bits, weights)
    }

    /// Per-layer calibration helper: fits one quantizer to a layer's weight
    /// tensor (FSR anchors at the layer's largest magnitude, as deployment
    /// calibrates each layer independently).
    ///
    /// # Errors
    ///
    /// Same conditions as [`LogQuantizer::fit`].
    pub fn fit_tensor(base: LogBase, bits: u8, weights: &Tensor) -> Result<Self, QuantError> {
        Self::fit_slice(base, bits, weights.as_slice())
    }

    fn fit_slice(base: LogBase, bits: u8, weights: &[f32]) -> Result<Self, QuantError> {
        if bits < 2 {
            return Err(QuantError::BadBitWidth(bits));
        }
        let max = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if max <= 0.0 {
            return Err(QuantError::DegenerateRange);
        }
        // Snap the FSR exponent *up* onto the base grid so that it is a
        // representable hardware exponent (the log-domain PE shares this
        // grid) and no weight exceeds the full-scale range.
        let denom = base.denominator() as f32;
        let fsr_log2 = (max.log2() * denom).ceil() / denom;
        Ok(Self {
            base,
            bits,
            fsr_log2,
        })
    }

    /// Builds a quantizer with an explicit full-scale range (log2 of the
    /// largest representable magnitude).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadBitWidth`] for `bits < 2`.
    pub fn with_fsr(base: LogBase, bits: u8, fsr_log2: f32) -> Result<Self, QuantError> {
        if bits < 2 {
            return Err(QuantError::BadBitWidth(bits));
        }
        Ok(Self {
            base,
            bits,
            fsr_log2,
        })
    }

    /// The quantization base.
    pub fn base(&self) -> LogBase {
        self.base
    }

    /// Total bit width (1 sign + `bits−1` exponent bits).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of representable magnitude levels (`2^(bits−1) − 1`).
    pub fn levels(&self) -> u16 {
        (1u16 << (self.bits - 1)) - 1
    }

    /// log₂ of the full-scale range.
    pub fn fsr_log2(&self) -> f32 {
        self.fsr_log2
    }

    /// Encodes a weight into its hardware code.
    pub fn code(&self, w: f32) -> LogCode {
        if w == 0.0 {
            return LogCode::zeroed();
        }
        let step = self.base.log2_step();
        let n = ((self.fsr_log2 - w.abs().log2()) / step).round();
        let max_steps = (self.levels() - 1) as f32;
        // Underflow far below the smallest level becomes zero; mild
        // underflow clips to the smallest magnitude (Vogel's clip).
        if n > max_steps + 0.5 / step + (self.levels() as f32) {
            return LogCode::zeroed();
        }
        let steps = n.clamp(0.0, max_steps) as u16;
        LogCode {
            negative: w < 0.0,
            steps,
            zero: false,
        }
    }

    /// Decodes a hardware code back to its real value.
    pub fn decode(&self, code: LogCode) -> f32 {
        if code.zero {
            return 0.0;
        }
        let mag = (self.fsr_log2 - code.steps as f32 * self.base.log2_step()).exp2();
        if code.negative {
            -mag
        } else {
            mag
        }
    }

    /// Quantizes a weight (encode–decode round trip).
    pub fn quantize(&self, w: f32) -> f32 {
        self.decode(self.code(w))
    }

    /// Packs a code into one byte: bit 0 is the sign, the upper bits are
    /// the magnitude index (`0` = exact zero, `m` = `steps + 1` for
    /// `m ∈ 1..=levels()`). The magnitude space thus has `levels() + 1`
    /// entries including the dedicated zero, and the byte doubles as a
    /// direct index into [`decode_lut`](Self::decode_lut).
    ///
    /// Requires `bits ≤ 8` (the code space must fit one byte); wider
    /// quantizers are a diagnostic configuration, not a packing target.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 8`.
    pub fn pack(&self, code: LogCode) -> u8 {
        assert!(self.bits <= 8, "packed codes need bits <= 8");
        if code.zero {
            0
        } else {
            ((code.steps as u8 + 1) << 1) | u8::from(code.negative)
        }
    }

    /// Inverse of [`pack`](Self::pack). The unused `packed == 1` slot
    /// (a negative zero the encoder never emits) decodes as the zero code.
    pub fn unpack(&self, packed: u8) -> LogCode {
        if packed >> 1 == 0 {
            LogCode::zeroed()
        } else {
            LogCode {
                negative: packed & 1 == 1,
                steps: (packed >> 1) as u16 - 1,
                zero: false,
            }
        }
    }

    /// Encode straight to the packed byte.
    ///
    /// # Panics
    ///
    /// Panics if `bits > 8` (see [`pack`](Self::pack)).
    pub fn encode_packed(&self, w: f32) -> u8 {
        self.pack(self.code(w))
    }

    /// Decode a packed byte back to its real value.
    pub fn decode_packed(&self, packed: u8) -> f32 {
        self.decode(self.unpack(packed))
    }

    /// Number of packed-code slots ([`decode_lut`](Self::decode_lut)'s
    /// length): `2·levels() + 2` — `levels() + 1` magnitudes including
    /// exact zero, times the sign bit.
    pub fn packed_slots(&self) -> usize {
        2 * self.levels() as usize + 2
    }

    /// The signed decode table indexed by packed code:
    /// `decode_lut()[pack(c)] == decode(c)` **bit-for-bit** for every code
    /// `c` the encoder emits (negation is exact in IEEE 754, so folding
    /// the sign into the table loses nothing). This is the table a serving
    /// runtime resolves stored codes through instead of multiplying or
    /// re-deriving exponents per synaptic op.
    pub fn decode_lut(&self) -> Vec<f32> {
        (0..self.packed_slots())
            .map(|p| self.decode_packed(p as u8))
            .collect()
    }

    /// Quantizes every element of a tensor.
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|w| self.quantize(w))
    }

    /// log₂ of the magnitude a code represents — the operand the log-domain
    /// PE adds to the spike exponent (eq. 17).
    pub fn code_log2(&self, code: LogCode) -> Option<f32> {
        if code.zero {
            None
        } else {
            Some(self.fsr_log2 - code.steps as f32 * self.base.log2_step())
        }
    }

    /// Mean relative quantization error over a population (diagnostic used
    /// by the Fig. 4 harness).
    pub fn mean_relative_error(&self, weights: &[f32]) -> f32 {
        let mut err = 0.0f32;
        let mut n = 0usize;
        for &w in weights {
            if w.abs() > 0.0 {
                err += (self.quantize(w) - w).abs() / w.abs();
                n += 1;
            }
        }
        err / n.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q5() -> LogQuantizer {
        LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[1.0, -0.5, 0.001]).unwrap()
    }

    #[test]
    fn fsr_is_exact() {
        let q = q5();
        assert_eq!(q.quantize(1.0), 1.0);
        assert_eq!(q.quantize(-1.0), -1.0);
    }

    #[test]
    fn quantized_values_on_base_grid() {
        let q = q5();
        for &w in &[0.9f32, 0.3, -0.07, 0.5, -0.21] {
            let v = q.quantize(w);
            // log2|v| must be a multiple of 1/2 (inv_sqrt2 base).
            let l = v.abs().log2() * 2.0;
            assert!((l - l.round()).abs() < 1e-4, "w={w} v={v}");
        }
    }

    #[test]
    fn sign_preserved() {
        let q = q5();
        assert!(q.quantize(-0.3) < 0.0);
        assert!(q.quantize(0.3) > 0.0);
        assert_eq!(q.quantize(0.0), 0.0);
    }

    #[test]
    fn five_bits_give_15_levels() {
        assert_eq!(q5().levels(), 15);
        let q4 = LogQuantizer::fit(LogBase::inv_sqrt2(), 4, &[1.0]).unwrap();
        assert_eq!(q4.levels(), 7);
    }

    #[test]
    fn deep_underflow_becomes_zero_mild_clips() {
        let q = q5();
        // Smallest level: 2^(0 - 14*0.5) = 2^-7 ~ 0.0078
        assert_eq!(q.quantize(1e-12), 0.0);
        let mild = q.quantize(0.004);
        assert!(mild > 0.0, "mild underflow clips to smallest level");
    }

    #[test]
    fn error_shrinks_with_bits_and_finer_base() {
        let pop: Vec<f32> = (1..200)
            .map(|i| (i as f32 * 0.005) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let e4 = LogQuantizer::fit(LogBase::inv_sqrt2(), 4, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        let e6 = LogQuantizer::fit(LogBase::inv_sqrt2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        assert!(e6 < e4, "more bits must reduce error: {e6} vs {e4}");
        let coarse = LogQuantizer::fit(LogBase::pow2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        let fine = LogQuantizer::fit(LogBase::inv_4th_root2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        assert!(fine < coarse, "finer base must reduce error at ample bits");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            LogQuantizer::fit(LogBase::inv_sqrt2(), 1, &[1.0]),
            Err(QuantError::BadBitWidth(1))
        );
        assert_eq!(
            LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[0.0]),
            Err(QuantError::DegenerateRange)
        );
    }

    #[test]
    fn code_roundtrip() {
        let q = q5();
        for &w in &[0.77f32, -0.12, 0.031] {
            let code = q.code(w);
            assert_eq!(q.decode(code), q.quantize(w));
        }
        assert_eq!(q.decode(LogCode::zeroed()), 0.0);
    }

    #[test]
    fn fit_tensor_matches_fit_on_the_flat_population() {
        let data = vec![1.0f32, -0.5, 0.1, 0.0];
        let t = Tensor::from_vec(data.clone(), &[2, 2]).unwrap();
        let a = LogQuantizer::fit_tensor(LogBase::inv_sqrt2(), 5, &t).unwrap();
        let b = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &data).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn packed_roundtrip_covers_every_code() {
        let q = q5();
        // Every reachable code: zero, and both signs of every magnitude.
        assert_eq!(q.unpack(q.pack(LogCode::zeroed())), LogCode::zeroed());
        for steps in 0..q.levels() {
            for negative in [false, true] {
                let code = LogCode {
                    negative,
                    steps,
                    zero: false,
                };
                assert_eq!(q.unpack(q.pack(code)), code, "steps={steps}");
            }
        }
        // The never-emitted negative-zero slot decodes as zero.
        assert_eq!(q.decode_packed(1), 0.0);
    }

    #[test]
    fn packed_bytes_match_float_roundtrip() {
        let q = q5();
        for &w in &[0.77f32, -0.12, 0.031, 0.0, -1.0, 1e-12] {
            assert_eq!(q.decode_packed(q.encode_packed(w)), q.quantize(w));
        }
    }

    #[test]
    fn decode_lut_is_bit_exact_for_every_packed_code() {
        for bits in [3u8, 4, 5, 8] {
            for base in [LogBase::pow2(), LogBase::inv_sqrt2()] {
                let q = LogQuantizer::fit(base, bits, &[0.9, -0.4, 0.02]).unwrap();
                let lut = q.decode_lut();
                assert_eq!(lut.len(), q.packed_slots());
                assert_eq!(lut.len(), 2 * q.levels() as usize + 2);
                for (p, &v) in lut.iter().enumerate() {
                    let exact = q.decode(q.unpack(p as u8));
                    assert_eq!(v.to_bits(), exact.to_bits(), "bits={bits} packed={p}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bits <= 8")]
    fn pack_rejects_wide_quantizers() {
        let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 9, &[1.0]).unwrap();
        let _ = q.pack(q.code(0.5));
    }
}
