use serde::{Deserialize, Serialize};
use snn_tensor::Tensor;

use crate::{LogBase, QuantError};

/// The hardware representation of one quantized weight: a sign, a zero
/// flag, and an exponent *code* counting `log2_step`s below the full-scale
/// range (eq. 15). With `b` bits: 1 sign bit and `b−1` exponent bits giving
/// `2^(b−1) − 1` magnitude levels plus a dedicated zero code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogCode {
    /// True for negative weights.
    pub negative: bool,
    /// Exponent steps below FSR (0 = largest magnitude). Meaningless when
    /// `zero`.
    pub steps: u16,
    /// Dedicated zero code (weights that underflow the range).
    pub zero: bool,
}

impl LogCode {
    /// The zero code.
    pub fn zeroed() -> Self {
        Self {
            negative: false,
            steps: 0,
            zero: true,
        }
    }
}

/// Post-training logarithmic weight quantizer (eq. 15, after Vogel et al.).
///
/// Fitted to a weight population: the full-scale range (FSR) anchors at the
/// largest magnitude, and every weight is rounded to the nearest power of
/// the base below it, clipped to the representable window.
///
/// # Example
///
/// ```
/// use snn_logquant::{LogBase, LogQuantizer};
///
/// # fn main() -> Result<(), snn_logquant::QuantError> {
/// let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[1.0, -0.5, 0.1])?;
/// assert_eq!(q.levels(), 15); // 2^(5-1) - 1
/// assert_eq!(q.quantize(1.0), 1.0); // FSR is exactly representable
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogQuantizer {
    base: LogBase,
    bits: u8,
    fsr_log2: f32,
}

impl LogQuantizer {
    /// Fits a quantizer to a weight population: FSR := max |w|.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadBitWidth`] for `bits < 2` and
    /// [`QuantError::DegenerateRange`] when no weight is nonzero.
    pub fn fit(base: LogBase, bits: u8, weights: &[f32]) -> Result<Self, QuantError> {
        if bits < 2 {
            return Err(QuantError::BadBitWidth(bits));
        }
        let max = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if max <= 0.0 {
            return Err(QuantError::DegenerateRange);
        }
        // Snap the FSR exponent *up* onto the base grid so that it is a
        // representable hardware exponent (the log-domain PE shares this
        // grid) and no weight exceeds the full-scale range.
        let denom = base.denominator() as f32;
        let fsr_log2 = (max.log2() * denom).ceil() / denom;
        Ok(Self {
            base,
            bits,
            fsr_log2,
        })
    }

    /// Builds a quantizer with an explicit full-scale range (log2 of the
    /// largest representable magnitude).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::BadBitWidth`] for `bits < 2`.
    pub fn with_fsr(base: LogBase, bits: u8, fsr_log2: f32) -> Result<Self, QuantError> {
        if bits < 2 {
            return Err(QuantError::BadBitWidth(bits));
        }
        Ok(Self {
            base,
            bits,
            fsr_log2,
        })
    }

    /// The quantization base.
    pub fn base(&self) -> LogBase {
        self.base
    }

    /// Total bit width (1 sign + `bits−1` exponent bits).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of representable magnitude levels (`2^(bits−1) − 1`).
    pub fn levels(&self) -> u16 {
        (1u16 << (self.bits - 1)) - 1
    }

    /// log₂ of the full-scale range.
    pub fn fsr_log2(&self) -> f32 {
        self.fsr_log2
    }

    /// Encodes a weight into its hardware code.
    pub fn code(&self, w: f32) -> LogCode {
        if w == 0.0 {
            return LogCode::zeroed();
        }
        let step = self.base.log2_step();
        let n = ((self.fsr_log2 - w.abs().log2()) / step).round();
        let max_steps = (self.levels() - 1) as f32;
        // Underflow far below the smallest level becomes zero; mild
        // underflow clips to the smallest magnitude (Vogel's clip).
        if n > max_steps + 0.5 / step + (self.levels() as f32) {
            return LogCode::zeroed();
        }
        let steps = n.clamp(0.0, max_steps) as u16;
        LogCode {
            negative: w < 0.0,
            steps,
            zero: false,
        }
    }

    /// Decodes a hardware code back to its real value.
    pub fn decode(&self, code: LogCode) -> f32 {
        if code.zero {
            return 0.0;
        }
        let mag = (self.fsr_log2 - code.steps as f32 * self.base.log2_step()).exp2();
        if code.negative {
            -mag
        } else {
            mag
        }
    }

    /// Quantizes a weight (encode–decode round trip).
    pub fn quantize(&self, w: f32) -> f32 {
        self.decode(self.code(w))
    }

    /// Quantizes every element of a tensor.
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        t.map(|w| self.quantize(w))
    }

    /// log₂ of the magnitude a code represents — the operand the log-domain
    /// PE adds to the spike exponent (eq. 17).
    pub fn code_log2(&self, code: LogCode) -> Option<f32> {
        if code.zero {
            None
        } else {
            Some(self.fsr_log2 - code.steps as f32 * self.base.log2_step())
        }
    }

    /// Mean relative quantization error over a population (diagnostic used
    /// by the Fig. 4 harness).
    pub fn mean_relative_error(&self, weights: &[f32]) -> f32 {
        let mut err = 0.0f32;
        let mut n = 0usize;
        for &w in weights {
            if w.abs() > 0.0 {
                err += (self.quantize(w) - w).abs() / w.abs();
                n += 1;
            }
        }
        err / n.max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q5() -> LogQuantizer {
        LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[1.0, -0.5, 0.001]).unwrap()
    }

    #[test]
    fn fsr_is_exact() {
        let q = q5();
        assert_eq!(q.quantize(1.0), 1.0);
        assert_eq!(q.quantize(-1.0), -1.0);
    }

    #[test]
    fn quantized_values_on_base_grid() {
        let q = q5();
        for &w in &[0.9f32, 0.3, -0.07, 0.5, -0.21] {
            let v = q.quantize(w);
            // log2|v| must be a multiple of 1/2 (inv_sqrt2 base).
            let l = v.abs().log2() * 2.0;
            assert!((l - l.round()).abs() < 1e-4, "w={w} v={v}");
        }
    }

    #[test]
    fn sign_preserved() {
        let q = q5();
        assert!(q.quantize(-0.3) < 0.0);
        assert!(q.quantize(0.3) > 0.0);
        assert_eq!(q.quantize(0.0), 0.0);
    }

    #[test]
    fn five_bits_give_15_levels() {
        assert_eq!(q5().levels(), 15);
        let q4 = LogQuantizer::fit(LogBase::inv_sqrt2(), 4, &[1.0]).unwrap();
        assert_eq!(q4.levels(), 7);
    }

    #[test]
    fn deep_underflow_becomes_zero_mild_clips() {
        let q = q5();
        // Smallest level: 2^(0 - 14*0.5) = 2^-7 ~ 0.0078
        assert_eq!(q.quantize(1e-12), 0.0);
        let mild = q.quantize(0.004);
        assert!(mild > 0.0, "mild underflow clips to smallest level");
    }

    #[test]
    fn error_shrinks_with_bits_and_finer_base() {
        let pop: Vec<f32> = (1..200)
            .map(|i| (i as f32 * 0.005) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let e4 = LogQuantizer::fit(LogBase::inv_sqrt2(), 4, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        let e6 = LogQuantizer::fit(LogBase::inv_sqrt2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        assert!(e6 < e4, "more bits must reduce error: {e6} vs {e4}");
        let coarse = LogQuantizer::fit(LogBase::pow2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        let fine = LogQuantizer::fit(LogBase::inv_4th_root2(), 6, &pop)
            .unwrap()
            .mean_relative_error(&pop);
        assert!(fine < coarse, "finer base must reduce error at ample bits");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            LogQuantizer::fit(LogBase::inv_sqrt2(), 1, &[1.0]),
            Err(QuantError::BadBitWidth(1))
        );
        assert_eq!(
            LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &[0.0]),
            Err(QuantError::DegenerateRange)
        );
    }

    #[test]
    fn code_roundtrip() {
        let q = q5();
        for &w in &[0.77f32, -0.12, 0.031] {
            let code = q.code(w);
            assert_eq!(q.decode(code), q.quantize(w));
        }
        assert_eq!(q.decode(LogCode::zeroed()), 0.0);
    }
}
