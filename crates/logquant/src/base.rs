use serde::{Deserialize, Serialize};

/// A logarithmic quantization base satisfying eq. 16:
/// `a_w = 2^(−2^(−z))` for integer `z ≥ 0`.
///
/// * `z = 0` → `a_w = 2^(−1)` (classic power-of-two quantization),
/// * `z = 1` → `a_w = 2^(−1/2)` (the paper's choice),
/// * `z = 2` → `a_w = 2^(−1/4)`.
///
/// These are the three curves of Fig. 4.
///
/// # Example
///
/// ```
/// use snn_logquant::LogBase;
///
/// let b = LogBase::inv_sqrt2();
/// assert_eq!(b.z(), 1);
/// assert!((b.value() - 0.70710677).abs() < 1e-6);
/// assert!((b.log2_step() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogBase {
    z: u8,
}

impl LogBase {
    /// Creates a base from its eq. 16 exponent parameter `z`.
    pub fn new(z: u8) -> Self {
        Self { z }
    }

    /// `a_w = 2^(−1)` — power-of-two quantization ("aw=2" in Fig. 4).
    pub fn pow2() -> Self {
        Self::new(0)
    }

    /// `a_w = 2^(−1/2)` — the paper's hardware choice.
    pub fn inv_sqrt2() -> Self {
        Self::new(1)
    }

    /// `a_w = 2^(−1/4)`.
    pub fn inv_4th_root2() -> Self {
        Self::new(2)
    }

    /// The `z` parameter of eq. 16.
    pub fn z(&self) -> u8 {
        self.z
    }

    /// Numeric base value `a_w ∈ (0, 1)`.
    pub fn value(&self) -> f32 {
        (-self.log2_step()).exp2()
    }

    /// `|log₂ a_w| = 2^(−z)`: the spacing of representable weight
    /// exponents in the log2 domain.
    pub fn log2_step(&self) -> f32 {
        (2.0f32).powi(-(self.z as i32))
    }

    /// Exponent-grid denominator: representable `log₂|w|` are integer
    /// multiples of `1/denominator()`.
    pub fn denominator(&self) -> u32 {
        1u32 << self.z
    }

    /// Label used in Fig. 4 legends.
    pub fn label(&self) -> String {
        match self.z {
            0 => "aw=2^-1".to_string(),
            z => format!("aw=2^-1/{}", 1u32 << z),
        }
    }
}

impl Default for LogBase {
    fn default() -> Self {
        Self::inv_sqrt2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bases_match_fig4() {
        assert!((LogBase::pow2().value() - 0.5).abs() < 1e-7);
        assert!((LogBase::inv_sqrt2().value() - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((LogBase::inv_4th_root2().value() - (0.5f32).powf(0.25)).abs() < 1e-6);
    }

    #[test]
    fn step_and_denominator_agree() {
        for z in 0..4u8 {
            let b = LogBase::new(z);
            assert!((b.log2_step() * b.denominator() as f32 - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(LogBase::inv_sqrt2().label(), "aw=2^-1/2");
        assert_eq!(LogBase::pow2().label(), "aw=2^-1");
    }
}
