//! Logarithmic weight quantization and multiplication-free synaptic
//! arithmetic (§3.2 of the paper, adopting Vogel et al., ICCAD 2018).
//!
//! The chain of ideas:
//!
//! 1. Weights are quantized to signed powers of an arbitrary log base
//!    `a_w` ([`LogQuantizer`], eq. 15). The paper picks `a_w = 2^(−1/2)`
//!    and 5-bit weights.
//! 2. If `log₂ a_w = −2^(−z)` (eq. 16) and the TTFS time constant satisfies
//!    `log₂ τ = 2^z` (eq. 18), then both the weight exponent and the spike
//!    kernel exponent `−t/τ` land on a *coarse fractional grid*, and the
//!    product `w · κ(t)` becomes `sign · (LUT(frac) << int)` — a lookup and
//!    a shift instead of a multiplier (eq. 17, [`LogPe`]).
//! 3. [`LinearPe`] is the baseline multiplier datapath used by the Fig. 6
//!    "Base"/"I" configurations for comparison.
//!
//! # Example
//!
//! ```
//! use snn_logquant::{LogBase, LogPe, LogQuantizer};
//!
//! # fn main() -> Result<(), snn_logquant::QuantError> {
//! let weights = [0.8f32, -0.31, 0.05, 0.62];
//! let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &weights)?;
//! let wq = q.quantize(-0.31);
//! assert!(wq < 0.0 && (wq.abs() - 0.31).abs() < 0.1);
//!
//! // Multiplication-free product of a quantized weight and a spike at t=6, τ=4:
//! let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2())?;
//! let exact = wq * (2.0f32).powf(-6.0 / 4.0);
//! let approx = pe.multiply(q.code(-0.31), 6)?;
//! assert!((approx - exact).abs() < 2e-4);
//! # Ok(())
//! # }
//! ```

mod base;
mod error;
mod pe;
mod qat;
mod quantizer;

pub use base::LogBase;
pub use error::QuantError;
pub use pe::{LinearPe, LogPe};
pub use qat::QatTrainer;
pub use quantizer::{LogCode, LogQuantizer};
