use std::error::Error;
use std::fmt;

/// Errors raised by the logarithmic-quantization subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuantError {
    /// The requested bit width cannot represent any value (needs ≥ 2 bits:
    /// sign + at least one exponent bit).
    BadBitWidth(u8),
    /// The weight set is empty or all-zero, so no full-scale range exists.
    DegenerateRange,
    /// The kernel time constant violates eq. 18 (`log₂ τ` must be a power
    /// of two), so spike exponents do not land on the PE's fractional grid.
    KernelConstraint(String),
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::BadBitWidth(b) => write!(f, "bit width {b} too small for sign + exponent"),
            QuantError::DegenerateRange => write!(f, "weight set has no nonzero values"),
            QuantError::KernelConstraint(msg) => write!(f, "kernel constraint violated: {msg}"),
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(QuantError::BadBitWidth(1).to_string().contains('1'));
        assert!(QuantError::DegenerateRange.to_string().contains("nonzero"));
        assert!(QuantError::KernelConstraint("tau".into())
            .to_string()
            .contains("tau"));
    }
}
