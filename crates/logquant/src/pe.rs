use serde::{Deserialize, Serialize};

use crate::{LogBase, LogCode, QuantError};

/// Fixed-point fraction bits used by the LUT datapath.
const LUT_FRAC_BITS: u32 = 16;

/// The log-domain processing element (eq. 17): computes `w · κ(t)` as
/// `sign(w) · (LUT(Frac(p̂)) << Int(p̂))` where `p̂ = log₂|w| − t/τ`.
///
/// Constructing the PE checks the co-design constraints: `log₂ τ = 2^z`
/// (eq. 18) and the base grid of eq. 16. When they hold, the fractional part
/// of `p̂` can only take `lcm(τ, 2^z_w)` distinct values — the LUT stays
/// tiny (4 entries for the paper's `τ = 4`, `a_w = 2^(−1/2)`), which is what
/// makes the multiplier removable.
///
/// # Example
///
/// ```
/// use snn_logquant::{LogBase, LogPe, LogQuantizer};
///
/// # fn main() -> Result<(), snn_logquant::QuantError> {
/// let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2())?;
/// assert_eq!(pe.lut_entries(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogPe {
    tau: f32,
    base: LogBase,
    /// Denominator of the common fractional grid.
    grid: u32,
    /// `lut[j] = round(2^(j/grid) · 2^LUT_FRAC_BITS)` for `j ∈ [0, grid)`.
    lut: Vec<u64>,
    /// FSR exponent of the weight quantizer, on the common grid
    /// (numerator over `grid`).
    fsr_num: i64,
}

impl LogPe {
    /// Builds the PE for a TTFS kernel time constant `tau` and weight base,
    /// with full-scale range 1.0 (override with [`LogPe::with_fsr_log2`]).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::KernelConstraint`] if `tau` is not a positive
    /// power of two with `log₂ τ = 2^z` (eq. 18), i.e. τ ∈ {1, 2, 4, 16, 256, …}.
    pub fn for_kernel(tau: f32, base: LogBase) -> Result<Self, QuantError> {
        if tau <= 0.0 || tau.fract() != 0.0 {
            return Err(QuantError::KernelConstraint(format!(
                "tau {tau} is not a positive integer"
            )));
        }
        let l = tau.log2();
        let ok = if l == 0.0 {
            true // tau = 1: degenerate integer-time coding
        } else {
            let z = l.log2();
            (z - z.round()).abs() < 1e-6 && z >= 0.0
        };
        if !ok {
            return Err(QuantError::KernelConstraint(format!(
                "log2(tau)={l} is not a power of two (eq. 18)"
            )));
        }
        let tau_u = tau as u32;
        let grid = lcm(tau_u, base.denominator());
        let lut = (0..grid)
            .map(|j| {
                let v = (j as f64 / grid as f64).exp2();
                (v * f64::from(1u32 << LUT_FRAC_BITS)).round() as u64
            })
            .collect();
        Ok(Self {
            tau,
            base,
            grid,
            lut,
            fsr_num: 0,
        })
    }

    /// Sets the weight quantizer's FSR exponent (log₂ of the largest
    /// magnitude). Values off the PE grid are rounded onto it — the
    /// quantizer and PE must be configured consistently in hardware.
    pub fn with_fsr_log2(mut self, fsr_log2: f32) -> Self {
        self.fsr_num = (fsr_log2 * self.grid as f32).round() as i64;
        self
    }

    /// Kernel time constant τ.
    pub fn tau(&self) -> f32 {
        self.tau
    }

    /// Number of LUT entries — 4 for the paper's configuration.
    pub fn lut_entries(&self) -> usize {
        self.lut.len()
    }

    /// Multiplication-free product of a quantized weight and the kernel
    /// value of a spike at timestep `t`: `w · θ₀·2^(−t/τ)` with θ₀ = 1.
    ///
    /// # Errors
    ///
    /// This method cannot currently fail for in-range inputs; the `Result`
    /// mirrors the fallible construction API.
    pub fn multiply(&self, code: LogCode, t: u32) -> Result<f32, QuantError> {
        if code.zero {
            return Ok(0.0);
        }
        // p̂ numerator on the common grid: log2|w| − t/τ.
        let w_num = self.fsr_num - code.steps as i64 * (self.grid / self.base.denominator()) as i64;
        let x_num = -(t as i64) * (self.grid / self.tau as u32) as i64;
        let p_num = w_num + x_num;
        // Split into integer shift and LUT index (Euclidean division keeps
        // the fraction non-negative).
        let int = p_num.div_euclid(self.grid as i64);
        let frac = p_num.rem_euclid(self.grid as i64) as usize;
        // mantissa is 2^frac in Q(LUT_FRAC_BITS);
        // value = mantissa · 2^(int − LUT_FRAC_BITS).
        let mantissa = self.lut[frac];
        let exp = int - i64::from(LUT_FRAC_BITS);
        let magnitude = mantissa as f64 * (exp as f64).exp2();
        let signed = if code.negative { -magnitude } else { magnitude };
        Ok(signed as f32)
    }

    /// Worst-case relative error of the LUT mantissa (Q-format rounding).
    pub fn mantissa_relative_error_bound(&self) -> f32 {
        0.5 / f32::from(1u16) / (1u64 << LUT_FRAC_BITS) as f32 * 2.0
    }
}

/// Baseline multiplier datapath (the "linear PE" of Fig. 6's Base/I
/// configurations): an ordinary fixed-point multiply of the decoded weight
/// and kernel value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearPe;

impl LinearPe {
    /// Creates the baseline PE.
    pub fn new() -> Self {
        Self
    }

    /// Plain product of a decoded weight and the kernel value at `t`.
    pub fn multiply(&self, weight: f32, tau: f32, t: u32) -> f32 {
        weight * (-(t as f32) / tau).exp2()
    }
}

impl Default for LinearPe {
    fn default() -> Self {
        Self::new()
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u32, b: u32) -> u32 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogQuantizer;

    #[test]
    fn paper_config_needs_4_lut_entries() {
        // tau=4 grid 1/4; base 2^-1/2 grid 1/2; lcm denominator 4.
        let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2()).unwrap();
        assert_eq!(pe.lut_entries(), 4);
    }

    #[test]
    fn finer_base_grows_lut() {
        let pe = LogPe::for_kernel(4.0, LogBase::inv_4th_root2()).unwrap();
        assert_eq!(pe.lut_entries(), 4);
        let pe16 = LogPe::for_kernel(16.0, LogBase::inv_4th_root2()).unwrap();
        assert_eq!(pe16.lut_entries(), 16);
    }

    #[test]
    fn eq18_rejected_for_bad_tau() {
        assert!(LogPe::for_kernel(3.0, LogBase::inv_sqrt2()).is_err());
        assert!(LogPe::for_kernel(8.0, LogBase::inv_sqrt2()).is_err()); // log2=3, not 2^z
        assert!(LogPe::for_kernel(0.5, LogBase::inv_sqrt2()).is_err());
        for tau in [1.0f32, 2.0, 4.0, 16.0] {
            assert!(
                LogPe::for_kernel(tau, LogBase::inv_sqrt2()).is_ok(),
                "{tau}"
            );
        }
    }

    #[test]
    #[allow(clippy::approx_constant)] // 0.7071 sits on the 2^(-1/2) grid
    fn log_pe_matches_float_product() {
        let weights = [0.9f32, -0.5, 0.31, -0.044, 0.7071];
        let q = LogQuantizer::fit(LogBase::inv_sqrt2(), 5, &weights).unwrap();
        let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2())
            .unwrap()
            .with_fsr_log2(q.fsr_log2());
        for &w in &weights {
            let code = q.code(w);
            let wq = q.decode(code);
            for t in 0..=24u32 {
                let exact = wq * (-(t as f32) / 4.0).exp2();
                let approx = pe.multiply(code, t).unwrap();
                let tol = 1e-4 * (1.0 + exact.abs());
                assert!(
                    (approx - exact).abs() <= tol,
                    "w={w} t={t}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn zero_code_multiplies_to_zero() {
        let pe = LogPe::for_kernel(4.0, LogBase::inv_sqrt2()).unwrap();
        assert_eq!(pe.multiply(LogCode::zeroed(), 5).unwrap(), 0.0);
    }

    #[test]
    fn linear_pe_is_exact() {
        let pe = LinearPe::new();
        let v = pe.multiply(0.5, 4.0, 4);
        assert!((v - 0.25).abs() < 1e-7);
    }

    #[test]
    fn lcm_gcd() {
        assert_eq!(lcm(4, 2), 4);
        assert_eq!(lcm(4, 1), 4);
        assert_eq!(lcm(16, 4), 16);
        assert_eq!(gcd(12, 18), 6);
    }
}
