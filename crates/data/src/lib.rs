//! Synthetic image-classification datasets for the TTFS-CAT reproduction.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100 and Tiny-ImageNet. Those
//! datasets (and the GPU budget to train VGG-16 on them) are not available in
//! this environment, so this crate procedurally generates class-conditional
//! image datasets whose *difficulty ordering* matches the paper's:
//! CIFAR-10-like < CIFAR-100-like < Tiny-ImageNet-like. Each class owns a
//! Gabor-like oriented-grating prototype plus a colour bias; samples add
//! instance noise, random phase jitter and global distractors.
//!
//! The generators are fully deterministic given a seed, so every experiment
//! harness in `snn-bench` is reproducible.
//!
//! # Example
//!
//! ```
//! use snn_data::{DatasetSpec, SyntheticDataset};
//!
//! let spec = DatasetSpec::cifar10_like().with_samples(40, 20);
//! let data = SyntheticDataset::generate(&spec, 42);
//! assert_eq!(data.train_images().dims(), &[40, 3, 16, 16]);
//! assert_eq!(data.test_labels().len(), 20);
//! ```

mod dataset;
mod spec;

pub use dataset::SyntheticDataset;
pub use spec::DatasetSpec;
