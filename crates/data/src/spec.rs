/// Configuration of a synthetic class-conditional image dataset.
///
/// Difficulty knobs:
/// * more `classes` pack prototype orientations/frequencies closer together;
/// * lower `prototype_strength` and higher `noise` reduce separability;
/// * `distractors` adds class-independent structured clutter.
///
/// # Example
///
/// ```
/// use snn_data::DatasetSpec;
///
/// let c10 = DatasetSpec::cifar10_like();
/// let tin = DatasetSpec::tiny_imagenet_like();
/// assert!(tin.classes > c10.classes);
/// assert!(tin.noise > c10.noise);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable dataset name (used in experiment tables).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Image channels (3 for the CIFAR-like family).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Amplitude of the class prototype pattern, in [0, 1].
    pub prototype_strength: f32,
    /// Standard deviation of per-pixel instance noise.
    pub noise: f32,
    /// Amplitude of class-independent structured distractors.
    pub distractors: f32,
    /// Training samples to generate.
    pub train_samples: usize,
    /// Test samples to generate.
    pub test_samples: usize,
}

impl DatasetSpec {
    /// CIFAR-10 stand-in: 10 well-separated classes at 16×16×3.
    ///
    /// The spatial extent is reduced from 32×32 so that the single-core
    /// training runs used by the experiment harnesses stay tractable; the
    /// class-structure knobs, not the resolution, set the difficulty.
    pub fn cifar10_like() -> Self {
        Self {
            name: "CIFAR10-like",
            classes: 10,
            channels: 3,
            height: 16,
            width: 16,
            prototype_strength: 0.55,
            noise: 0.12,
            distractors: 0.10,
            train_samples: 600,
            test_samples: 200,
        }
    }

    /// CIFAR-100 stand-in: 100 classes with tighter prototype packing.
    pub fn cifar100_like() -> Self {
        Self {
            name: "CIFAR100-like",
            classes: 100,
            channels: 3,
            height: 16,
            width: 16,
            prototype_strength: 0.48,
            noise: 0.15,
            distractors: 0.12,
            train_samples: 1200,
            test_samples: 400,
        }
    }

    /// Tiny-ImageNet stand-in: 200 classes, weaker prototypes, more noise.
    pub fn tiny_imagenet_like() -> Self {
        Self {
            name: "TinyImageNet-like",
            classes: 200,
            channels: 3,
            height: 16,
            width: 16,
            prototype_strength: 0.42,
            noise: 0.18,
            distractors: 0.15,
            train_samples: 1600,
            test_samples: 500,
        }
    }

    /// Overrides the generated sample counts.
    pub fn with_samples(mut self, train: usize, test: usize) -> Self {
        self.train_samples = train;
        self.test_samples = test;
        self
    }

    /// Overrides the class count (keeps the difficulty knobs). Used by the
    /// scaled experiment harness, which maps 100/200-class datasets onto
    /// fewer classes so per-class sample counts stay trainable on one core.
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Overrides the image geometry.
    pub fn with_geometry(mut self, channels: usize, height: usize, width: usize) -> Self {
        self.channels = channels;
        self.height = height;
        self.width = width;
        self
    }

    /// Elements per image.
    pub fn image_len(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// A separability score in (0, 1]: higher means easier. Used by tests to
    /// assert the CIFAR10 < CIFAR100 < TinyImageNet difficulty ordering.
    pub fn separability(&self) -> f32 {
        let packing = 1.0 / (self.classes as f32).sqrt();
        let snr = self.prototype_strength / (self.noise + self.distractors);
        (snr * (0.5 + packing)).min(10.0) / 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_ordering() {
        let c10 = DatasetSpec::cifar10_like();
        let c100 = DatasetSpec::cifar100_like();
        let tin = DatasetSpec::tiny_imagenet_like();
        assert!(c10.separability() > c100.separability());
        assert!(c100.separability() > tin.separability());
    }

    #[test]
    fn builder_overrides() {
        let s = DatasetSpec::cifar10_like()
            .with_samples(5, 2)
            .with_geometry(1, 8, 8);
        assert_eq!(s.train_samples, 5);
        assert_eq!(s.image_len(), 64);
    }
}
