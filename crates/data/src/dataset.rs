use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_tensor::Tensor;

use crate::DatasetSpec;

/// A generated train/test split of class-conditional images.
///
/// Images are `[N, C, H, W]` with pixel values in `[0, 1]` — matching the
/// input range the paper's first-layer φ_TTFS encoding assumes (θ₀ = 1).
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    train_images: Tensor,
    train_labels: Vec<usize>,
    test_images: Tensor,
    test_labels: Vec<usize>,
}

/// Per-class generative parameters (a Gabor-like oriented grating plus a
/// colour bias).
#[derive(Debug, Clone, Copy)]
struct ClassPrototype {
    orientation: f32,
    frequency: f32,
    phase: f32,
    color: [f32; 3],
}

impl ClassPrototype {
    fn for_class(class: usize, classes: usize, rng: &mut StdRng) -> Self {
        // Deterministic angular placement keeps neighbouring classes close
        // when there are many of them — that is exactly what makes the
        // 100/200-class variants harder.
        let frac = class as f32 / classes as f32;
        Self {
            orientation: frac * std::f32::consts::PI,
            frequency: 1.5 + 4.0 * ((class * 7 % classes) as f32 / classes as f32),
            phase: rng.gen_range(0.0..std::f32::consts::TAU),
            color: [
                0.5 + 0.5 * (frac * std::f32::consts::TAU).sin(),
                0.5 + 0.5 * (frac * std::f32::consts::TAU + 2.1).sin(),
                0.5 + 0.5 * (frac * std::f32::consts::TAU + 4.2).sin(),
            ],
        }
    }

    fn pixel(&self, c: usize, y: f32, x: f32, phase_jitter: f32) -> f32 {
        let u = x * self.orientation.cos() + y * self.orientation.sin();
        let g = (u * self.frequency + self.phase + phase_jitter).sin();
        0.5 + 0.5 * g * self.color[c % 3]
    }
}

impl SyntheticDataset {
    /// Generates a dataset deterministically from `spec` and `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use snn_data::{DatasetSpec, SyntheticDataset};
    ///
    /// let spec = DatasetSpec::cifar10_like().with_samples(20, 10);
    /// let a = SyntheticDataset::generate(&spec, 7);
    /// let b = SyntheticDataset::generate(&spec, 7);
    /// assert_eq!(a.train_images().as_slice(), b.train_images().as_slice());
    /// ```
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let mut proto_rng = StdRng::seed_from_u64(seed);
        let prototypes: Vec<ClassPrototype> = (0..spec.classes)
            .map(|k| ClassPrototype::for_class(k, spec.classes, &mut proto_rng))
            .collect();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let (train_images, train_labels) =
            Self::sample_split(spec, &prototypes, spec.train_samples, &mut rng);
        let (test_images, test_labels) =
            Self::sample_split(spec, &prototypes, spec.test_samples, &mut rng);
        Self {
            spec: spec.clone(),
            train_images,
            train_labels,
            test_images,
            test_labels,
        }
    }

    fn sample_split(
        spec: &DatasetSpec,
        prototypes: &[ClassPrototype],
        n: usize,
        rng: &mut StdRng,
    ) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * spec.image_len());
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % spec.classes;
            labels.push(label);
            let proto = prototypes[label];
            let phase_jitter = rng.gen_range(-0.6..0.6f32);
            // Class-independent distractor grating.
            let d_orient = rng.gen_range(0.0..std::f32::consts::PI);
            let d_freq = rng.gen_range(1.0..5.0f32);
            let d_phase = rng.gen_range(0.0..std::f32::consts::TAU);
            for c in 0..spec.channels {
                for yy in 0..spec.height {
                    for xx in 0..spec.width {
                        let y = yy as f32 / spec.height as f32 - 0.5;
                        let x = xx as f32 / spec.width as f32 - 0.5;
                        let signal = proto.pixel(c, y, x, phase_jitter);
                        let u = x * d_orient.cos() + y * d_orient.sin();
                        let distract = 0.5 + 0.5 * (u * d_freq + d_phase).sin();
                        let noise: f32 = {
                            // Box-Muller on two uniforms.
                            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                            let u2: f32 = rng.gen_range(0.0..1.0);
                            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                        };
                        let v = spec.prototype_strength * signal
                            + spec.distractors * distract
                            + (1.0 - spec.prototype_strength - spec.distractors) * 0.5
                            + spec.noise * noise;
                        data.push(v.clamp(0.0, 1.0));
                    }
                }
            }
        }
        let images = Tensor::from_vec(data, &[n, spec.channels, spec.height, spec.width])
            .expect("generated buffer sized to shape");
        (images, labels)
    }

    /// The generating spec.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Training images `[N, C, H, W]`.
    pub fn train_images(&self) -> &Tensor {
        &self.train_images
    }

    /// Training labels, one class index per image.
    pub fn train_labels(&self) -> &[usize] {
        &self.train_labels
    }

    /// Test images `[N, C, H, W]`.
    pub fn test_images(&self) -> &Tensor {
        &self.test_images
    }

    /// Test labels.
    pub fn test_labels(&self) -> &[usize] {
        &self.test_labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec::cifar10_like()
            .with_samples(40, 20)
            .with_geometry(3, 8, 8)
    }

    #[test]
    fn shapes_and_ranges() {
        let d = SyntheticDataset::generate(&tiny_spec(), 1);
        assert_eq!(d.train_images().dims(), &[40, 3, 8, 8]);
        assert_eq!(d.test_images().dims(), &[20, 3, 8, 8]);
        assert!(d.train_images().min() >= 0.0);
        assert!(d.train_images().max() <= 1.0);
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = SyntheticDataset::generate(&tiny_spec(), 1);
        for k in 0..10 {
            assert!(d.train_labels().contains(&k), "class {k} missing");
        }
        assert!(d.train_labels().iter().all(|&l| l < 10));
    }

    #[test]
    fn deterministic_per_seed_distinct_across_seeds() {
        let spec = tiny_spec();
        let a = SyntheticDataset::generate(&spec, 5);
        let b = SyntheticDataset::generate(&spec, 5);
        let c = SyntheticDataset::generate(&spec, 6);
        assert_eq!(a.train_images().as_slice(), b.train_images().as_slice());
        assert_ne!(a.train_images().as_slice(), c.train_images().as_slice());
    }

    /// A nearest-class-mean classifier must beat chance comfortably on the
    /// easy dataset — i.e. the generator actually embeds class structure.
    #[test]
    fn class_structure_is_learnable() {
        let spec = DatasetSpec::cifar10_like()
            .with_samples(200, 100)
            .with_geometry(3, 8, 8);
        let d = SyntheticDataset::generate(&spec, 3);
        let len = spec.image_len();
        let mut means = vec![vec![0.0f32; len]; spec.classes];
        let mut counts = vec![0usize; spec.classes];
        for (i, &label) in d.train_labels().iter().enumerate() {
            for (m, &v) in means[label]
                .iter_mut()
                .zip(&d.train_images().as_slice()[i * len..(i + 1) * len])
            {
                *m += v;
            }
            counts[label] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for (i, &label) in d.test_labels().iter().enumerate() {
            let img = &d.test_images().as_slice()[i * len..(i + 1) * len];
            let pred = means
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let da: f32 = a.iter().zip(img).map(|(x, y)| (x - y) * (x - y)).sum();
                    let db: f32 = b.iter().zip(img).map(|(x, y)| (x - y) * (x - y)).sum();
                    da.total_cmp(&db)
                })
                .map(|(k, _)| k)
                .unwrap();
            if pred == label {
                correct += 1;
            }
        }
        let acc = correct as f32 / d.test_labels().len() as f32;
        assert!(
            acc > 0.5,
            "nearest-mean accuracy {acc} should beat chance (0.1)"
        );
    }

    /// Empirical difficulty must follow the paper's ordering under the same
    /// nearest-mean probe.
    #[test]
    fn empirical_difficulty_ordering() {
        let probe = |spec: &DatasetSpec| {
            let spec = spec.clone().with_samples(300, 150).with_geometry(3, 8, 8);
            let d = SyntheticDataset::generate(&spec, 11);
            let len = spec.image_len();
            let mut means = vec![vec![0.0f32; len]; spec.classes];
            let mut counts = vec![0usize; spec.classes];
            for (i, &label) in d.train_labels().iter().enumerate() {
                for (m, &v) in means[label]
                    .iter_mut()
                    .zip(&d.train_images().as_slice()[i * len..(i + 1) * len])
                {
                    *m += v;
                }
                counts[label] += 1;
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c.max(1) as f32;
                }
            }
            let mut correct = 0usize;
            for (i, &label) in d.test_labels().iter().enumerate() {
                let img = &d.test_images().as_slice()[i * len..(i + 1) * len];
                let pred = means
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f32 = a.iter().zip(img).map(|(x, y)| (x - y) * (x - y)).sum();
                        let db: f32 = b.iter().zip(img).map(|(x, y)| (x - y) * (x - y)).sum();
                        da.total_cmp(&db)
                    })
                    .map(|(k, _)| k)
                    .unwrap();
                if pred == label {
                    correct += 1;
                }
            }
            correct as f32 / d.test_labels().len() as f32
        };
        let a10 = probe(&DatasetSpec::cifar10_like());
        let a100 = probe(&DatasetSpec::cifar100_like());
        let a200 = probe(&DatasetSpec::tiny_imagenet_like());
        assert!(a10 > a100, "c10 {a10} should beat c100 {a100}");
        assert!(a100 > a200, "c100 {a100} should beat tin {a200}");
    }
}
