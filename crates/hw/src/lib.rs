//! Cycle-approximate model of the paper's SNN processor (§4–5).
//!
//! The architecture is SpinalFlow-derived: an input generator (48 KB input
//! buffer + minfind merge-sort), a PE array (128 PEs in four clusters of 32,
//! each cluster with a 90 KB weight buffer), output processing (PPU + spike
//! encoder with threshold LUT and priority encoder) and a DMA engine talking
//! to off-chip DRAM at 4 pJ/bit.
//!
//! Since the original is a 28 nm silicon implementation measured with
//! Synopsys tools, this crate substitutes an **analytical component model**:
//!
//! * `cost` (private module) — area/power constants per component,
//!   calibrated so the
//!   *baseline* configuration (per-layer SRAM kernel decoders + multiplier
//!   PEs, i.e. T2FSNN-on-SpinalFlow) matches the paper's Fig. 6 split. The
//!   CAT and log-PE savings then *emerge* from swapping components.
//! * [`Processor`] — per-layer cycle/energy accounting from event counts
//!   (spikes, synaptic ops) and memory traffic, reproducing Table 4's
//!   energy-per-image and throughput columns.
//! * [`MinFindUnit`] / [`SpikeEncoder`] — functional models of the sorting
//!   and encoding pipelines with cycle counts.
//! * [`vgg16_geometry`] — the VGG-16 layer shapes the paper runs.
//! * [`TpuModel`] — the redesigned 16×16 systolic TPU comparison column.
//!
//! # Example
//!
//! ```
//! use snn_hw::{vgg16_geometry, Processor, ProcessorConfig, WorkloadProfile};
//!
//! let config = ProcessorConfig::proposed();
//! let processor = Processor::new(config);
//! let layers = vgg16_geometry(32, 32, 10);
//! let report = processor.run_network(&layers, &WorkloadProfile::paper_default());
//! assert!(report.energy_per_image_uj > 0.0);
//! assert!(report.fps > 0.0);
//! ```

mod config;
mod cost;
mod datapath;
mod encoder;
mod geometry;
mod minfind;
mod processor;
mod report;
mod tpu;

pub use config::{DecoderKind, PeKind, ProcessorConfig};
pub use cost::{AreaPowerModel, ComponentCosts, EnergyModel};
pub use datapath::PeDatapath;
pub use encoder::{SpikeEncoder, ThresholdLut};
pub use geometry::{vgg16_geometry, LayerGeometry, LayerKind};
pub use minfind::MinFindUnit;
pub use processor::{LayerReport, NetworkReport, Processor, WorkloadProfile};
pub use report::{ComparisonRow, ComparisonTable, DatasetRow};
pub use tpu::TpuModel;
