use serde::{Deserialize, Serialize};

use crate::LayerGeometry;

/// Analytical model of the comparison ANN accelerator: the paper's
/// "redesigned TPU" — a 16×16 systolic MAC array at 250 MHz / 0.99 V in the
/// same 28 nm node, with 8-bit weights streamed from DRAM.
///
/// ANN inference has no event sparsity: every MAC executes, which is
/// exactly why the SNN wins on energy in Table 4 despite the same process
/// and clock.
///
/// # Example
///
/// ```
/// use snn_hw::{vgg16_geometry, TpuModel};
///
/// let tpu = TpuModel::redesigned_16x16();
/// let r = tpu.run_network(&vgg16_geometry(32, 32, 10));
/// assert!(r.fps > 100.0 && r.fps < 400.0); // paper: 204 fps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpuModel {
    /// MAC units (16 × 16 = 256).
    pub macs: usize,
    /// Clock frequency, MHz.
    pub frequency_mhz: u32,
    /// Core power at full activity, mW (Table 4: 100.1 mW).
    pub power_mw: f32,
    /// Weight bit width (8-bit post-training quantization).
    pub weight_bits: u32,
    /// DRAM energy per bit, pJ (same 4 pJ/bit interface).
    pub dram_pj_per_bit: f32,
    /// Average systolic-array utilization.
    pub utilization: f32,
}

/// TPU run summary (one image).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TpuReport {
    /// Cycles per image.
    pub cycles: u64,
    /// Energy per image, µJ.
    pub energy_per_image_uj: f64,
    /// Frames per second.
    pub fps: f64,
}

impl TpuModel {
    /// The paper's comparison configuration.
    pub fn redesigned_16x16() -> Self {
        Self {
            macs: 256,
            frequency_mhz: 250,
            power_mw: 100.1,
            weight_bits: 8,
            dram_pj_per_bit: 4.0,
            utilization: 1.0,
        }
    }

    /// Peak GMAC/s (Table 4: 64 GMAC/s).
    pub fn peak_gmacs(&self) -> f32 {
        self.macs as f32 * self.frequency_mhz as f32 / 1000.0
    }

    /// Runs the workload: every MAC executes (dense compute), weights
    /// stream from DRAM once.
    pub fn run_network(&self, layers: &[LayerGeometry]) -> TpuReport {
        let total_macs: u64 = layers.iter().map(|l| l.macs as u64).sum();
        let weights: u64 = layers.iter().map(|l| l.weights as u64).sum();
        let cycles =
            (total_macs as f64 / (self.macs as f64 * self.utilization as f64)).ceil() as u64;
        let seconds = cycles as f64 / (self.frequency_mhz as f64 * 1e6);
        let core_uj = self.power_mw as f64 * 1e-3 * seconds * 1e6;
        let dram_uj =
            (weights * self.weight_bits as u64) as f64 * self.dram_pj_per_bit as f64 * 1e-6;
        TpuReport {
            cycles,
            energy_per_image_uj: core_uj + dram_uj,
            fps: 1.0 / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vgg16_geometry;

    #[test]
    fn peak_throughput_matches_table4() {
        assert_eq!(TpuModel::redesigned_16x16().peak_gmacs(), 64.0);
    }

    #[test]
    fn cifar10_near_paper_numbers() {
        // Table 4 TPU column: 204 fps, 978.5 µJ on CIFAR-10.
        let r = TpuModel::redesigned_16x16().run_network(&vgg16_geometry(32, 32, 10));
        assert!((r.fps - 204.0).abs() < 60.0, "fps {}", r.fps);
        assert!(
            (r.energy_per_image_uj - 978.5).abs() < 250.0,
            "energy {}",
            r.energy_per_image_uj
        );
    }

    #[test]
    fn tiny_imagenet_near_paper_numbers() {
        // Table 4 TPU column: 51 fps, 2759 µJ on Tiny-ImageNet.
        let r = TpuModel::redesigned_16x16().run_network(&vgg16_geometry(64, 64, 200));
        assert!((r.fps - 51.0).abs() < 15.0, "fps {}", r.fps);
        assert!(
            r.energy_per_image_uj > 1800.0 && r.energy_per_image_uj < 3500.0,
            "energy {}",
            r.energy_per_image_uj
        );
    }
}
