use serde::{Deserialize, Serialize};

use crate::{AreaPowerModel, EnergyModel, LayerGeometry, MinFindUnit, ProcessorConfig};

/// Event-rate profile of a workload: what fraction of neurons spike at each
/// layer boundary. TTFS coding caps this at 1 spike/neuron; the paper's
/// trained VGG-16 models see roughly a third of neurons firing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Input-image spike density (fraction of pixels that fire).
    pub input_sparsity: f32,
    /// Per-layer output spike density; reused cyclically if shorter than
    /// the network.
    pub layer_sparsity: Vec<f32>,
}

impl WorkloadProfile {
    /// The density profile used for the Table 4 reproduction (≈ one third
    /// of neurons spiking, slightly denser early layers).
    pub fn paper_default() -> Self {
        Self {
            input_sparsity: 0.9,
            layer_sparsity: vec![0.45, 0.40, 0.35, 0.30, 0.28, 0.25],
        }
    }

    /// Uniform density at every boundary.
    pub fn uniform(s: f32) -> Self {
        Self {
            input_sparsity: s,
            layer_sparsity: vec![s],
        }
    }

    /// Builds a profile from measured per-layer sparsities (e.g. from the
    /// `snn-sim` event statistics of a real converted model).
    pub fn from_measurements(input_sparsity: f32, layer_sparsity: Vec<f32>) -> Self {
        Self {
            input_sparsity,
            layer_sparsity,
        }
    }

    /// Spike density entering weighted layer `i` (layer 0 sees the coded
    /// input image).
    pub fn density_into(&self, i: usize) -> f32 {
        if i == 0 {
            self.input_sparsity
        } else {
            let ls = &self.layer_sparsity;
            ls[(i - 1) % ls.len().max(1)]
        }
    }
}

/// Cycle/energy report for one layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Input spikes processed.
    pub input_spikes: u64,
    /// Synaptic operations executed.
    pub sops: u64,
    /// Total cycles (sorting/integration overlapped, plus encoding).
    pub cycles: u64,
    /// Energy spent in the PE array, µJ.
    pub pe_energy_uj: f64,
    /// Energy spent reading weights from on-chip SRAM, µJ.
    pub sram_energy_uj: f64,
    /// Energy spent on DRAM traffic, µJ.
    pub dram_energy_uj: f64,
    /// Sorting + encoding energy, µJ.
    pub overhead_energy_uj: f64,
}

impl LayerReport {
    /// Total layer energy, µJ (excluding chip-static share).
    pub fn energy_uj(&self) -> f64 {
        self.pe_energy_uj + self.sram_energy_uj + self.dram_energy_uj + self.overhead_energy_uj
    }
}

/// Whole-network report (one image).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkReport {
    /// Per-layer reports.
    pub layers: Vec<LayerReport>,
    /// Total cycles per image.
    pub cycles: u64,
    /// Static/clock energy over the whole run, µJ.
    pub static_energy_uj: f64,
    /// Total energy per image, µJ.
    pub energy_per_image_uj: f64,
    /// Throughput at the configured clock, frames/s.
    pub fps: f64,
    /// Total synaptic operations.
    pub total_sops: u64,
    /// Average PE utilization (SOPs / (PEs × cycles)).
    pub utilization: f64,
}

/// The cycle-approximate processor model (Fig. 5 architecture).
///
/// Per layer: the minfind unit sorts incoming spikes (overlapped with PE
/// integration — the slower of the two binds the phase), the PE array
/// integrates `fanout` weights per spike at one SOP per PE per cycle, and
/// the spike encoder walks its threshold schedule emitting one spike per
/// cycle. DRAM is charged for weight streaming (minus what the weight
/// buffers can hold) and spike I/O at 4 pJ/bit.
#[derive(Debug, Clone)]
pub struct Processor {
    config: ProcessorConfig,
    energy: EnergyModel,
    area_power: AreaPowerModel,
    minfind: MinFindUnit,
}

impl Processor {
    /// Creates a processor with the default 28 nm calibration.
    pub fn new(config: ProcessorConfig) -> Self {
        Self {
            config,
            energy: EnergyModel::cmos28(),
            area_power: AreaPowerModel::cmos28(),
            minfind: MinFindUnit::new(16),
        }
    }

    /// Overrides the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The static configuration.
    pub fn config(&self) -> &ProcessorConfig {
        &self.config
    }

    /// The area/power model (Fig. 6 source).
    pub fn area_power(&self) -> &AreaPowerModel {
        &self.area_power
    }

    /// Runs one layer of the workload.
    pub fn run_layer(
        &self,
        geom: &LayerGeometry,
        density_in: f32,
        density_out: f32,
    ) -> LayerReport {
        let cfg = &self.config;
        let input_spikes = (geom.in_neurons as f64 * density_in as f64).round() as u64;
        let output_spikes = (geom.out_neurons as f64 * density_out as f64).round() as u64;
        let sops = (geom.macs as f64 * density_in as f64).round() as u64;

        // Integration: PEs process `pe_count` output neurons per pass; each
        // spike is broadcast, each PE applies its weight — one SOP per PE
        // per cycle at full occupancy.
        let passes = geom.out_neurons.div_ceil(cfg.pe_count) as u64;
        // The `passes * 8` term is the pipeline fill per pass.
        let integration_cycles = sops.div_ceil(cfg.pe_count as u64) + passes * 8;
        // Sorting overlaps integration (SpinalFlow double-buffers); the
        // phase takes the slower of the two.
        let sort_cycles = self.minfind.cycles_for(input_spikes as usize);
        // Encoding: per pass the threshold walks ≤ T steps; each emitted
        // spike costs one serialization cycle.
        let encode_cycles = passes * cfg.window as u64 + output_spikes;
        let cycles = integration_cycles.max(sort_cycles) + encode_cycles;

        // Weight traffic: weights stream from DRAM once per image; the
        // portion resident in the weight buffers is free on later reuse
        // (our model charges each layer its full footprint once).
        let weight_bits = geom.weights as u64 * cfg.weight_bits as u64;
        // Spike I/O: 16-bit (neuron id, timestep) records in and out. The
        // 48 KB input buffer (added over SpinalFlow) holds the sorted input
        // spikes so all four PE clusters reuse one DRAM fetch; without it
        // (or when the spikes overflow it) each cluster streams the input
        // separately.
        let input_spike_bytes = input_spikes * 2;
        let input_fetches = if (cfg.input_buffer_kb as u64) * 1024 >= input_spike_bytes {
            1
        } else {
            cfg.clusters as u64
        };
        let spike_bits = input_spikes * 16 * input_fetches + output_spikes * 16;
        let dram_bits = weight_bits + spike_bits;

        let pe_energy_uj = sops as f64 * self.energy.sop_pj(cfg.pe_kind) as f64 * 1e-6;
        let sram_energy_uj =
            (sops * cfg.weight_bits as u64) as f64 * self.energy.sram_pj_per_bit as f64 * 1e-6;
        let dram_energy_uj = dram_bits as f64 * self.energy.dram_pj_per_bit as f64 * 1e-6;
        let overhead_energy_uj = (self.minfind.comparisons_for(input_spikes as usize) as f64
            * self.energy.sort_pj_per_spike as f64
            + encode_cycles as f64 * self.energy.encoder_pj_per_cycle as f64)
            * 1e-6;

        LayerReport {
            name: geom.name.clone(),
            input_spikes,
            sops,
            cycles,
            pe_energy_uj,
            sram_energy_uj,
            dram_energy_uj,
            overhead_energy_uj,
        }
    }

    /// Runs a full network (one image) and aggregates the report.
    pub fn run_network(
        &self,
        layers: &[LayerGeometry],
        profile: &WorkloadProfile,
    ) -> NetworkReport {
        let mut reports = Vec::with_capacity(layers.len());
        for (i, geom) in layers.iter().enumerate() {
            let density_in = profile.density_into(i);
            let density_out = profile.density_into(i + 1);
            reports.push(self.run_layer(geom, density_in, density_out));
        }
        let cycles: u64 = reports.iter().map(|r| r.cycles).sum();
        let dynamic: f64 = reports.iter().map(|r| r.energy_uj()).sum();
        let static_energy_uj = cycles as f64 * self.energy.idle_pj_per_cycle as f64 * 1e-6;
        let total_sops: u64 = reports.iter().map(|r| r.sops).sum();
        let seconds = cycles as f64 / (self.config.frequency_mhz as f64 * 1e6);
        NetworkReport {
            cycles,
            static_energy_uj,
            energy_per_image_uj: dynamic + static_energy_uj,
            fps: 1.0 / seconds,
            total_sops,
            utilization: total_sops as f64 / (self.config.pe_count as f64 * cycles as f64),
            layers: reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vgg16_geometry;

    fn cifar_report(config: ProcessorConfig) -> NetworkReport {
        Processor::new(config).run_network(
            &vgg16_geometry(32, 32, 10),
            &WorkloadProfile::paper_default(),
        )
    }

    #[test]
    fn cifar10_energy_and_fps_in_paper_range() {
        // Table 4, "This work": 486.7 µJ, 327 fps on CIFAR-10. Our analytic
        // substrate must land in the same regime (factor ~1.5).
        let r = cifar_report(ProcessorConfig::proposed());
        assert!(
            r.energy_per_image_uj > 300.0 && r.energy_per_image_uj < 800.0,
            "energy {} µJ",
            r.energy_per_image_uj
        );
        assert!(r.fps > 180.0 && r.fps < 600.0, "fps {}", r.fps);
    }

    #[test]
    fn tiny_imagenet_costs_more_and_runs_slower() {
        let p = Processor::new(ProcessorConfig::proposed());
        let profile = WorkloadProfile::paper_default();
        let cifar = p.run_network(&vgg16_geometry(32, 32, 10), &profile);
        let tin = p.run_network(&vgg16_geometry(64, 64, 200), &profile);
        assert!(tin.energy_per_image_uj > 2.0 * cifar.energy_per_image_uj);
        assert!(tin.fps < cifar.fps / 2.0);
    }

    #[test]
    fn log_pe_saves_energy_at_same_cycles() {
        let lin = cifar_report(ProcessorConfig::with_cat());
        let log = cifar_report(ProcessorConfig::proposed());
        assert!(log.energy_per_image_uj < lin.energy_per_image_uj);
        // Window differences aside, integration cycles are density-bound:
        assert_eq!(lin.total_sops, log.total_sops);
    }

    #[test]
    fn sparser_workload_is_cheaper() {
        let p = Processor::new(ProcessorConfig::proposed());
        let layers = vgg16_geometry(32, 32, 10);
        let dense = p.run_network(&layers, &WorkloadProfile::uniform(0.9));
        let sparse = p.run_network(&layers, &WorkloadProfile::uniform(0.2));
        assert!(sparse.energy_per_image_uj < dense.energy_per_image_uj);
        assert!(sparse.fps > dense.fps);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let r = cifar_report(ProcessorConfig::proposed());
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn layer_energy_components_sum() {
        let p = Processor::new(ProcessorConfig::proposed());
        let geom = LayerGeometry::conv("c", 3, 64, 3, 32, 32);
        let r = p.run_layer(&geom, 0.9, 0.4);
        let total = r.pe_energy_uj + r.sram_energy_uj + r.dram_energy_uj + r.overhead_energy_uj;
        assert!((r.energy_uj() - total).abs() < 1e-12);
        assert!(r.sops > 0 && r.cycles > 0);
    }
}
