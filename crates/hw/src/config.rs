use serde::{Deserialize, Serialize};

/// PE datapath flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// Multiplier datapath (decoded spike value × weight).
    Linear,
    /// Log-domain LUT + shift datapath (eq. 17) — no multiplier.
    Log,
}

/// Spike-decoder (kernel) storage flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecoderKind {
    /// Per-layer reconfigurable kernels in SRAM (T2FSNN needs a different
    /// `(τ, t_d)` per layer).
    Sram,
    /// One shared kernel in a small LUT (CAT unifies kernels across
    /// layers).
    Lut,
}

/// Static configuration of the SNN processor (Table 4 column "This work").
///
/// # Example
///
/// ```
/// use snn_hw::ProcessorConfig;
///
/// let c = ProcessorConfig::proposed();
/// assert_eq!(c.pe_count, 128);
/// assert_eq!(c.frequency_mhz, 250);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorConfig {
    /// Number of processing elements (128 = 4 clusters × 32).
    pub pe_count: usize,
    /// PE clusters (each with its own weight buffer).
    pub clusters: usize,
    /// Weight buffer size per cluster, KB (90 KB × 4 in the paper).
    pub weight_buffer_kb: usize,
    /// Input buffer size, KB (48 KB, added over SpinalFlow for DRAM reuse).
    pub input_buffer_kb: usize,
    /// Output spike buffer, bytes (192 B).
    pub output_buffer_bytes: usize,
    /// Clock frequency, MHz.
    pub frequency_mhz: u32,
    /// Supply voltage, V.
    pub voltage: f32,
    /// Weight bit width (5-bit logarithmic in the paper).
    pub weight_bits: u32,
    /// PE datapath.
    pub pe_kind: PeKind,
    /// Kernel decoder storage.
    pub decoder_kind: DecoderKind,
    /// TTFS fire window T.
    pub window: u32,
    /// TTFS kernel time constant τ (must satisfy eq. 18 for log PEs).
    pub kernel_tau: f32,
}

impl ProcessorConfig {
    /// Baseline: T2FSNN mapped onto SpinalFlow — per-layer SRAM kernel
    /// decoding and multiplier PEs (Fig. 6 "Base").
    pub fn baseline() -> Self {
        Self {
            pe_count: 128,
            clusters: 4,
            weight_buffer_kb: 90,
            input_buffer_kb: 48,
            output_buffer_bytes: 192,
            frequency_mhz: 250,
            voltage: 0.99,
            weight_bits: 5,
            pe_kind: PeKind::Linear,
            decoder_kind: DecoderKind::Sram,
            window: 80,
            kernel_tau: 20.0,
        }
    }

    /// CAT applied (Fig. 6 "I"): kernels unified → SRAM decoder replaced by
    /// a shared LUT; PEs still multiply.
    pub fn with_cat() -> Self {
        Self {
            decoder_kind: DecoderKind::Lut,
            window: 24,
            kernel_tau: 4.0,
            ..Self::baseline()
        }
    }

    /// Full proposal (Fig. 6 "I+II"): shared-LUT decoder *and* log-domain
    /// multiplication-free PEs.
    pub fn proposed() -> Self {
        Self {
            pe_kind: PeKind::Log,
            decoder_kind: DecoderKind::Lut,
            window: 24,
            kernel_tau: 4.0,
            ..Self::baseline()
        }
    }

    /// The proposed design minus the 48 KB input buffer (the SpinalFlow
    /// starting point): input spikes must be refetched from DRAM on every
    /// PE-array pass. Used by the input-buffer ablation.
    pub fn without_input_buffer() -> Self {
        Self {
            input_buffer_kb: 0,
            ..Self::proposed()
        }
    }

    /// Total on-chip weight storage in bytes.
    pub fn weight_buffer_bytes(&self) -> usize {
        self.clusters * self.weight_buffer_kb * 1024
    }

    /// Peak synaptic-op throughput in GSOP/s (`PEs × f`), Table 4's
    /// "Computational Throughput" row: 128 × 250 MHz = 32 GSOP/s.
    pub fn peak_gsops(&self) -> f32 {
        self.pe_count as f32 * self.frequency_mhz as f32 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_throughput_row() {
        assert_eq!(ProcessorConfig::proposed().peak_gsops(), 32.0);
    }

    #[test]
    fn configs_differ_only_in_expected_fields() {
        let base = ProcessorConfig::baseline();
        let cat = ProcessorConfig::with_cat();
        let full = ProcessorConfig::proposed();
        assert_eq!(base.pe_kind, PeKind::Linear);
        assert_eq!(base.decoder_kind, DecoderKind::Sram);
        assert_eq!(cat.pe_kind, PeKind::Linear);
        assert_eq!(cat.decoder_kind, DecoderKind::Lut);
        assert_eq!(full.pe_kind, PeKind::Log);
        assert_eq!(full.decoder_kind, DecoderKind::Lut);
        assert_eq!(base.pe_count, full.pe_count);
    }

    #[test]
    fn buffer_sizes() {
        let c = ProcessorConfig::proposed();
        assert_eq!(c.weight_buffer_bytes(), 4 * 90 * 1024);
    }
}
