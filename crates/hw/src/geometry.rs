use serde::{Deserialize, Serialize};

/// Kind of a workload layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution (`k×k`, stride 1, same padding in VGG).
    Conv,
    /// Fully connected.
    Dense,
}

/// Geometry of one weighted layer of the workload network — everything the
/// cycle/energy model needs to know (no weights, just shapes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerGeometry {
    /// Display name (e.g. `"conv3_2"`).
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Input neurons (C·H·W for conv, features for dense).
    pub in_neurons: usize,
    /// Output neurons.
    pub out_neurons: usize,
    /// Weight (synapse) count.
    pub weights: usize,
    /// Dense-equivalent multiply-accumulates per image.
    pub macs: usize,
}

impl LayerGeometry {
    /// Convolution layer geometry (`k×k`, stride 1, same padding).
    pub fn conv(name: &str, in_c: usize, out_c: usize, k: usize, h: usize, w: usize) -> Self {
        Self {
            name: name.to_string(),
            kind: LayerKind::Conv,
            in_neurons: in_c * h * w,
            out_neurons: out_c * h * w,
            weights: out_c * in_c * k * k,
            macs: out_c * h * w * in_c * k * k,
        }
    }

    /// Dense layer geometry.
    pub fn dense(name: &str, in_f: usize, out_f: usize) -> Self {
        Self {
            name: name.to_string(),
            kind: LayerKind::Dense,
            in_neurons: in_f,
            out_neurons: out_f,
            weights: in_f * out_f,
            macs: in_f * out_f,
        }
    }

    /// Average synaptic fan-out of one input neuron.
    pub fn fanout(&self) -> f32 {
        self.macs as f32 / self.in_neurons.max(1) as f32
    }
}

/// The VGG-16 layer stack the paper evaluates (13 conv + 3 dense), for an
/// `h×w` RGB input and `classes` outputs. Max-pool halvings are reflected in
/// the spatial dims of subsequent stages.
///
/// # Example
///
/// ```
/// use snn_hw::vgg16_geometry;
///
/// let layers = vgg16_geometry(32, 32, 10);
/// assert_eq!(layers.len(), 16);
/// let macs: usize = layers.iter().map(|l| l.macs).sum();
/// assert!(macs > 300_000_000 && macs < 340_000_000); // ~313 M for CIFAR
/// ```
pub fn vgg16_geometry(h: usize, w: usize, classes: usize) -> Vec<LayerGeometry> {
    let stages: &[(usize, usize)] = &[
        // (output channels, convs in stage)
        (64, 2),
        (128, 2),
        (256, 3),
        (512, 3),
        (512, 3),
    ];
    let mut layers = Vec::new();
    let (mut ch, mut cw) = (h, w);
    let mut in_c = 3usize;
    for (stage, &(out_c, convs)) in stages.iter().enumerate() {
        for i in 0..convs {
            layers.push(LayerGeometry::conv(
                &format!("conv{}_{}", stage + 1, i + 1),
                in_c,
                out_c,
                3,
                ch,
                cw,
            ));
            in_c = out_c;
        }
        ch /= 2;
        cw /= 2;
    }
    let flat = in_c * ch * cw;
    layers.push(LayerGeometry::dense("fc1", flat, 512));
    layers.push(LayerGeometry::dense("fc2", 512, 512));
    layers.push(LayerGeometry::dense("fc3", 512, classes));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_16_weighted_layers() {
        assert_eq!(vgg16_geometry(32, 32, 10).len(), 16);
        assert_eq!(vgg16_geometry(64, 64, 200).len(), 16);
    }

    #[test]
    fn cifar_macs_near_known_value() {
        let macs: usize = vgg16_geometry(32, 32, 10).iter().map(|l| l.macs).sum();
        // The commonly quoted figure for VGG-16 at 32x32 is ~313 M MACs.
        assert!((300_000_000..340_000_000).contains(&macs), "macs = {macs}");
    }

    #[test]
    fn tiny_imagenet_macs_scale_4x() {
        let c: usize = vgg16_geometry(32, 32, 10).iter().map(|l| l.macs).sum();
        let t: usize = vgg16_geometry(64, 64, 200).iter().map(|l| l.macs).sum();
        let ratio = t as f64 / c as f64;
        assert!(ratio > 3.5 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn weight_count_near_vgg16() {
        let weights: usize = vgg16_geometry(32, 32, 10).iter().map(|l| l.weights).sum();
        // 14.7 M conv + small classifier for CIFAR-sized inputs.
        assert!(weights > 14_000_000 && weights < 16_000_000, "{weights}");
    }

    #[test]
    fn fanout_of_conv() {
        let l = LayerGeometry::conv("c", 3, 64, 3, 32, 32);
        // each input neuron feeds ~64 * 9 outputs
        assert!((l.fanout() - 576.0).abs() < 1.0);
    }
}
