use snn_logquant::{LinearPe, LogBase, LogCode, LogPe, LogQuantizer, QuantError};

use crate::{PeKind, ProcessorConfig};

/// The actual synaptic arithmetic of one PE, instantiated from a processor
/// configuration: a multiplier for [`PeKind::Linear`], or the eq. 17
/// LUT+shift unit (from `snn-logquant`) for [`PeKind::Log`].
///
/// Building the log datapath *validates the co-design constraints* — the
/// kernel τ must satisfy eq. 18 or the configuration is rejected, exactly
/// as the real hardware could not be synthesized without a multiplier.
///
/// # Example
///
/// ```
/// use snn_hw::{PeDatapath, ProcessorConfig};
///
/// # fn main() -> Result<(), snn_logquant::QuantError> {
/// let dp = PeDatapath::for_config(&ProcessorConfig::proposed())?;
/// assert_eq!(dp.lut_entries(), Some(4)); // the paper's 4-entry LUT
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub enum PeDatapath {
    /// Multiplier datapath with the kernel τ it evaluates.
    Linear {
        /// The multiplier unit.
        pe: LinearPe,
        /// Kernel time constant.
        tau: f32,
    },
    /// Multiplication-free LUT+shift datapath (eq. 17).
    Log {
        /// The log-domain unit.
        pe: LogPe,
        /// Weight quantizer sharing the PE's exponent grid.
        quantizer: LogQuantizer,
    },
}

impl PeDatapath {
    /// Instantiates the datapath for a configuration (5-bit weights,
    /// `a_w = 2^(−1/2)`, FSR 1.0 — the paper's deployment settings).
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::KernelConstraint`] when a log PE is requested
    /// but `config.kernel_tau` violates eq. 18.
    pub fn for_config(config: &ProcessorConfig) -> Result<Self, QuantError> {
        match config.pe_kind {
            PeKind::Linear => Ok(PeDatapath::Linear {
                pe: LinearPe::new(),
                tau: config.kernel_tau,
            }),
            PeKind::Log => {
                let base = LogBase::inv_sqrt2();
                let pe = LogPe::for_kernel(config.kernel_tau, base)?.with_fsr_log2(0.0);
                let quantizer = LogQuantizer::with_fsr(base, config.weight_bits as u8, 0.0)?;
                Ok(PeDatapath::Log { pe, quantizer })
            }
        }
    }

    /// LUT entry count of the log datapath (`None` for the multiplier).
    pub fn lut_entries(&self) -> Option<usize> {
        match self {
            PeDatapath::Linear { .. } => None,
            PeDatapath::Log { pe, .. } => Some(pe.lut_entries()),
        }
    }

    /// One synaptic operation: the PSP contribution `w · κ(t)` of a spike
    /// at timestep `t` through a weight `w` (quantized on the fly for the
    /// log datapath — deployment stores codes instead).
    ///
    /// # Errors
    ///
    /// Propagates [`QuantError`] from the log unit (cannot occur for
    /// in-range inputs).
    pub fn synaptic_op(&self, weight: f32, t: u32) -> Result<f32, QuantError> {
        match self {
            PeDatapath::Linear { pe, tau } => Ok(pe.multiply(weight, *tau, t)),
            PeDatapath::Log { pe, quantizer } => pe.multiply(quantizer.code(weight), t),
        }
    }

    /// Encodes a weight into its hardware code (log datapath only).
    pub fn code(&self, weight: f32) -> Option<LogCode> {
        match self {
            PeDatapath::Linear { .. } => None,
            PeDatapath::Log { quantizer, .. } => Some(quantizer.code(weight)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proposed_config_builds_4_entry_lut() {
        let dp = PeDatapath::for_config(&ProcessorConfig::proposed()).unwrap();
        assert_eq!(dp.lut_entries(), Some(4));
    }

    #[test]
    fn baseline_uses_multiplier() {
        let dp = PeDatapath::for_config(&ProcessorConfig::baseline()).unwrap();
        assert_eq!(dp.lut_entries(), None);
        // tau=20 is fine for a multiplier: it computes any kernel.
        let v = dp.synaptic_op(0.5, 20).unwrap();
        assert!((v - 0.5 * (-1.0f32).exp2()).abs() < 1e-6);
    }

    #[test]
    fn log_pe_rejects_bad_tau() {
        let config = ProcessorConfig {
            kernel_tau: 5.0,
            ..ProcessorConfig::proposed()
        };
        assert!(matches!(
            PeDatapath::for_config(&config),
            Err(QuantError::KernelConstraint(_))
        ));
    }

    #[test]
    #[allow(clippy::approx_constant)] // weights on the 2^(-1/2) grid
    fn log_and_linear_agree_on_quantized_weights() {
        let log = PeDatapath::for_config(&ProcessorConfig::proposed()).unwrap();
        let lin = PeDatapath::for_config(&ProcessorConfig::with_cat()).unwrap();
        for &w in &[0.7071f32, -0.5, 0.25, -0.125] {
            // w already on the a_w = 2^(-1/2) grid, so both paths agree.
            for t in [0u32, 4, 11, 24] {
                let a = log.synaptic_op(w, t).unwrap();
                let b = lin.synaptic_op(w, t).unwrap();
                assert!((a - b).abs() < 1e-4, "w={w} t={t}: {a} vs {b}");
            }
        }
    }
}
