use serde::{Deserialize, Serialize};

/// Functional model of the input generator's **minfind unit**: merge-sorts
/// the spike streams of the input buffer so the PE array receives events in
/// nondecreasing time order (the SpinalFlow dataflow requirement).
///
/// The unit is a `ways`-ary min-tree: each cycle it pops the globally
/// earliest head among the source streams, so sorting `n` spikes costs `n`
/// pop cycles (plus `⌈log₂ ways⌉` pipeline fill), with
/// `n·⌈log₂ ways⌉` comparisons of energy.
///
/// # Example
///
/// ```
/// use snn_hw::MinFindUnit;
///
/// let unit = MinFindUnit::new(8);
/// let streams = vec![vec![(0usize, 3u32), (1, 7)], vec![(2, 1)], vec![(3, 5)]];
/// let (sorted, cycles) = unit.merge(&streams);
/// assert_eq!(sorted.iter().map(|s| s.1).collect::<Vec<_>>(), vec![1, 3, 5, 7]);
/// assert_eq!(cycles, 4 + 3); // 4 pops + log2(8) fill
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinFindUnit {
    ways: usize,
}

impl MinFindUnit {
    /// Creates a `ways`-ary minfind tree.
    ///
    /// # Panics
    ///
    /// Panics if `ways < 2`.
    pub fn new(ways: usize) -> Self {
        assert!(ways >= 2, "minfind needs at least two ways");
        Self { ways }
    }

    /// Tree arity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Pipeline fill latency, cycles.
    pub fn fill_cycles(&self) -> u64 {
        (usize::BITS - (self.ways - 1).leading_zeros()) as u64
    }

    /// Merges per-source streams of `(neuron, time)` events — each stream
    /// must already be time-sorted — and returns the merged stream plus the
    /// cycle count.
    pub fn merge(&self, streams: &[Vec<(usize, u32)>]) -> (Vec<(usize, u32)>, u64) {
        let total: usize = streams.iter().map(|s| s.len()).sum();
        let mut heads: Vec<usize> = vec![0; streams.len()];
        let mut out = Vec::with_capacity(total);
        while out.len() < total {
            let mut best: Option<(usize, (usize, u32))> = None;
            for (si, stream) in streams.iter().enumerate() {
                if let Some(&ev) = stream.get(heads[si]) {
                    let better = match best {
                        None => true,
                        Some((_, b)) => ev.1 < b.1 || (ev.1 == b.1 && ev.0 < b.0),
                    };
                    if better {
                        best = Some((si, ev));
                    }
                }
            }
            let (si, ev) = best.expect("total count guarantees a head exists");
            heads[si] += 1;
            out.push(ev);
        }
        (out, total as u64 + self.fill_cycles())
    }

    /// Cycle cost of sorting `n` spikes without materializing them.
    pub fn cycles_for(&self, n: usize) -> u64 {
        n as u64 + self.fill_cycles()
    }

    /// Comparator operations for `n` spikes (energy accounting).
    pub fn comparisons_for(&self, n: usize) -> u64 {
        n as u64 * self.fill_cycles().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_sorted_and_stable_by_neuron() {
        let unit = MinFindUnit::new(4);
        let streams = vec![
            vec![(5usize, 2u32), (6, 2)],
            vec![(1, 2)],
            vec![(9, 0), (2, 9)],
        ];
        let (sorted, _) = unit.merge(&streams);
        let times: Vec<u32> = sorted.iter().map(|s| s.1).collect();
        assert_eq!(times, vec![0, 2, 2, 2, 9]);
        // Equal times come out in neuron order.
        assert_eq!(sorted[1].0, 1);
        assert_eq!(sorted[2].0, 5);
    }

    #[test]
    fn cycles_scale_linearly() {
        let unit = MinFindUnit::new(16);
        assert_eq!(unit.cycles_for(1000), 1000 + 4);
        assert_eq!(unit.comparisons_for(10), 40);
    }

    #[test]
    fn empty_streams() {
        let unit = MinFindUnit::new(2);
        let (sorted, cycles) = unit.merge(&[vec![], vec![]]);
        assert!(sorted.is_empty());
        assert_eq!(cycles, unit.fill_cycles());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_degenerate_arity() {
        let _ = MinFindUnit::new(1);
    }
}
