use serde::{Deserialize, Serialize};

/// The threshold LUT of the spike encoder: precomputed falling threshold
/// `θ₀·2^(−t/τ)` for every encoding timestep (§4's "threshold LUT").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdLut {
    values: Vec<f32>,
}

impl ThresholdLut {
    /// Builds the base-2 threshold sequence for timesteps `0..=window`.
    ///
    /// # Panics
    ///
    /// Panics if `tau` or `theta0` is not strictly positive.
    pub fn base2(tau: f32, theta0: f32, window: u32) -> Self {
        assert!(
            tau > 0.0 && theta0 > 0.0,
            "kernel parameters must be positive"
        );
        Self {
            values: (0..=window)
                .map(|t| theta0 * (-(t as f32) / tau).exp2())
                .collect(),
        }
    }

    /// Threshold at encoding timestep `t`.
    pub fn at(&self, t: u32) -> f32 {
        self.values[t as usize]
    }

    /// Number of stored thresholds (window + 1).
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.values.len()
    }
}

/// Cycle-level functional model of the **spike encoder** (§4, right of
/// Fig. 5): a Vmem buffer, 128 comparators against the current threshold, a
/// 128→7 priority encoder that serializes simultaneous crossings one neuron
/// ID per cycle, and feedback that resets a fired neuron's Vmem.
///
/// Mirrors the paper's procedure: negative membranes are zeroed at load;
/// the timestep advances only when no remaining membrane exceeds the
/// current threshold; encoding ends when the buffer is all-zero or the last
/// timestep T has run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeEncoder {
    lut: ThresholdLut,
}

/// Result of encoding one Vmem batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodeResult {
    /// Emitted spikes as `(neuron, timestep)`, in emission order.
    pub spikes: Vec<(usize, u32)>,
    /// Total cycles: threshold steps + one per emitted spike.
    pub cycles: u64,
}

impl SpikeEncoder {
    /// Creates an encoder with the given threshold sequence.
    pub fn new(lut: ThresholdLut) -> Self {
        Self { lut }
    }

    /// The threshold LUT.
    pub fn lut(&self) -> &ThresholdLut {
        &self.lut
    }

    /// Encodes a buffer of membrane voltages into TTFS spikes.
    pub fn encode(&self, vmem: &[f32]) -> EncodeResult {
        // Load phase: negative membranes cannot spike; clamp to zero.
        let mut buf: Vec<f32> = vmem.iter().map(|&v| v.max(0.0)).collect();
        let mut spikes = Vec::new();
        let mut cycles: u64 = 0;
        let window = (self.lut.len() - 1) as u32;
        for t in 0..=window {
            let threshold = self.lut.at(t);
            // Priority encoder: one crossing serialized per cycle.
            loop {
                cycles += 1; // comparator + priority-encode step
                let hit = buf.iter().position(|&v| v > 0.0 && v >= threshold);
                match hit {
                    Some(neuron) => {
                        spikes.push((neuron, t));
                        buf[neuron] = 0.0; // feedback reset
                    }
                    None => break, // advance timestep
                }
            }
            if buf.iter().all(|&v| v == 0.0) {
                break; // all membranes reset: encoding done early
            }
        }
        EncodeResult { spikes, cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encoder() -> SpikeEncoder {
        SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24))
    }

    #[test]
    fn lut_is_monotone_decreasing() {
        let lut = ThresholdLut::base2(4.0, 1.0, 24);
        for t in 1..lut.len() {
            assert!(lut.at(t as u32) < lut.at(t as u32 - 1));
        }
        assert_eq!(lut.len(), 25);
    }

    #[test]
    fn larger_vmem_fires_earlier() {
        let enc = encoder();
        let res = enc.encode(&[0.9, 0.3, 0.05]);
        let t_of = |n: usize| res.spikes.iter().find(|s| s.0 == n).map(|s| s.1);
        assert!(t_of(0).unwrap() < t_of(1).unwrap());
        assert!(t_of(1).unwrap() < t_of(2).unwrap());
    }

    #[test]
    fn negative_vmem_never_spikes() {
        let enc = encoder();
        let res = enc.encode(&[-0.5, 0.5]);
        assert_eq!(res.spikes.len(), 1);
        assert_eq!(res.spikes[0].0, 1);
    }

    #[test]
    fn at_most_one_spike_per_neuron() {
        let enc = encoder();
        let res = enc.encode(&[1.0, 1.0, 0.7, 0.2, 0.0]);
        let mut neurons: Vec<usize> = res.spikes.iter().map(|s| s.0).collect();
        neurons.sort_unstable();
        neurons.dedup();
        assert_eq!(neurons.len(), res.spikes.len());
    }

    #[test]
    fn simultaneous_crossings_serialize_on_same_timestep() {
        let enc = encoder();
        let res = enc.encode(&[1.0, 1.0, 1.0]);
        assert_eq!(res.spikes.len(), 3);
        assert!(res.spikes.iter().all(|s| s.1 == 0), "{:?}", res.spikes);
        // 3 emit cycles + 1 no-hit cycle to notice the buffer is clear.
        assert_eq!(res.cycles, 4);
    }

    #[test]
    fn early_termination_when_all_reset() {
        let enc = encoder();
        let res = enc.encode(&[1.0]);
        // One emit cycle, one advance check; never walks the full window.
        assert!(res.cycles < 5);
    }

    #[test]
    fn encoding_matches_kernel_quantization() {
        // The encoder must emit exactly the timestep ⌈−τ·log2(u)⌉ the
        // base-2 kernel predicts.
        let enc = encoder();
        for &u in &[0.9f32, 0.51, 0.2, 0.0401] {
            let res = enc.encode(&[u]);
            let expected = (-4.0 * u.log2() - 1e-4).ceil().max(0.0) as u32;
            assert_eq!(res.spikes[0].1, expected, "u={u}");
        }
    }

    #[test]
    fn below_window_floor_never_fires() {
        let enc = encoder();
        // kappa(24) = 2^-6 ~ 0.0156; 0.001 is unrepresentable.
        let res = enc.encode(&[0.001]);
        assert!(res.spikes.is_empty());
    }
}
