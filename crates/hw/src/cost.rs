use serde::{Deserialize, Serialize};

use crate::{DecoderKind, PeKind, ProcessorConfig};

/// Relative area/power of one processor configuration's PE array, split the
/// way Fig. 6 plots it (PE datapath vs spike decoder), normalized so the
/// baseline configuration totals 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentCosts {
    /// PE-array datapath share (multipliers/shifters + accumulators + ctrl).
    pub pe: f32,
    /// Spike-decoder share (per-layer kernel SRAM or shared LUT).
    pub decoder: f32,
}

impl ComponentCosts {
    /// Total normalized cost.
    pub fn total(&self) -> f32 {
        self.pe + self.decoder
    }
}

/// Analytical area/power model of the PE array.
///
/// The constants below decompose the **baseline** array (multiplier PEs +
/// per-layer SRAM kernel decoders) into components; they are the
/// calibration knobs standing in for the paper's Synopsys synthesis. The
/// Fig. 6 staircase is *derived* from component substitution:
///
/// * CAT (config "I"): `DecoderKind::Sram → Lut` removes the kernel SRAM —
///   −12.7 % area / −14.7 % power of the baseline array.
/// * Log PE (config "I+II"): `PeKind::Linear → Log` swaps the multiplier
///   for a 4-entry LUT + barrel shifter — a further −8.1 % / −8.6 %.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaPowerModel {
    /// Per-PE multiplier area (normalized units).
    pub area_pe_mult: f32,
    /// Per-PE log datapath (LUT share + shifter) area.
    pub area_pe_logdp: f32,
    /// Per-PE common area (accumulator, Vmem regs, control).
    pub area_pe_common: f32,
    /// Whole-array kernel-SRAM decoder area.
    pub area_decoder_sram: f32,
    /// Whole-array shared-LUT decoder area.
    pub area_decoder_lut: f32,
    /// Per-PE multiplier power.
    pub pow_pe_mult: f32,
    /// Per-PE log datapath power.
    pub pow_pe_logdp: f32,
    /// Per-PE common power.
    pub pow_pe_common: f32,
    /// Whole-array kernel-SRAM decoder power.
    pub pow_decoder_sram: f32,
    /// Whole-array shared-LUT decoder power.
    pub pow_decoder_lut: f32,
    /// Absolute scale: mm² of PE array per normalized area unit.
    pub pe_array_mm2_per_unit: f32,
    /// Absolute scale: mW of PE array per normalized power unit.
    pub pe_array_mw_per_unit: f32,
    /// On-chip SRAM density, mm² per KB (28 nm-class 6T).
    pub sram_mm2_per_kb: f32,
    /// Fixed area for control/DMA/encoder blocks, mm².
    pub misc_mm2: f32,
    /// Power of SRAM buffers + control at full activity, mW.
    pub buffers_ctrl_mw: f32,
}

impl AreaPowerModel {
    /// 28 nm-class calibration (see module docs).
    pub fn cmos28() -> Self {
        let pes = 128.0f32;
        Self {
            // Area: baseline total = 1.0 → decoder SRAM 0.140, multipliers
            // 0.3072, common 0.5528.
            area_pe_mult: 0.0024,
            area_pe_logdp: 0.0024 - 0.081 / pes,
            area_pe_common: 0.5528 / pes,
            area_decoder_sram: 0.140,
            area_decoder_lut: 0.140 - 0.127,
            // Power: baseline total = 1.0 → decoder SRAM 0.160, multipliers
            // 0.3328, common 0.5072.
            pow_pe_mult: 0.0026,
            pow_pe_logdp: 0.0026 - 0.086 / pes,
            pow_pe_common: 0.5072 / pes,
            pow_decoder_sram: 0.160,
            pow_decoder_lut: 0.160 - 0.147,
            pe_array_mm2_per_unit: 0.38,
            pe_array_mw_per_unit: 55.0,
            sram_mm2_per_kb: 0.0013,
            misc_mm2: 0.08,
            buffers_ctrl_mw: 25.0,
        }
    }

    /// Normalized PE-array area of a configuration, split per Fig. 6.
    pub fn area(&self, config: &ProcessorConfig) -> ComponentCosts {
        let per_pe = match config.pe_kind {
            PeKind::Linear => self.area_pe_mult,
            PeKind::Log => self.area_pe_logdp,
        } + self.area_pe_common;
        let decoder = match config.decoder_kind {
            DecoderKind::Sram => self.area_decoder_sram,
            DecoderKind::Lut => self.area_decoder_lut,
        };
        ComponentCosts {
            pe: per_pe * config.pe_count as f32,
            decoder,
        }
    }

    /// Normalized PE-array power of a configuration, split per Fig. 6.
    pub fn power(&self, config: &ProcessorConfig) -> ComponentCosts {
        let per_pe = match config.pe_kind {
            PeKind::Linear => self.pow_pe_mult,
            PeKind::Log => self.pow_pe_logdp,
        } + self.pow_pe_common;
        let decoder = match config.decoder_kind {
            DecoderKind::Sram => self.pow_decoder_sram,
            DecoderKind::Lut => self.pow_decoder_lut,
        };
        ComponentCosts {
            pe: per_pe * config.pe_count as f32,
            decoder,
        }
    }

    /// Absolute chip area estimate in mm² (PE array + SRAM buffers + misc),
    /// landing near the paper's 0.9102 mm² for the proposed configuration.
    pub fn chip_area_mm2(&self, config: &ProcessorConfig) -> f32 {
        let sram_kb =
            (config.weight_buffer_bytes() + config.input_buffer_kb * 1024) as f32 / 1024.0;
        self.area(config).total() * self.pe_array_mm2_per_unit
            + sram_kb * self.sram_mm2_per_kb
            + self.misc_mm2
    }

    /// Absolute chip power estimate in mW at full activity, landing near
    /// the paper's 67.3 mW for the proposed configuration.
    pub fn chip_power_mw(&self, config: &ProcessorConfig) -> f32 {
        self.power(config).total() * self.pe_array_mw_per_unit + self.buffers_ctrl_mw
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        Self::cmos28()
    }
}

/// Per-event energy constants (pJ), 28 nm-class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Off-chip DRAM access energy per bit (the paper's HBM-like 4 pJ/bit).
    pub dram_pj_per_bit: f32,
    /// On-chip SRAM read energy per bit.
    pub sram_pj_per_bit: f32,
    /// Synaptic operation on a linear (multiplier) PE, pJ.
    pub sop_linear_pj: f32,
    /// Synaptic operation on a log (LUT+shift) PE, pJ.
    pub sop_log_pj: f32,
    /// Spike-encoder energy per comparator/priority-encoder cycle, pJ.
    pub encoder_pj_per_cycle: f32,
    /// Minfind sorting energy per spike, pJ.
    pub sort_pj_per_spike: f32,
    /// Chip-wide static/clock energy per cycle, pJ (leakage + clock tree).
    pub idle_pj_per_cycle: f32,
}

impl EnergyModel {
    /// 28 nm-class calibration consistent with [`AreaPowerModel::cmos28`].
    pub fn cmos28() -> Self {
        Self {
            dram_pj_per_bit: 4.0,
            sram_pj_per_bit: 0.06,
            sop_linear_pj: 1.10,
            sop_log_pj: 0.95,
            encoder_pj_per_cycle: 2.0,
            sort_pj_per_spike: 1.5,
            idle_pj_per_cycle: 60.0,
        }
    }

    /// SOP energy for a PE kind.
    pub fn sop_pj(&self, kind: PeKind) -> f32 {
        match kind {
            PeKind::Linear => self.sop_linear_pj,
            PeKind::Log => self.sop_log_pj,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::cmos28()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_area_staircase_emerges() {
        let m = AreaPowerModel::cmos28();
        let base = m.area(&ProcessorConfig::baseline()).total();
        let cat = m.area(&ProcessorConfig::with_cat()).total();
        let full = m.area(&ProcessorConfig::proposed()).total();
        assert!(
            (base - 1.0).abs() < 1e-3,
            "baseline normalizes to 1: {base}"
        );
        assert!(
            ((base - cat) - 0.127).abs() < 2e-3,
            "CAT saves 12.7%: {}",
            base - cat
        );
        assert!(
            ((cat - full) - 0.081).abs() < 2e-3,
            "log PE saves 8.1%: {}",
            cat - full
        );
    }

    #[test]
    fn fig6_power_staircase_emerges() {
        let m = AreaPowerModel::cmos28();
        let base = m.power(&ProcessorConfig::baseline()).total();
        let cat = m.power(&ProcessorConfig::with_cat()).total();
        let full = m.power(&ProcessorConfig::proposed()).total();
        assert!((base - 1.0).abs() < 1e-3);
        assert!(((base - cat) - 0.147).abs() < 2e-3, "CAT saves 14.7%");
        assert!(((cat - full) - 0.086).abs() < 2e-3, "log PE saves 8.6%");
    }

    #[test]
    fn absolute_area_power_near_table4() {
        let m = AreaPowerModel::cmos28();
        let area = m.chip_area_mm2(&ProcessorConfig::proposed());
        assert!(
            (area - 0.9102).abs() < 0.1,
            "chip area {area} vs 0.9102 mm2"
        );
        let power = m.chip_power_mw(&ProcessorConfig::proposed());
        assert!((power - 67.3).abs() < 5.0, "chip power {power} vs 67.3 mW");
    }

    #[test]
    fn log_pe_cheaper_per_sop() {
        let e = EnergyModel::cmos28();
        assert!(e.sop_pj(PeKind::Log) < e.sop_pj(PeKind::Linear));
    }
}
