use serde::{Deserialize, Serialize};
use std::fmt;

/// One column of the Table 4 processor comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Design name ("This work", "Tianjic", "TPU (redesigned)").
    pub design: String,
    /// Design type ("SNN" / "ANN").
    pub kind: String,
    /// Process node label.
    pub process: String,
    /// Supply voltage, V.
    pub voltage: f32,
    /// Area, mm².
    pub area_mm2: f32,
    /// Clock, MHz.
    pub frequency_mhz: u32,
    /// PEs (MACs for the TPU).
    pub pes: usize,
    /// Peak throughput, GSOP/s or GMAC/s.
    pub peak_gops: f32,
    /// Power, mW.
    pub power_mw: f32,
    /// Per-dataset results. `None` entries render as "-" (Tianjic reports
    /// CIFAR-10 only).
    pub datasets: Vec<DatasetRow>,
}

/// One dataset's result row: (dataset, accuracy %, energy µJ, fps).
pub type DatasetRow = (String, Option<f32>, Option<f64>, Option<f64>);

/// A renderable Table 4.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Table columns.
    pub rows: Vec<ComparisonRow>,
}

impl ComparisonTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a design column.
    pub fn push(&mut self, row: ComparisonRow) {
        self.rows.push(row);
    }

    /// The quoted Tianjic column of Table 4 (measured numbers from the
    /// paper; Tianjic is a comparison citation, not a system under test).
    pub fn tianjic_quoted() -> ComparisonRow {
        ComparisonRow {
            design: "Tianjic [10]".into(),
            kind: "SNN".into(),
            process: "28 nm".into(),
            voltage: 0.85,
            area_mm2: 14.44,
            frequency_mhz: 300,
            pes: 2496,
            peak_gops: 683.2,
            power_mw: 950.0,
            datasets: vec![
                ("CIFAR10".into(), Some(89.5), Some(129.0), Some(46827.0)),
                ("CIFAR100".into(), None, None, None),
                ("Tiny-ImageNet".into(), None, None, None),
            ],
        }
    }
}

impl fmt::Display for ComparisonTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_opt_f32 = |v: Option<f32>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        let fmt_opt_f64 = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.1}"));
        writeln!(
            f,
            "{:<24} {:>8} {:>10} {:>8} {:>6} {:>10} {:>10} {:>9}",
            "Design", "Type", "Area mm2", "MHz", "PEs", "GOP/s", "Power mW", "Voltage"
        )?;
        for row in &self.rows {
            writeln!(
                f,
                "{:<24} {:>8} {:>10.4} {:>8} {:>6} {:>10.1} {:>10.1} {:>9.2}",
                row.design,
                row.kind,
                row.area_mm2,
                row.frequency_mhz,
                row.pes,
                row.peak_gops,
                row.power_mw,
                row.voltage
            )?;
            for (name, acc, uj, fps) in &row.datasets {
                writeln!(
                    f,
                    "    {:<20} acc {:>6} %   energy {:>9} uJ   {:>9} fps",
                    name,
                    fmt_opt_f32(*acc),
                    fmt_opt_f64(*uj),
                    fmt_opt_f64(*fps)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tianjic_column_matches_paper() {
        let t = ComparisonTable::tianjic_quoted();
        assert_eq!(t.pes, 2496);
        assert_eq!(t.datasets[0].1, Some(89.5));
        assert_eq!(t.datasets[1].1, None);
    }

    #[test]
    fn display_renders_dashes_for_missing() {
        let mut table = ComparisonTable::new();
        table.push(ComparisonTable::tianjic_quoted());
        let s = table.to_string();
        assert!(s.contains("Tianjic"));
        assert!(s.contains('-'));
    }
}
