//! Property-based tests for the functional hardware units.

use proptest::prelude::*;
use snn_hw::{MinFindUnit, SpikeEncoder, ThresholdLut};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The spike encoder emits at most one spike per neuron, all within the
    /// window, and larger membranes never fire later.
    #[test]
    fn encoder_ttfs_discipline(vmem in proptest::collection::vec(-1.0f32..2.0, 1..64)) {
        let enc = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24));
        let res = enc.encode(&vmem);
        let mut seen = vec![false; vmem.len()];
        for &(n, t) in &res.spikes {
            prop_assert!(!seen[n], "duplicate spike for neuron {n}");
            seen[n] = true;
            prop_assert!(t <= 24);
        }
        // Monotonicity across pairs that both fired.
        for &(a, ta) in &res.spikes {
            for &(b, tb) in &res.spikes {
                if vmem[a] > vmem[b] {
                    prop_assert!(ta <= tb, "vmem {} fired at {ta}, vmem {} at {tb}", vmem[a], vmem[b]);
                }
            }
        }
    }

    /// Encoder cycle count is bounded: at most one cycle per threshold step
    /// per "still busy" check plus one per emitted spike.
    #[test]
    fn encoder_cycles_bounded(vmem in proptest::collection::vec(-1.0f32..2.0, 1..64)) {
        let window = 24u32;
        let enc = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, window));
        let res = enc.encode(&vmem);
        prop_assert!(res.cycles <= (window as u64 + 1) + res.spikes.len() as u64);
        prop_assert!(res.cycles >= res.spikes.len() as u64);
    }

    /// Negative or zero membranes never appear in the spike list.
    #[test]
    fn encoder_ignores_nonpositive(vmem in proptest::collection::vec(-2.0f32..0.0, 1..32)) {
        let enc = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24));
        let res = enc.encode(&vmem);
        prop_assert!(res.spikes.is_empty());
        prop_assert_eq!(res.cycles, 1); // a single no-hit scan
    }

    /// The minfind merge output is time-sorted and a permutation of the
    /// inputs.
    #[test]
    fn minfind_sorts_and_preserves(
        streams in proptest::collection::vec(
            proptest::collection::vec((0usize..1000, 0u32..25), 0..32),
            1..8,
        )
    ) {
        // Pre-sort each stream by time (the unit's input contract).
        let streams: Vec<Vec<(usize, u32)>> = streams
            .into_iter()
            .map(|mut s| {
                s.sort_by_key(|e| e.1);
                s
            })
            .collect();
        let unit = MinFindUnit::new(8);
        let (merged, cycles) = unit.merge(&streams);
        let total: usize = streams.iter().map(|s| s.len()).sum();
        prop_assert_eq!(merged.len(), total);
        prop_assert!(merged.windows(2).all(|w| w[0].1 <= w[1].1), "time-sorted");
        prop_assert_eq!(cycles, total as u64 + unit.fill_cycles());
        // Multiset equality on times.
        let mut a: Vec<u32> = merged.iter().map(|e| e.1).collect();
        let mut b: Vec<u32> = streams.iter().flatten().map(|e| e.1).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
