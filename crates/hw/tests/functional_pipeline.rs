//! Functional cross-validation of the processor datapath: input spikes are
//! sorted by the minfind unit, integrated through the *actual* eq. 17
//! LUT+shift PE arithmetic, and encoded by the spike-encoder model. The
//! resulting spikes must match what the TTFS math predicts — i.e. the
//! hardware units compose into exactly the layer the algorithm specifies.

// Test weights intentionally sit on the a_w = 2^(-1/2) quantization grid,
// which clippy mistakes for a sloppy FRAC_1_SQRT_2.
#![allow(clippy::approx_constant)]

use snn_hw::{MinFindUnit, PeDatapath, ProcessorConfig, SpikeEncoder, ThresholdLut};

/// One dense SNN layer executed entirely with the functional hardware
/// units.
fn run_layer_on_hardware(
    datapath: &PeDatapath,
    encoder: &SpikeEncoder,
    minfind: &MinFindUnit,
    input_streams: &[Vec<(usize, u32)>],
    weights: &[Vec<f32>], // [out][in]
    bias: &[f32],
) -> Vec<(usize, u32)> {
    // 1. Input generator: merge-sort the spike streams.
    let (sorted, _cycles) = minfind.merge(input_streams);
    // 2. PE array: event-driven integration, one PSP per (spike, output).
    let mut vmem: Vec<f32> = bias.to_vec();
    for &(neuron, t) in &sorted {
        for (o, v) in vmem.iter_mut().enumerate() {
            *v += datapath
                .synaptic_op(weights[o][neuron], t)
                .expect("in-range synaptic op");
        }
    }
    // 3. Output processing: PPU hands membranes to the spike encoder.
    encoder.encode(&vmem).spikes
}

#[test]
fn hardware_units_compose_into_a_ttfs_layer() {
    let config = ProcessorConfig::proposed(); // log PEs, tau=4, T=24
    let datapath = PeDatapath::for_config(&config).expect("valid co-design");
    let encoder = SpikeEncoder::new(ThresholdLut::base2(config.kernel_tau, 1.0, config.window));
    let minfind = MinFindUnit::new(16);

    // Weights already on the a_w = 2^(-1/2) grid (deployment stores codes).
    let weights = vec![
        vec![0.7071, 0.5, 0.0],
        vec![0.25, -0.3536, 0.5],
        vec![0.125, 0.177, 0.25],
    ];
    let bias = [0.05f32, 0.02, 0.0];
    // Three input neurons spiking at different times (two sources).
    let streams = vec![vec![(0usize, 2u32), (2, 9)], vec![(1, 5)]];

    let hw_spikes = run_layer_on_hardware(&datapath, &encoder, &minfind, &streams, &weights, &bias);

    // Reference: same math with exact float kernels.
    let kernel = |t: u32| (-(t as f32) / config.kernel_tau).exp2();
    let mut vmem = bias;
    for &(n, t) in streams.iter().flatten() {
        for (o, v) in vmem.iter_mut().enumerate() {
            *v += weights[o][n] * kernel(t);
        }
    }
    let expected: Vec<Option<u32>> = vmem
        .iter()
        .map(|&u| {
            if u <= 0.0 {
                None
            } else if u >= 1.0 {
                Some(0)
            } else {
                let k = (-config.kernel_tau * u.log2() - 1e-4).ceil().max(0.0);
                (k <= config.window as f32).then_some(k as u32)
            }
        })
        .collect();

    for (o, exp) in expected.iter().enumerate() {
        let got = hw_spikes.iter().find(|s| s.0 == o).map(|s| s.1);
        assert_eq!(
            got, *exp,
            "output neuron {o}: hw {got:?} vs expected {exp:?}"
        );
    }
}

#[test]
fn linear_and_log_datapaths_produce_identical_spikes() {
    // With grid-aligned weights the two PE flavours must emit the same
    // spike times — the Fig. 6 substitution is functionally transparent.
    let log_dp = PeDatapath::for_config(&ProcessorConfig::proposed()).unwrap();
    let lin_dp = PeDatapath::for_config(&ProcessorConfig::with_cat()).unwrap();
    let encoder = SpikeEncoder::new(ThresholdLut::base2(4.0, 1.0, 24));
    let minfind = MinFindUnit::new(16);

    let weights = vec![vec![0.5, 0.3536], vec![-0.25, 0.7071]];
    let bias = [0.1f32, 0.05];
    let streams = vec![vec![(0usize, 1u32)], vec![(1usize, 6u32)]];

    let a = run_layer_on_hardware(&log_dp, &encoder, &minfind, &streams, &weights, &bias);
    let b = run_layer_on_hardware(&lin_dp, &encoder, &minfind, &streams, &weights, &bias);
    assert_eq!(a, b);
}
