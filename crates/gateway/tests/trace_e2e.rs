//! End-to-end request tracing through the full network stack: every
//! `POST /v1/infer` against a traced gateway yields a `trace_id` whose
//! `GET /v1/trace/<id>` tree spans the whole lifecycle — socket receive,
//! parse, decode, EDF queue wait, flush (with its reason), per-CSR-stage
//! execution, and response write — and tracing never perturbs logits.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{field, Content};
use snn_gateway::{client::HttpClient, Gateway, GatewayConfig, InferRequest, InferResponse};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendChoice, StreamingConfig, StreamingServer};
use snn_sim::EventSnn;
use snn_trace::TraceCollector;
use ttfs_core::{convert, Base2Kernel, SnnModel};

const DIMS: [usize; 3] = [1, 2, 4];
const SAMPLE_LEN: usize = 8;
const CLASSES: usize = 3;

fn dense_model(seed: u64) -> SnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(SAMPLE_LEN, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(6, CLASSES, &mut rng)),
    ]);
    convert(&net, Base2Kernel::paper_default(), 24).unwrap()
}

fn traced_stack(seed: u64, config: StreamingConfig) -> (Arc<StreamingServer>, Arc<TraceCollector>) {
    let model = Arc::new(dense_model(seed));
    let collector = Arc::new(TraceCollector::new(0));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming_traced(model, &DIMS, config, Arc::clone(&collector))
            .expect("traced streaming stack"),
    );
    (server, collector)
}

/// One parsed span from the `GET /v1/trace/<id>` JSON body.
#[derive(Debug, Clone)]
struct WireSpan {
    span_id: u64,
    parent_id: u64,
    name: String,
    start_us: u64,
    dur_us: u64,
    attrs: Vec<(String, Content)>,
}

impl WireSpan {
    fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    fn attr(&self, key: &str) -> Option<&Content> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Fetches and parses one trace tree; panics on any malformed payload.
fn fetch_tree(client: &mut HttpClient, trace_id: &str) -> Vec<WireSpan> {
    let response = client
        .get(&format!("/v1/trace/{trace_id}"))
        .expect("trace fetch");
    assert_eq!(response.status, 200, "trace {trace_id} must be retrievable");
    let body = String::from_utf8(response.body).unwrap();
    let parsed: Content = serde_json::from_str(&body).unwrap();
    let map = parsed.as_map().unwrap();
    assert_eq!(
        field(map, "trace_id").unwrap().as_str(),
        Some(trace_id),
        "tree echoes its id"
    );
    field(map, "spans")
        .unwrap()
        .as_seq()
        .unwrap()
        .iter()
        .map(|span| {
            let span = span.as_map().unwrap();
            WireSpan {
                span_id: field(span, "span_id").unwrap().as_u64().unwrap(),
                parent_id: field(span, "parent_id").unwrap().as_u64().unwrap(),
                name: field(span, "name").unwrap().as_str().unwrap().to_string(),
                start_us: field(span, "start_us").unwrap().as_u64().unwrap(),
                dur_us: field(span, "dur_us").unwrap().as_u64().unwrap(),
                attrs: field(span, "attrs").unwrap().as_map().unwrap().to_vec(),
            }
        })
        .collect()
}

/// A complete, well-formed tree: exactly one root, every parent present,
/// child intervals nested inside their parent's, and at least one span
/// per lifecycle layer.
fn assert_tree_complete(spans: &[WireSpan], trace_id: &str) {
    let roots: Vec<&WireSpan> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "one root in {trace_id}: {spans:#?}");
    assert_eq!(roots[0].name, "http.request");
    for required in [
        "http.parse",
        "request.decode",
        "infer.submit",
        "queue.wait",
        "batch.flush",
        "batch.exec",
        "csr.chunk",
        "encode",
        "stage.exec",
        "ticket.wait",
        "http.respond",
    ] {
        assert!(
            spans.iter().any(|s| s.name == required),
            "trace {trace_id} is missing {required}: {spans:#?}"
        );
    }
    for span in spans {
        if span.parent_id == 0 {
            continue;
        }
        let parent = spans
            .iter()
            .find(|p| p.span_id == span.parent_id)
            .unwrap_or_else(|| panic!("orphan span in {trace_id}: {span:?}"));
        assert!(
            span.start_us >= parent.start_us && span.end_us() <= parent.end_us(),
            "span {span:?} does not nest inside {parent:?}"
        );
    }
    let flush = spans.iter().find(|s| s.name == "batch.flush").unwrap();
    let reason = flush.attr("reason").and_then(Content::as_str);
    assert!(
        matches!(reason, Some("edf_deadline" | "max_batch" | "drain")),
        "flush reason must be attributed: {flush:?}"
    );
    let stage = spans.iter().find(|s| s.name == "stage.exec").unwrap();
    assert!(
        stage.attr("kind").is_some(),
        "stage spans carry their layer kind: {stage:?}"
    );
}

/// The acceptance path: one request, its `trace_id` echoed in the JSON
/// response, and a follow-up `GET /v1/trace/<id>` returning a complete
/// tree whose root covers (at least) the measured end-to-end latency.
#[test]
fn trace_tree_covers_the_request_it_describes() {
    let (server, _collector) = traced_stack(
        51,
        StreamingConfig {
            threads: 2,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    let body =
        serde_json::to_string(&InferRequest::new(DIMS.to_vec(), vec![0.4; SAMPLE_LEN])).unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let response = client.post_json("/v1/infer", &body).unwrap();
    assert_eq!(response.status, 200);
    let wire: InferResponse =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(
        wire.trace_id.len(),
        16,
        "traced gateways echo a 16-hex-digit id: {:?}",
        wire.trace_id
    );

    let spans = fetch_tree(&mut client, &wire.trace_id);
    assert_tree_complete(&spans, &wire.trace_id);
    let root = spans.iter().find(|s| s.parent_id == 0).unwrap();
    assert!(
        root.dur_us as f64 >= 0.95 * wire.e2e_us,
        "root span ({} us) must cover >=95% of the measured e2e ({} us)",
        root.dur_us,
        wire.e2e_us
    );
    gateway.shutdown();
    server.shutdown();
}

/// A caller-chosen `x-snn-trace-id` header is honored: the response echoes
/// it and the tree is filed under it.
#[test]
fn caller_supplied_trace_id_is_honored() {
    let (server, _collector) = traced_stack(52, StreamingConfig::default());
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    let body =
        serde_json::to_string(&InferRequest::new(DIMS.to_vec(), vec![0.6; SAMPLE_LEN])).unwrap();
    let chosen = "00000000deadbeef";
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    client
        .send_raw(
            format!(
                "POST /v1/infer HTTP/1.1\r\nHost: gateway\r\n\
                 x-snn-trace-id: {chosen}\r\n\
                 Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 200);
    let wire: InferResponse =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert_eq!(wire.trace_id, chosen, "the caller's id rides through");
    let spans = fetch_tree(&mut client, chosen);
    assert_tree_complete(&spans, chosen);
    gateway.shutdown();
    server.shutdown();
}

/// Unknown and malformed trace ids answer 404/400 without disturbing the
/// stack; an untraced gateway answers 404 for every id.
#[test]
fn trace_route_rejects_unknown_and_malformed_ids() {
    let (server, _collector) = traced_stack(53, StreamingConfig::default());
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(
        client.get("/v1/trace/ffffffffffffffff").unwrap().status,
        404
    );
    assert_eq!(client.get("/v1/trace/not-hex").unwrap().status, 400);
    assert_eq!(client.get("/v1/trace/").unwrap().status, 400);
    let response = client.post_json("/v1/trace/abc", "{}").unwrap();
    assert_eq!(response.status, 405);
    gateway.shutdown();
    server.shutdown();

    let model = Arc::new(dense_model(53));
    let untraced = Arc::new(
        BackendChoice::Csr
            .serve_streaming(model, &DIMS, StreamingConfig::default())
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&untraced),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(
        client.get("/v1/trace/00000000000000ab").unwrap().status,
        404
    );
    let body =
        serde_json::to_string(&InferRequest::new(DIMS.to_vec(), vec![0.4; SAMPLE_LEN])).unwrap();
    let response = client.post_json("/v1/infer", &body).unwrap();
    assert_eq!(response.status, 200);
    let wire: InferResponse =
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap();
    assert!(wire.trace_id.is_empty(), "untraced gateways echo no id");
    gateway.shutdown();
    untraced.shutdown();
}

proptest! {
    // Each case spins up a real TCP server and threads; keep cases few.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Concurrency property: N clients hammer one traced gateway; every
    /// response's trace resolves to a complete, non-interleaved tree
    /// (exactly one root, every parent present, intervals nested), and
    /// the logits stay bit-identical to the reference simulator — the
    /// instrumented path must not perturb numerics under contention.
    #[test]
    fn concurrent_clients_get_complete_disjoint_trees(
        seed in 0u64..256,
        clients in 2usize..5,
        max_batch in 1usize..6,
        delay_us in 0u64..2_000,
    ) {
        let model = Arc::new(dense_model(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ACE);
        let per_client = 3usize;
        let n = clients * per_client;
        let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
        let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

        let collector = Arc::new(TraceCollector::new(0));
        let server = Arc::new(
            BackendChoice::Csr
                .serve_streaming_traced(
                    Arc::clone(&model),
                    &DIMS,
                    StreamingConfig {
                        threads: 2,
                        max_batch,
                        max_delay: Duration::from_micros(delay_us),
                        max_pending: 0,
                        brownout: None,
                    },
                    Arc::clone(&collector),
                )
                .expect("traced streaming stack"),
        );
        let mut gateway = Gateway::start(
            Arc::clone(&server),
            GatewayConfig {
                workers: clients,
                poll_interval: Duration::from_millis(5),
                ..GatewayConfig::for_dims(&DIMS)
            },
        )
        .expect("gateway start");
        let addr = gateway.local_addr();

        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let rows: Vec<(usize, Vec<f32>)> = (0..per_client)
                    .map(|i| {
                        let row = c * per_client + i;
                        let start = row * SAMPLE_LEN;
                        (row, x.as_slice()[start..start + SAMPLE_LEN].to_vec())
                    })
                    .collect();
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("connect");
                    rows.into_iter()
                        .map(|(row, pixels)| {
                            let body = serde_json::to_string(
                                &InferRequest::new(DIMS.to_vec(), pixels),
                            )
                            .unwrap();
                            let response =
                                client.post_json("/v1/infer", &body).expect("post");
                            assert_eq!(response.status, 200);
                            let wire: InferResponse = serde_json::from_str(
                                &String::from_utf8(response.body).unwrap(),
                            )
                            .unwrap();
                            // Fetch the tree over the same connection the
                            // moment the response lands — completeness must
                            // not depend on settling time.
                            let spans = fetch_tree(&mut client, &wire.trace_id);
                            (row, wire, spans)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        let mut seen_ids = std::collections::HashSet::new();
        for handle in handles {
            for (row, wire, spans) in handle.join().expect("client thread") {
                prop_assert!(seen_ids.insert(wire.trace_id.clone()),
                    "trace ids are unique per request");
                assert_tree_complete(&spans, &wire.trace_id);
                let start = row * CLASSES;
                let reference = &expected.as_slice()[start..start + CLASSES];
                prop_assert_eq!(wire.logits.len(), CLASSES);
                for (a, b) in wire.logits.iter().zip(reference) {
                    prop_assert_eq!(a.to_bits(), b.to_bits(),
                        "traced serving must keep logits bit-identical");
                }
            }
        }
        prop_assert_eq!(collector.spans_dropped(), 0,
            "default capacity must absorb this run");
        gateway.shutdown();
        server.shutdown();
    }
}

/// Tracing toggled off at runtime (`set_enabled(false)`) stops recording
/// and costs the data path nothing observable: logits stay bit-identical
/// to both the traced run and the reference simulator.
#[test]
fn disabling_tracing_preserves_logits_and_records_nothing() {
    let model = Arc::new(dense_model(54));
    let mut rng = StdRng::seed_from_u64(77);
    let x = snn_tensor::uniform(&[1, 1, 2, 4], 0.0, 1.0, &mut rng);
    let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");
    let pixels = x.as_slice().to_vec();
    let body = serde_json::to_string(&InferRequest::new(DIMS.to_vec(), pixels)).unwrap();

    let collector = Arc::new(TraceCollector::new(0));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming_traced(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig::default(),
                Arc::clone(&collector),
            )
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();

    let infer = |client: &mut HttpClient| -> InferResponse {
        let response = client.post_json("/v1/infer", &body).unwrap();
        assert_eq!(response.status, 200);
        serde_json::from_str(&String::from_utf8(response.body).unwrap()).unwrap()
    };

    let traced = infer(&mut client);
    assert!(!traced.trace_id.is_empty());

    collector.set_enabled(false);
    let recorded_before = collector.spans_recorded();
    let untraced = infer(&mut client);
    assert!(
        untraced.trace_id.is_empty(),
        "disabled tracing mints no ids: {:?}",
        untraced.trace_id
    );
    assert_eq!(
        collector.spans_recorded(),
        recorded_before,
        "disabled tracing records nothing"
    );
    for (a, b) in traced.logits.iter().zip(&untraced.logits) {
        assert_eq!(a.to_bits(), b.to_bits(), "tracing must not perturb logits");
    }
    for (a, b) in untraced.logits.iter().zip(expected.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "served logits match EventSnn");
    }
    gateway.shutdown();
    server.shutdown();
}
