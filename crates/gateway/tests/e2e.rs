//! End-to-end serving guarantees through the full network stack:
//! HTTP/1.1 wire → JSON codec → `SubmitOptions` → EDF `DeadlineBatcher` →
//! engine → JSON response.
//!
//! * **Equivalence property**: N concurrent HTTP clients with random
//!   per-request deadlines and priorities receive logits **bit-identical**
//!   to `EventSnn` over the same samples — batching composition, EDF
//!   reordering and two float↔text trips must all be invisible.
//! * **Backpressure on the wire**: with `max_pending` forced to 1, the
//!   gateway sheds with `429` while every `200` response stays correct —
//!   shedding must never corrupt an in-flight response.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_gateway::{
    client::HttpClient, run_closed_loop, Gateway, GatewayConfig, InferRequest, LoadGenConfig,
};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendChoice, StreamingConfig};
use snn_sim::EventSnn;
use ttfs_core::{convert, Base2Kernel, SnnModel};

const DIMS: [usize; 3] = [1, 2, 4];
const SAMPLE_LEN: usize = 8;
const CLASSES: usize = 3;

fn dense_model(seed: u64) -> SnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(SAMPLE_LEN, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(6, CLASSES, &mut rng)),
    ]);
    convert(&net, Base2Kernel::paper_default(), 24).unwrap()
}

proptest! {
    // Each case spins up a real TCP server and threads; keep cases few.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The acceptance property: concurrent HTTP clients, random arrival
    /// interleavings, random deadlines (including server-default) and
    /// random priorities — every returned logit row equals the reference
    /// event simulator's bit for bit.
    #[test]
    fn concurrent_http_clients_match_event_snn_bit_for_bit(
        seed in 0u64..256,
        clients in 2usize..5,
        max_batch in 1usize..6,
        delay_us in 0u64..2_000,
        deadline_hi_ms in 1.0f64..6.0,
        max_priority in 0u8..4,
    ) {
        let model = Arc::new(dense_model(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let n = 10usize;
        let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
        let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

        let server = Arc::new(
            BackendChoice::Csr
                .serve_streaming(
                    Arc::clone(&model),
                    &DIMS,
                    StreamingConfig {
                        threads: 2,
                        max_batch,
                        max_delay: Duration::from_micros(delay_us),
                        max_pending: 0,
                        brownout: None,
                    },
                )
                .expect("streaming stack"),
        );
        let mut gateway = Gateway::start(
            Arc::clone(&server),
            GatewayConfig {
                workers: clients,
                poll_interval: Duration::from_millis(5),
                ..GatewayConfig::for_dims(&DIMS)
            },
        )
        .expect("gateway start");

        let report = run_closed_loop(
            gateway.local_addr(),
            &x,
            Some(&expected),
            &LoadGenConfig {
                clients,
                passes: 2,
                deadline_ms: Some((0.0, deadline_hi_ms)),
                max_priority,
                seed,
                ..LoadGenConfig::default()
            },
        );
        let metrics = gateway.shutdown();
        let streaming = server.shutdown();

        prop_assert_eq!(report.transport_errors, 0, "no dropped connections");
        prop_assert_eq!(report.ok_200, report.requests, "every request served");
        prop_assert_eq!(report.mismatches, 0,
            "HTTP-served logits must be bit-identical to EventSnn");
        prop_assert_eq!(metrics.parse_errors, 0);
        prop_assert_eq!(streaming.requests, report.requests);
        prop_assert!(streaming.max_batch_occupancy as usize <= max_batch.max(1));
    }
}

/// Backpressure end-to-end: `max_pending = 1` forces `QueueFull` sheds;
/// the wire must show `429`s, the shed counter must see them, and no
/// `200` may carry corrupted logits.
#[test]
fn forced_backpressure_yields_429_without_corrupting_responses() {
    let model = Arc::new(dense_model(42));
    let mut rng = StdRng::seed_from_u64(99);
    let n = 8usize;
    let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
    let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 64,
                    // A wide window: one admitted request parks here while
                    // concurrent submitters bounce off max_pending.
                    max_delay: Duration::from_millis(15),
                    max_pending: 1,
                    brownout: None,
                },
            )
            .expect("streaming stack"),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 4,
            poll_interval: Duration::from_millis(5),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");

    // Retry until sheds appear (they essentially always do on the first
    // round; the loop hardens against a pathological scheduler).
    let mut report = None;
    for round in 0..3 {
        let r = run_closed_loop(
            gateway.local_addr(),
            &x,
            Some(&expected),
            &LoadGenConfig {
                clients: 4,
                passes: 4,
                deadline_ms: None,
                max_priority: 0,
                seed: 1234 + round,
                ..LoadGenConfig::default()
            },
        );
        let saw_sheds = r.shed_429 > 0;
        report = Some(r);
        if saw_sheds {
            break;
        }
    }
    let report = report.expect("at least one round ran");
    let metrics = gateway.shutdown();
    let streaming = server.shutdown();

    assert!(
        report.shed_429 > 0,
        "max_pending=1 must shed on the wire: {report:?}"
    );
    assert!(report.ok_200 > 0, "some requests are admitted: {report:?}");
    assert_eq!(
        report.mismatches, 0,
        "sheds must not corrupt in-flight responses"
    );
    assert_eq!(report.transport_errors, 0);
    assert_eq!(
        metrics.shed_429, report.shed_429,
        "gateway counts every shed"
    );
    assert_eq!(
        streaming.shed_requests, report.shed_429,
        "StreamingMetrics::shed_requests sees the same sheds"
    );
    assert_eq!(streaming.requests, report.ok_200, "only 200s completed");
}

/// The Prometheus endpoint reflects real traffic, including sheds.
#[test]
fn metrics_endpoint_reports_traffic_and_sheds() {
    let model = Arc::new(dense_model(7));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 2,
                    max_delay: Duration::from_millis(1),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let body =
        serde_json::to_string(&InferRequest::new(DIMS.to_vec(), vec![0.4; SAMPLE_LEN])).unwrap();
    for _ in 0..3 {
        assert_eq!(client.post_json("/v1/infer", &body).unwrap().status, 200);
    }
    let scrape = client.get("/metrics").unwrap();
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).unwrap();
    assert!(
        text.contains("snn_gateway_route_requests_total{route=\"infer\"} 3"),
        "{text}"
    );
    assert!(text.contains("snn_streaming_requests_total 3"), "{text}");
    assert!(
        text.contains("snn_streaming_shed_requests_total 0"),
        "{text}"
    );
    gateway.shutdown();
    server.shutdown();
}

/// An absurd client-supplied deadline is clamped to the gateway's
/// handler timeout: it must not park in the EDF window for a
/// client-chosen duration (which would stall co-batched requests and,
/// under tight `max_pending`, wedge admission into pure 429s).
#[test]
fn huge_client_deadline_is_clamped_to_handler_timeout() {
    let model = Arc::new(dense_model(33));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 64, // count flush unreachable
                    max_delay: Duration::from_secs(30),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            handler_timeout: Duration::from_millis(100),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    let mut wire = InferRequest::new(DIMS.to_vec(), vec![0.2; SAMPLE_LEN]);
    wire.deadline_ms = Some(3_600_000.0); // one hour, as sent by the client
    let body = serde_json::to_string(&wire).unwrap();
    let started = std::time::Instant::now();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let response = client.post_json("/v1/infer", &body).unwrap();
    // Clamped to half the 100 ms handler budget, the EDF deadline flushes
    // the window at ~50 ms and the request completes 200 inside the
    // handler timeout — nowhere near the requested hour.
    assert_eq!(response.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "deadline must be clamped, not honored verbatim"
    );
    gateway.shutdown();
    server.shutdown();
}

/// A request whose deadline has the whole window to itself still resolves
/// promptly when a tighter-deadline request lands behind it (EDF pulls the
/// flush forward) — observed end to end through HTTP.
#[test]
fn tight_deadline_pulls_a_relaxed_window_forward() {
    let model = Arc::new(dense_model(21));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 64, // count flush unreachable
                    max_delay: Duration::from_secs(30),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            handler_timeout: Duration::from_secs(10),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    // Without EDF, the relaxed request would park for 30 s (its own
    // deadline AND the server default are both far away) and this test
    // would time out. The tight request must flush the shared window.
    let relaxed = {
        let mut r = InferRequest::new(DIMS.to_vec(), vec![0.3; SAMPLE_LEN]);
        r.deadline_ms = Some(25_000.0);
        serde_json::to_string(&r).unwrap()
    };
    let tight = {
        let mut r = InferRequest::new(DIMS.to_vec(), vec![0.6; SAMPLE_LEN]);
        r.deadline_ms = Some(1.0);
        r.priority = 3;
        serde_json::to_string(&r).unwrap()
    };
    let addr = gateway.local_addr();
    let relaxed_thread = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post_json("/v1/infer", &relaxed).unwrap()
    });
    // Let the relaxed request reach the pending window first.
    std::thread::sleep(Duration::from_millis(50));
    let mut client = HttpClient::connect(addr).unwrap();
    let tight_response = client.post_json("/v1/infer", &tight).unwrap();
    let relaxed_response = relaxed_thread.join().unwrap();
    assert_eq!(tight_response.status, 200);
    assert_eq!(relaxed_response.status, 200);
    let streaming = server.metrics();
    assert_eq!(streaming.requests, 2);
    assert_eq!(
        streaming.max_batch_occupancy, 2,
        "both requests rode one EDF-flushed batch"
    );
    gateway.shutdown();
    server.shutdown();
}
