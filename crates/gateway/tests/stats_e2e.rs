//! End-to-end telemetry, readiness, and dashboard guarantees through the
//! full network stack:
//!
//! * `GET /v1/stats` serves the documented schema with a live per-model
//!   series after real inference traffic, and its windowed figures agree
//!   with the cumulative recorders on a short steady run.
//! * `POST /v1/infer` responses carry a positive modeled `energy_uj`.
//! * `GET /dashboard` serves a non-empty self-contained HTML page.
//! * `GET /readyz` flips to `503` after [`Gateway::begin_drain`] while
//!   `GET /healthz` keeps answering `200` — liveness and readiness are
//!   genuinely distinct probes.
//! * `GET /metrics` exposes the new `snn_registry_*` and trace-ring
//!   families when a registry and collector front the gateway.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{field, Content};
use snn_gateway::{client::HttpClient, Gateway, GatewayConfig, InferResponse};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendChoice, StreamingConfig};
use ttfs_core::{convert, Base2Kernel, SnnModel};

const DIMS: [usize; 3] = [1, 2, 4];
const SAMPLE_LEN: usize = 8;

fn dense_model(seed: u64) -> SnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(SAMPLE_LEN, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(6, 3, &mut rng)),
    ]);
    convert(&net, Base2Kernel::paper_default(), 24).unwrap()
}

fn start_gateway(seed: u64) -> (Gateway, Arc<snn_runtime::StreamingServer>) {
    let model = Arc::new(dense_model(seed));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 4,
                    max_delay: Duration::from_micros(200),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .expect("streaming stack"),
    );
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            poll_interval: Duration::from_millis(5),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");
    (gateway, server)
}

fn infer_body() -> String {
    r#"{"dims":[1,2,4],"pixels":[0.1,0.9,0.4,0.3,0.7,0.2,0.6,0.5]}"#.to_string()
}

#[test]
fn stats_route_serves_live_windowed_series_with_energy() {
    let (mut gateway, server) = start_gateway(7);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();

    let n = 20usize;
    let mut energy_on_wire = 0.0f64;
    for _ in 0..n {
        let resp = client.post_json("/v1/infer", &infer_body()).unwrap();
        assert_eq!(resp.status, 200);
        let wire: InferResponse =
            serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(
            wire.energy_uj > 0.0,
            "each response must carry modeled energy, got {}",
            wire.energy_uj
        );
        energy_on_wire += wire.energy_uj;
    }

    let resp = client.get("/v1/stats").unwrap();
    assert_eq!(resp.status, 200);
    let text = std::str::from_utf8(&resp.body).unwrap();
    let parsed: Content = serde_json::from_str(text).expect("stats body parses as JSON");
    let map = parsed.as_map().unwrap();
    assert_eq!(field(map, "schema_version").unwrap().as_u64(), Some(1));

    // The default server's series is labeled model=default.
    let models = field(map, "models").unwrap().as_seq().unwrap();
    let model = models
        .iter()
        .map(|m| m.as_map().unwrap())
        .find(|m| field(m, "model").unwrap().as_str() == Some("default"))
        .expect("a model=default series");
    let e2e = field(model, "e2e_us").unwrap().as_map().unwrap();
    let w300 = field(e2e, "300s").unwrap().as_map().unwrap();
    assert_eq!(field(w300, "count").unwrap().as_u64(), Some(n as u64));
    let p50 = field(w300, "p50").unwrap().as_f64().unwrap();
    let p99 = field(w300, "p99").unwrap().as_f64().unwrap();
    assert!(p50 > 0.0 && p99 >= p50, "quantiles ordered: {p50} / {p99}");

    // Windowed p99 agrees with the cumulative recorder within the
    // documented log-linear-bin tolerance (bin upper edge: ≤ 25% + 1 µs
    // overshoot, never undershoot).
    let cumulative = field(map, "cumulative").unwrap().as_map().unwrap();
    assert_eq!(
        field(cumulative, "requests").unwrap().as_u64(),
        Some(n as u64)
    );
    let cum_p99 = field(cumulative, "e2e_p99_us").unwrap().as_f64().unwrap();
    assert!(
        p99 >= cum_p99 * 0.99 && p99 <= cum_p99 * 1.25 + 1.0,
        "windowed p99 {p99} vs cumulative {cum_p99} outside tolerance"
    );

    // Windowed energy attribution agrees with what rode the wire.
    let per_inf = field(model, "energy_uj_per_inference")
        .unwrap()
        .as_f64()
        .unwrap();
    let wire_mean = energy_on_wire / n as f64;
    assert!(
        (per_inf - wire_mean).abs() < wire_mean * 0.01 + 1e-9,
        "per-inference energy {per_inf} vs wire mean {wire_mean}"
    );
    assert_eq!(
        field(model, "slo_state").unwrap().as_str(),
        Some("ok"),
        "steady load within objectives"
    );

    // Per-route series observed the infer traffic.
    let routes = field(map, "routes").unwrap().as_seq().unwrap();
    assert!(
        routes
            .iter()
            .map(|r| r.as_map().unwrap())
            .any(|r| field(r, "route").unwrap().as_str() == Some("infer")),
        "an infer route series"
    );

    gateway.shutdown();
    server.shutdown();
}

#[test]
fn dashboard_serves_self_contained_html() {
    let (mut gateway, server) = start_gateway(8);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let resp = client.get("/dashboard").unwrap();
    assert_eq!(resp.status, 200);
    let html = std::str::from_utf8(&resp.body).unwrap();
    assert!(html.len() > 1000, "dashboard must be a real page");
    assert!(html.contains("<!DOCTYPE html>"));
    assert!(html.contains("/v1/stats"), "the page polls the stats route");
    for external in ["http://", "https://", "src=\"//"] {
        assert!(
            !html.contains(external),
            "dashboard must not reference external resources ({external})"
        );
    }
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn telemetry_off_disables_stats_routes_but_not_inference() {
    let model = Arc::new(dense_model(9));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(Arc::clone(&model), &DIMS, StreamingConfig::default())
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            telemetry: false,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(client.get("/v1/stats").unwrap().status, 404);
    assert_eq!(client.get("/dashboard").unwrap().status, 404);
    let resp = client.post_json("/v1/infer", &infer_body()).unwrap();
    assert_eq!(resp.status, 200);
    let wire: InferResponse =
        serde_json::from_str(std::str::from_utf8(&resp.body).unwrap()).unwrap();
    assert_eq!(wire.energy_uj, 0.0, "no pricer without telemetry");
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn readiness_drains_while_liveness_stays_up() {
    let (mut gateway, server) = start_gateway(10);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();

    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status, 200);
    let parsed: Content = serde_json::from_str(std::str::from_utf8(&ready.body).unwrap()).unwrap();
    let map = parsed.as_map().unwrap();
    assert_eq!(field(map, "ready").unwrap().as_bool(), Some(true));
    assert_eq!(field(map, "draining").unwrap().as_bool(), Some(false));
    assert_eq!(
        field(map, "brownout_engaged").unwrap().as_bool(),
        Some(false)
    );
    assert_eq!(field(map, "breaker_open_models").unwrap().as_u64(), Some(0));
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    gateway.begin_drain();

    // Readiness flips; liveness does not. (Fresh connection: the drained
    // gateway stops keeping connections alive.)
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let ready = client.get("/readyz").unwrap();
    assert_eq!(ready.status, 503);
    let parsed: Content = serde_json::from_str(std::str::from_utf8(&ready.body).unwrap()).unwrap();
    let map = parsed.as_map().unwrap();
    assert_eq!(field(map, "ready").unwrap().as_bool(), Some(false));
    assert_eq!(field(map, "draining").unwrap().as_bool(), Some(true));
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    // Ordinary traffic is refused while draining.
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(
        client.post_json("/v1/infer", &infer_body()).unwrap().status,
        503
    );

    gateway.shutdown();
    server.shutdown();
}

#[test]
fn metrics_exposition_gains_trace_ring_and_new_counters() {
    let model = Arc::new(dense_model(11));
    let collector = Arc::new(snn_trace::TraceCollector::new(1024));
    let backend: Arc<dyn snn_runtime::InferenceBackend> =
        Arc::new(snn_runtime::CsrEngine::compile(&model, &DIMS).expect("csr compile"));
    let server = Arc::new(snn_runtime::StreamingServer::new_traced(
        backend,
        StreamingConfig {
            threads: 1,
            max_batch: 4,
            max_delay: Duration::from_micros(200),
            max_pending: 0,
            brownout: None,
        },
        Arc::clone(&collector),
    ));
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(
        client.post_json("/v1/infer", &infer_body()).unwrap().status,
        200
    );
    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    let text = std::str::from_utf8(&resp.body).unwrap();
    for family in [
        "snn_streaming_deadline_misses_total",
        "snn_trace_spans_recorded_total",
        "snn_trace_ring_spans",
        "snn_trace_ring_capacity 1024",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    gateway.shutdown();
    server.shutdown();
}
