//! End-to-end multi-model serving through the registry routes:
//! `GET /v1/models` listing, per-model inference with per-backend
//! geometry validation (two models with *different* input dims served
//! concurrently — the regression for the old first-submit-pins-the-dims
//! behavior), atomic hot swap under closed-loop load, and hostile
//! routing (unknown models, wrong methods, malformed swap bodies).

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_gateway::{
    client::HttpClient, run_closed_loop_any, Gateway, GatewayConfig, InferRequest, LoadGenConfig,
};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{
    BackendChoice, BackendHint, ModelArtifact, ModelRegistry, RegistryConfig, StreamingConfig,
};
use snn_tensor::Tensor;
use ttfs_core::{convert, Base2Kernel};

const DIMS_A: [usize; 3] = [1, 3, 4];
const DIMS_B: [usize; 3] = [1, 2, 3];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("snn_registry_e2e_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn dense_artifact(name: &str, version: &str, seed: u64, dims: &[usize]) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let in_len: usize = dims.iter().product();
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(in_len, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    ModelArtifact::build(name, version, model, dims, BackendHint::Csr).unwrap()
}

fn fast_streaming() -> StreamingConfig {
    StreamingConfig {
        threads: 2,
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        max_pending: 0,
        brownout: None,
    }
}

/// Batch of `n` samples for `dims`, plus the artifact's reference logits.
fn batch_and_expected(artifact: &ModelArtifact, n: usize, seed: u64) -> (Tensor, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch_dims = vec![n];
    batch_dims.extend_from_slice(&artifact.info.input_dims);
    let x = snn_tensor::uniform(&batch_dims, 0.0, 1.0, &mut rng);
    let (engine, _) = artifact.compile().unwrap();
    let (expected, _) = engine.run_batch(&x).unwrap();
    (x, expected)
}

/// A registry-backed gateway over `dir`; the plain `/v1/infer` route keeps
/// serving a standalone alpha-shaped server.
fn registry_gateway(dir: &Path) -> (Arc<ModelRegistry>, Gateway) {
    let registry = Arc::new(
        ModelRegistry::open(
            dir,
            RegistryConfig {
                byte_budget: 0,
                streaming: fast_streaming(),
                ..RegistryConfig::default()
            },
        )
        .unwrap(),
    );
    let mut rng = StdRng::seed_from_u64(0xDEFA);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 3, &mut rng)),
    ]);
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24).unwrap());
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(model, &DIMS_A, fast_streaming())
            .unwrap(),
    );
    let gateway = Gateway::start_with_registry(
        server,
        Arc::clone(&registry),
        GatewayConfig {
            workers: 6,
            poll_interval: Duration::from_millis(5),
            ..GatewayConfig::for_dims(&DIMS_A)
        },
    )
    .unwrap();
    (registry, gateway)
}

fn infer_body(dims: &[usize], value: f32) -> String {
    let len: usize = dims.iter().product();
    serde_json::to_string(&InferRequest::new(dims.to_vec(), vec![value; len])).unwrap()
}

#[test]
fn listing_and_per_model_inference_with_mixed_geometries() {
    let dir = TempDir::new("listing");
    let alpha = dense_artifact("alpha", "1", 1, &DIMS_A);
    let beta = dense_artifact("beta", "1", 2, &DIMS_B);
    alpha.save(dir.path().join("alpha@1.snna")).unwrap();
    beta.save(dir.path().join("beta@1.snna")).unwrap();
    let (registry, mut gateway) = registry_gateway(dir.path());
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();

    // The catalog lists both models cold, before anything compiled.
    let listing = client.get("/v1/models").unwrap();
    assert_eq!(listing.status, 200);
    let text = String::from_utf8(listing.body.clone()).unwrap();
    assert!(text.contains("\"alpha\"") && text.contains("\"beta\""));
    assert!(text.contains("\"cold\""));

    // Per-model inference on BOTH geometries through one gateway: the
    // beta route accepts [1,2,3] even though the gateway's default route
    // serves [1,3,4] — each backend validates its own compiled dims.
    for (artifact, route) in [
        (&alpha, "/v1/models/alpha/infer"),
        (&beta, "/v1/models/beta@1/infer"),
    ] {
        let dims = &artifact.info.input_dims;
        let response = client.post_json(route, &infer_body(dims, 0.5)).unwrap();
        assert_eq!(response.status, 200, "{route}");
        let mut batch_dims = vec![1usize];
        batch_dims.extend_from_slice(dims);
        let (engine, _) = artifact.compile().unwrap();
        let (expected, _) = engine.run_batch(&Tensor::full(&batch_dims, 0.5)).unwrap();
        let body = String::from_utf8(response.body).unwrap();
        let wire: snn_gateway::InferResponse = serde_json::from_str(&body).unwrap();
        let got: Vec<u32> = wire.logits.iter().map(|f| f.to_bits()).collect();
        let want: Vec<u32> = expected.as_slice().iter().map(|f| f.to_bits()).collect();
        assert_eq!(got, want, "{route} logits must be bit-exact");
    }

    // Alpha-shaped pixels on the beta route: rejected by the *backend's*
    // compiled geometry, not silently accepted.
    let crossed = client
        .post_json("/v1/models/beta/infer", &infer_body(&DIMS_A, 0.5))
        .unwrap();
    assert_eq!(crossed.status, 400);

    // Both models are now resident and the listing says so.
    let listing = client.get("/v1/models").unwrap();
    let text = String::from_utf8(listing.body).unwrap();
    assert!(text.contains("\"resident\""));
    assert_eq!(registry.metrics().cold_loads, 2);

    gateway.shutdown();
    registry.shutdown();
}

#[test]
fn two_models_with_different_dims_serve_concurrently() {
    let dir = TempDir::new("mixed");
    let alpha = dense_artifact("alpha", "1", 3, &DIMS_A);
    let beta = dense_artifact("beta", "1", 4, &DIMS_B);
    alpha.save(dir.path().join("alpha@1.snna")).unwrap();
    beta.save(dir.path().join("beta@1.snna")).unwrap();
    let (registry, mut gateway) = registry_gateway(dir.path());
    let addr = gateway.local_addr();

    let (xa, ea) = batch_and_expected(&alpha, 8, 11);
    let (xb, eb) = batch_and_expected(&beta, 8, 12);

    // Closed-loop load on both model routes at the same time. Under the
    // old first-submit-pins-the-dims behavior one of these would 400 (or
    // worse) depending on which model's request arrived first.
    let reports = [
        ("alpha", xa, ea, "/v1/models/alpha/infer"),
        ("beta", xb, eb, "/v1/models/beta/infer"),
    ]
    .map(|(tag, x, expected, path)| {
        let config = LoadGenConfig {
            clients: 2,
            passes: 10,
            path: path.to_string(),
            ..LoadGenConfig::default()
        };
        std::thread::spawn(move || {
            let report = run_closed_loop_any(addr, &x, &[&expected], &config);
            (tag, report)
        })
    })
    .map(|h| h.join().unwrap());

    for (tag, report) in reports {
        assert_eq!(report.transport_errors, 0, "{tag}");
        assert_eq!(report.ok_200, report.requests, "{tag}: every request 200");
        assert_eq!(report.mismatches, 0, "{tag}: logits bit-exact under mix");
        assert!(report.requests > 0, "{tag}");
    }

    gateway.shutdown();
    registry.shutdown();
}

#[test]
fn hot_swap_under_load_serves_exactly_old_or_new_logits() {
    let dir = TempDir::new("swap");
    let v1 = dense_artifact("alpha", "1", 21, &DIMS_A);
    let v2 = dense_artifact("alpha", "2", 22, &DIMS_A);
    v1.save(dir.path().join("alpha@1.snna")).unwrap();
    v2.save(dir.path().join("alpha@2.snna")).unwrap();
    let (registry, mut gateway) = registry_gateway(dir.path());
    let addr = gateway.local_addr();

    // Same input batch, one expected tensor per version. The load
    // generator accepts a 200 iff its logits bit-match ONE of them.
    let (x, e1) = batch_and_expected(&v1, 8, 31);
    let (_, e2) = batch_and_expected(&v2, 8, 31);
    assert_ne!(e1.as_slice(), e2.as_slice());

    let loader = {
        let x = x.clone();
        let (e1, e2) = (e1.clone(), e2.clone());
        std::thread::spawn(move || {
            run_closed_loop_any(
                addr,
                &x,
                &[&e2, &e1], // index 0 = pre-swap (v2 is the default), 1 = post-swap
                &LoadGenConfig {
                    clients: 4,
                    passes: 60,
                    path: "/v1/models/alpha/infer".into(),
                    ..LoadGenConfig::default()
                },
            )
        })
    };

    // Swap to v1 while the closed loop is running.
    std::thread::sleep(Duration::from_millis(60));
    let mut client = HttpClient::connect(addr).unwrap();
    let swapped = client
        .post_json("/v1/models/alpha/swap", r#"{"version":"1"}"#)
        .unwrap();
    assert_eq!(swapped.status, 200);
    let report_text = String::from_utf8(swapped.body).unwrap();
    assert!(report_text.contains("\"to\":\"1\""), "{report_text}");

    let report = loader.join().unwrap();
    assert_eq!(report.transport_errors, 0);
    assert_eq!(
        report.ok_200, report.requests,
        "no request may be dropped across the swap"
    );
    assert_eq!(
        report.mismatches, 0,
        "every 200 matches exactly one version's logits — never a blend"
    );
    assert!(
        report.ok_per_expected[0] > 0,
        "pre-swap traffic observed v2: {:?}",
        report.ok_per_expected
    );
    assert!(
        report.ok_per_expected[1] > 0,
        "post-swap traffic observed v1: {:?}",
        report.ok_per_expected
    );
    assert_eq!(registry.metrics().swaps, 1);

    gateway.shutdown();
    registry.shutdown();
}

#[test]
fn hostile_routing_gets_typed_statuses_never_hangs() {
    let dir = TempDir::new("hostile");
    dense_artifact("alpha", "1", 5, &DIMS_A)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    let (registry, mut gateway) = registry_gateway(dir.path());
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();

    // Unknown model → 404 with a JSON error body.
    let r = client
        .post_json("/v1/models/nosuch/infer", &infer_body(&DIMS_A, 0.5))
        .unwrap();
    assert_eq!(r.status, 404);
    // Wrong method on a model route → 405.
    let r = client.get("/v1/models/alpha/infer").unwrap();
    assert_eq!(r.status, 405);
    // Swap body that is not JSON → 400.
    let r = client
        .post_json("/v1/models/alpha/swap", "not json at all")
        .unwrap();
    assert_eq!(r.status, 400);
    // Swap to a version that does not exist → 404.
    let r = client
        .post_json("/v1/models/alpha/swap", r#"{"version":"9"}"#)
        .unwrap();
    assert_eq!(r.status, 404);
    // Empty model spec → 404.
    let r = client
        .post_json("/v1/models//infer", &infer_body(&DIMS_A, 0.5))
        .unwrap();
    assert_eq!(r.status, 404);
    // Unknown log level → 400; valid filters (plus an ignored junk key)
    // → 200 even with zero matching events.
    let r = client.get("/v1/logs?level=loud").unwrap();
    assert_eq!(r.status, 400);
    let r = client
        .get("/v1/logs?level=warn&target=registry&junk")
        .unwrap();
    assert_eq!(r.status, 200);
    // Wrong method on the observability routes → 405.
    let r = client.post_json("/v1/logs", "{}").unwrap();
    assert_eq!(r.status, 405);
    let r = client.post_json("/v1/incidents", "{}").unwrap();
    assert_eq!(r.status, 405);
    // Incident capture is not configured here → 404, and a hostile id
    // must not traverse out of the (nonexistent) incidents dir.
    let r = client.get("/v1/incidents").unwrap();
    assert_eq!(r.status, 404);
    let r = client.get("/v1/incidents/../../etc/passwd").unwrap();
    assert_eq!(r.status, 404);

    // After all of that the registry routes still serve.
    let r = client
        .post_json("/v1/models/alpha/infer", &infer_body(&DIMS_A, 0.5))
        .unwrap();
    assert_eq!(r.status, 200);

    gateway.shutdown();
    registry.shutdown();
}

#[test]
fn model_routes_are_404_without_a_registry() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 3, &mut rng)),
    ]);
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24).unwrap());
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(model, &DIMS_A, fast_streaming())
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            poll_interval: Duration::from_millis(5),
            ..GatewayConfig::for_dims(&DIMS_A)
        },
    )
    .unwrap();
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(client.get("/v1/models").unwrap().status, 404);
    assert_eq!(
        client
            .post_json("/v1/models/alpha/infer", &infer_body(&DIMS_A, 0.5))
            .unwrap()
            .status,
        404
    );
    gateway.shutdown();
    server.shutdown();
}
