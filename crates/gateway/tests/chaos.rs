//! Seeded chaos soak through the full HTTP path: with the global
//! fault injector firing backend panics, backend slowdowns and wire-level
//! connection resets, every request must still resolve to exactly one
//! typed outcome (no hangs), every `200` must stay bit-identical to the
//! reference simulator, and after the storm the *same* serving stack must
//! come back clean. Also pins the `Retry-After` contract on wire-visible
//! backpressure.
//!
//! Tests that arm the process-global injector serialize on one mutex;
//! this battery owns its test binary so the injector cannot leak into
//! other processes' tests.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{field, Content};
use snn_gateway::{client::HttpClient, run_closed_loop, Gateway, GatewayConfig, LoadGenConfig};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendChoice, BrownoutConfig, FaultConfig, FaultInjector, StreamingConfig};
use snn_sim::EventSnn;
use snn_trace::{TraceCollector, TraceId};
use ttfs_core::{convert, Base2Kernel, SnnModel};

/// One armed injector per process: tests take this before touching it.
static SERIAL: Mutex<()> = Mutex::new(());

const DIMS: [usize; 3] = [1, 2, 4];
const SAMPLE_LEN: usize = 8;
const CLASSES: usize = 3;

fn dense_model(seed: u64) -> SnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(SAMPLE_LEN, 6, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(6, CLASSES, &mut rng)),
    ]);
    convert(&net, Base2Kernel::paper_default(), 24).unwrap()
}

/// Silences the default panic printer for *injected* panics only, for the
/// duration of the guard — the storm fires them on purpose, and each
/// would otherwise dump a stack trace into the test output. Real panics
/// still print.
struct QuietInjectedPanics;

impl QuietInjectedPanics {
    fn install() -> Self {
        let forward = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("injected backend panic"));
            if !injected {
                forward(info);
            }
        }));
        QuietInjectedPanics
    }
}

impl Drop for QuietInjectedPanics {
    fn drop(&mut self) {
        // Dropping our filter reinstalls the default hook.
        let _ = std::panic::take_hook();
    }
}

/// The capstone soak: three seeded storms through one serving stack.
/// Faults may fail individual requests — they may never corrupt one, hang
/// one, or take the stack down.
#[test]
fn seeded_chaos_storms_resolve_every_request_and_the_stack_survives() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _quiet = QuietInjectedPanics::install();
    let injector = FaultInjector::global();
    injector.disarm();

    let model = Arc::new(dense_model(42));
    let mut rng = StdRng::seed_from_u64(0xC4A0);
    let n = 10usize;
    let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
    let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

    // One stack for every storm: its workers must absorb each seed's
    // panics and still serve the clean pass at the end.
    let clients = 4usize;
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 2,
                    max_batch: 4,
                    max_delay: Duration::from_micros(500),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .expect("streaming stack"),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: clients,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");

    let mut total_injected = 0u64;
    for seed in [0xFA11u64, 0xFA12, 0xFA13] {
        injector.arm(
            seed,
            FaultConfig {
                backend_panic: 0.08,
                backend_slow: 0.08,
                conn_reset: 0.08,
                slow_delay: Duration::from_micros(300),
                ..FaultConfig::default()
            },
        );
        let start = Instant::now();
        let report = run_closed_loop(
            gateway.local_addr(),
            &x,
            Some(&expected),
            &LoadGenConfig {
                clients,
                passes: 3,
                max_priority: 3,
                seed,
                retry_after_cap: Some(Duration::from_millis(2)),
                ..LoadGenConfig::default()
            },
        );
        injector.disarm();
        total_injected += injector.counts().total_fired();

        // Every request resolved to exactly one typed outcome: the five
        // buckets partition the total, and nothing hung the closed loop.
        assert_eq!(
            report.requests,
            report.ok_200
                + report.shed_429
                + report.unavailable_503
                + report.other_status
                + report.transport_errors,
            "storm seed {seed:#x}: unaccounted outcomes in {report:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "storm seed {seed:#x} stalled"
        );
        // Faults fail requests; they never corrupt a success.
        assert_eq!(
            report.mismatches, 0,
            "storm seed {seed:#x}: corrupted 200 in {report:?}"
        );
        assert!(report.ok_200 > 0, "storm seed {seed:#x} served nothing");
    }
    assert!(
        total_injected > 0,
        "the storms never actually fired a fault"
    );

    // Post-storm serviceability: injector disarmed, the same stack must
    // serve a clean all-200, bit-exact pass.
    let clean = run_closed_loop(
        gateway.local_addr(),
        &x,
        Some(&expected),
        &LoadGenConfig {
            clients,
            passes: 2,
            seed: 0xC1EA,
            ..LoadGenConfig::default()
        },
    );
    assert_eq!(clean.transport_errors, 0, "clean pass: {clean:?}");
    assert_eq!(clean.ok_200, clean.requests, "clean pass: {clean:?}");
    assert_eq!(clean.mismatches, 0, "clean pass: {clean:?}");

    gateway.shutdown();
    let streaming = server.shutdown();
    // Quarantine only ever happens on the solo-retry path of a panicked
    // batch: it can never outnumber the retried batches' riders, and a
    // quarantine without any batch retry would mean an innocent was
    // condemned without its second chance.
    assert!(
        streaming.quarantined == 0 || streaming.batch_retries > 0,
        "quarantined {} requests without a single batch retry",
        streaming.quarantined
    );
}

/// Wire-visible backpressure carries retry advice: a `429` shed by a full
/// admission queue includes a `Retry-After` header, and the client
/// parses it into the typed response.
#[test]
fn shed_429_carries_retry_after_and_the_client_parses_it() {
    let model = Arc::new(dense_model(7));
    // One admission slot and a long batching window: the first request
    // parks in the batcher holding the slot, so a concurrent request
    // must shed on the wire.
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 64,
                    max_delay: Duration::from_millis(300),
                    max_pending: 1,
                    brownout: None,
                },
            )
            .expect("streaming stack"),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");
    let addr = gateway.local_addr();

    let body = format!(
        "{{\"dims\":[1,2,4],\"pixels\":{:?}}}",
        (0..SAMPLE_LEN).map(|i| i as f32 / 8.0).collect::<Vec<_>>()
    );
    let parker = {
        let body = body.clone();
        std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr).expect("parker connect");
            client
                .post_json("/v1/infer", &body)
                .expect("parker request")
        })
    };
    // Let the parker occupy the slot, then collide with it.
    std::thread::sleep(Duration::from_millis(50));
    let mut client = HttpClient::connect(addr).expect("shed connect");
    let shed = client.post_json("/v1/infer", &body).expect("shed request");
    assert_eq!(shed.status, 429, "expected a wire-visible shed");
    assert_eq!(
        shed.retry_after,
        Some(1),
        "429 must carry parseable retry advice"
    );

    let parked = parker.join().expect("parker thread");
    assert_eq!(parked.status, 200, "the slot holder is served");
    gateway.shutdown();
    server.shutdown();
}

/// Brownout is wire-visible and typed: with watermarks the closed-loop
/// load crosses, low-priority requests shed as `429`s whose body names
/// the brownout (not a queue-full), while the storm of higher-priority
/// requests rides on and the server drains back below low water.
#[test]
fn brownout_sheds_low_priority_on_the_wire_and_recovers() {
    let model = Arc::new(dense_model(21));
    let mut rng = StdRng::seed_from_u64(0xB0);
    let n = 8usize;
    let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
    let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

    // A slow single-thread backend with a wide window piles the pending
    // queue past high water under 6 concurrent clients.
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 1,
                    max_batch: 2,
                    max_delay: Duration::from_millis(4),
                    max_pending: 0,
                    brownout: Some(BrownoutConfig {
                        high_water: 3,
                        low_water: 1,
                        shed_below_priority: 2,
                    }),
                },
            )
            .expect("streaming stack"),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 6,
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");

    let report = run_closed_loop(
        gateway.local_addr(),
        &x,
        Some(&expected),
        &LoadGenConfig {
            clients: 6,
            passes: 6,
            max_priority: 3,
            seed: 0xB0,
            ..LoadGenConfig::default()
        },
    );
    assert!(
        report.shed_429 > 0,
        "sustained overload must cross high water and shed: {report:?}"
    );
    assert_eq!(report.mismatches, 0, "sheds must not corrupt 200s");
    assert_eq!(report.transport_errors, 0);

    // Drained: brownout disengages below low water and everything
    // (including priority 0) is admitted again.
    let after = run_closed_loop(
        gateway.local_addr(),
        &x,
        Some(&expected),
        &LoadGenConfig {
            clients: 1,
            passes: 1,
            seed: 0xB1,
            ..LoadGenConfig::default()
        },
    );
    assert_eq!(after.ok_200, after.requests, "post-drain pass: {after:?}");
    assert_eq!(after.mismatches, 0);

    gateway.shutdown();
    let streaming = server.shutdown();
    assert_eq!(
        streaming.brownout_shed_requests, report.shed_429,
        "wire sheds and the runtime counter must agree"
    );
}

/// The flight-recorder acceptance capstone: a seeded chaos storm against
/// a traced, incident-enabled gateway must leave behind a `quarantine`
/// incident whose post-mortem snapshot (a) is valid self-contained JSON,
/// (b) carries the condemned request's real, still-retrievable trace id
/// with at least one embedded flight-recorder event stamped with it, and
/// (c) embeds a `/v1/stats` snapshot with exactly the live endpoint's
/// schema. Also walks the incident and log HTTP surface end to end.
#[test]
fn chaos_storm_writes_trace_correlated_incident_snapshots() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let _quiet = QuietInjectedPanics::install();
    let injector = FaultInjector::global();
    injector.disarm();

    let incidents_dir =
        std::env::temp_dir().join(format!("snn_chaos_incidents_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&incidents_dir);

    let model = Arc::new(dense_model(42));
    let mut rng = StdRng::seed_from_u64(0xC4A1);
    let n = 10usize;
    let x = snn_tensor::uniform(&[n, 1, 2, 4], 0.0, 1.0, &mut rng);
    let (expected, _) = EventSnn::new(&model).run(&x).expect("reference run");

    let collector = Arc::new(TraceCollector::new(0));
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming_traced(
                Arc::clone(&model),
                &DIMS,
                StreamingConfig {
                    threads: 2,
                    max_batch: 4,
                    max_delay: Duration::from_micros(500),
                    max_pending: 0,
                    brownout: None,
                },
                Arc::clone(&collector),
            )
            .expect("traced streaming stack"),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 4,
            incidents_dir: Some(incidents_dir.clone()),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .expect("gateway start");
    let recorder = Arc::clone(
        gateway
            .incidents()
            .expect("incidents_dir enables the recorder"),
    );

    // Panic often enough that some batch's solo isolation retry panics
    // again — quarantine, the explicit trigger whose incident carries
    // the condemned request's trace id. The storms are seeded, so which
    // one produces it is deterministic.
    let mut quarantine: Option<(String, Content)> = None;
    'storms: for seed in [0x1AC1u64, 0x1AC2, 0x1AC3] {
        injector.arm(
            seed,
            FaultConfig {
                backend_panic: 0.35,
                ..FaultConfig::default()
            },
        );
        let report = run_closed_loop(
            gateway.local_addr(),
            &x,
            Some(&expected),
            &LoadGenConfig {
                clients: 4,
                passes: 3,
                max_priority: 3,
                seed,
                retry_after_cap: Some(Duration::from_millis(2)),
                ..LoadGenConfig::default()
            },
        );
        injector.disarm();
        assert_eq!(report.mismatches, 0, "storm seed {seed:#x}: corrupted 200");
        for id in recorder.list() {
            let bytes = recorder.read(&id).expect("listed incident is readable");
            let parsed: Content = serde_json::from_str(std::str::from_utf8(&bytes).unwrap())
                .expect("incident report is valid JSON");
            let is_quarantine = parsed.as_map().and_then(|m| {
                field(m, "kind")
                    .ok()
                    .and_then(Content::as_str)
                    .map(str::to_string)
            }) == Some("quarantine".to_string());
            if is_quarantine {
                quarantine = Some((id, parsed));
                break 'storms;
            }
        }
    }
    let (id, report) = quarantine.expect("no storm produced a quarantine incident");
    let map = report.as_map().expect("incident report is a JSON object");

    // (a) Self-contained: build info, the event window, drop accounting.
    let build = field(map, "build")
        .ok()
        .and_then(Content::as_map)
        .expect("incident embeds build info");
    assert!(field(build, "pkg_version")
        .ok()
        .and_then(Content::as_str)
        .is_some());
    assert!(field(map, "events_dropped").is_ok());

    // (b) Trace correlation: a real hex trace id, retrievable over the
    // wire, and at least one embedded flight-recorder event carries it.
    let trace_hex = field(map, "trace_id")
        .ok()
        .and_then(Content::as_str)
        .expect("a quarantine incident names its request's trace")
        .to_string();
    assert!(
        TraceId::parse_hex(&trace_hex).is_some(),
        "trace id {trace_hex:?} must be 16-digit hex"
    );
    let window = field(map, "events")
        .ok()
        .and_then(Content::as_seq)
        .expect("incident embeds the flight-recorder window");
    assert!(!window.is_empty(), "the event window must not be empty");
    assert!(
        window.iter().any(|event| {
            event
                .as_map()
                .and_then(|m| field(m, "trace").ok().and_then(Content::as_str))
                == Some(trace_hex.as_str())
        }),
        "no embedded event carries the incident's trace id {trace_hex}"
    );
    let mut client = HttpClient::connect(gateway.local_addr()).expect("connect");
    let tree = client
        .get(&format!("/v1/trace/{trace_hex}"))
        .expect("trace fetch");
    assert_eq!(tree.status, 200, "incident trace must be retrievable");

    // (c) The embedded stats snapshot has exactly the live schema: same
    // keys, same order — both come from the same renderer.
    let sections = field(map, "sections")
        .ok()
        .and_then(Content::as_map)
        .expect("incident embeds snapshot sections");
    let snapshot = field(sections, "stats")
        .ok()
        .and_then(Content::as_map)
        .expect("sections embed a parseable stats snapshot");
    assert!(field(sections, "faults").is_ok(), "fault counts section");
    if let Some(tree) = field(sections, "trace").ok().and_then(Content::as_map) {
        assert_eq!(
            field(tree, "trace_id").ok().and_then(Content::as_str),
            Some(trace_hex.as_str()),
            "the embedded trace tree is the incident's own"
        );
    }
    let live = client.get("/v1/stats").expect("stats fetch");
    assert_eq!(live.status, 200);
    let live: Content =
        serde_json::from_str(std::str::from_utf8(&live.body).unwrap()).expect("live stats parse");
    let live_keys: Vec<&String> = live
        .as_map()
        .expect("live stats is a JSON object")
        .iter()
        .map(|(k, _)| k)
        .collect();
    let snapshot_keys: Vec<&String> = snapshot.iter().map(|(k, _)| k).collect();
    assert_eq!(
        snapshot_keys, live_keys,
        "incident stats snapshot must match the live /v1/stats schema"
    );

    // The HTTP surface serves the same artifacts.
    let list = client.get("/v1/incidents").expect("incident list");
    assert_eq!(list.status, 200);
    assert!(
        String::from_utf8(list.body).unwrap().contains(&id),
        "/v1/incidents must list {id}"
    );
    let fetched = client
        .get(&format!("/v1/incidents/{id}"))
        .expect("incident fetch");
    assert_eq!(fetched.status, 200);
    assert_eq!(
        fetched.body,
        recorder.read(&id).unwrap(),
        "/v1/incidents/<id> serves the report verbatim"
    );
    let logs = client.get("/v1/logs?level=error").expect("logs fetch");
    assert_eq!(logs.status, 200);
    let logs: Content =
        serde_json::from_str(std::str::from_utf8(&logs.body).unwrap()).expect("logs parse");
    let recorded = logs
        .as_map()
        .and_then(|m| field(m, "events").ok().and_then(Content::as_seq))
        .expect("/v1/logs returns an events array");
    assert!(
        !recorded.is_empty(),
        "the storm must leave error events behind in /v1/logs"
    );

    gateway.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&incidents_dir);
}
