//! Hostile-input coverage for the gateway: truncated request lines,
//! missing/oversized Content-Length, reads split across TCP segments,
//! pipelined keep-alive requests, and binary garbage. The invariant under
//! test everywhere: **no panic, no hung acceptor** — after every attack
//! the gateway still answers a clean request.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_gateway::{client::HttpClient, Gateway, GatewayConfig, InferRequest};
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendChoice, StreamingConfig, StreamingServer};
use ttfs_core::{convert, Base2Kernel};

const DIMS: [usize; 3] = [1, 3, 4];

fn serving_stack(seed: u64) -> (Arc<StreamingServer>, Gateway) {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24).unwrap());
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(
                model,
                &DIMS,
                StreamingConfig {
                    threads: 2,
                    max_batch: 4,
                    max_delay: Duration::from_millis(1),
                    max_pending: 0,
                    brownout: None,
                },
            )
            .unwrap(),
    );
    let gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 2,
            max_body_bytes: 64 * 1024,
            max_head_bytes: 2 * 1024,
            poll_interval: Duration::from_millis(10),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();
    (server, gateway)
}

fn good_body() -> String {
    let req = InferRequest::new(DIMS.to_vec(), vec![0.5; 12]);
    serde_json::to_string(&req).unwrap()
}

/// A clean request must succeed — the liveness probe after every attack.
fn assert_still_serving(gateway: &Gateway) {
    let mut client = HttpClient::connect(gateway.local_addr()).expect("fresh connection accepted");
    let response = client
        .post_json("/v1/infer", &good_body())
        .expect("clean request answered");
    assert_eq!(
        response.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&response.body)
    );
}

#[test]
fn truncated_request_line_gets_400_and_acceptor_survives() {
    let (server, mut gateway) = serving_stack(1);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    client.send_raw(b"GARBAGE-NO-HTTP\r\n\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert!(!response.keep_alive, "framing is lost; connection closes");
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn truncated_then_closed_connection_does_not_hang() {
    let (server, mut gateway) = serving_stack(2);
    {
        // Half a request line, then slam the connection shut.
        let mut raw = TcpStream::connect(gateway.local_addr()).unwrap();
        raw.write_all(b"POST /v1/inf").unwrap();
        drop(raw);
    }
    {
        // A full head promising a body that never comes, then close.
        let mut raw = TcpStream::connect(gateway.local_addr()).unwrap();
        raw.write_all(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 512\r\n\r\n")
            .unwrap();
        drop(raw);
    }
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn missing_content_length_is_a_clean_400() {
    let (server, mut gateway) = serving_stack(3);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    // No Content-Length at all: the parser sees an empty body, the JSON
    // codec rejects it — never a hang waiting for bytes.
    client.send_raw(b"POST /v1/infer HTTP/1.1\r\n\r\n").unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn oversized_content_length_is_413_before_the_body_uploads() {
    let (server, mut gateway) = serving_stack(4);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    // Claim 100 MB against a 64 KB limit; send no body bytes at all — the
    // rejection must come from the head alone.
    client
        .send_raw(b"POST /v1/infer HTTP/1.1\r\nContent-Length: 104857600\r\n\r\n")
        .unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 413);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn unterminated_giant_head_is_rejected() {
    let (server, mut gateway) = serving_stack(5);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    // 4 KB of header bytes with no blank line against a 2 KB head limit.
    let flood = format!("GET / HTTP/1.1\r\nX-Junk: {}\r\n", "a".repeat(4096));
    client.send_raw(flood.as_bytes()).unwrap();
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 400);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn request_split_across_many_tcp_segments_still_parses() {
    let (server, mut gateway) = serving_stack(6);
    let body = good_body();
    let raw = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    // Dribble the request in 7-byte segments with real pauses, crossing
    // head/body boundaries at arbitrary offsets.
    for chunk in raw.as_bytes().chunks(7) {
        client.send_raw(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let response = client.read_response().unwrap();
    assert_eq!(response.status, 200);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn pipelined_keep_alive_requests_are_each_answered_in_order() {
    let (server, mut gateway) = serving_stack(7);
    let body = good_body();
    let infer = format!(
        "POST /v1/infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let pipeline = format!("{infer}GET /healthz HTTP/1.1\r\n\r\n{infer}");
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    client.send_raw(pipeline.as_bytes()).unwrap();
    let first = client.read_response().unwrap();
    let second = client.read_response().unwrap();
    let third = client.read_response().unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(second.body, b"ok\n");
    assert_eq!(third.status, 200);
    assert!(third.keep_alive, "pipelining must not poison keep-alive");
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn binary_garbage_and_bad_json_do_not_kill_the_worker() {
    let (server, mut gateway) = serving_stack(8);
    {
        let mut raw = TcpStream::connect(gateway.local_addr()).unwrap();
        raw.write_all(&[0xff, 0x00, 0x13, 0x37, b'\r', b'\n', b'\r', b'\n'])
            .unwrap();
        // Response or reset — either way, no panic and no hang.
    }
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    let response = client.post_json("/v1/infer", "{not json").unwrap();
    assert_eq!(response.status, 400);
    // Wrong geometry is a 400 too — and must NOT pin the stream's dims.
    let wrong = InferRequest::new(vec![2, 2], vec![0.1; 4]);
    let response = client
        .post_json("/v1/infer", &serde_json::to_string(&wrong).unwrap())
        .unwrap();
    assert_eq!(response.status, 400);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn idle_keep_alive_connections_cannot_starve_the_worker_pool() {
    // Regression: with one connection worker, a parked keep-alive client
    // used to pin it forever and every later connection queued without
    // ever being served. keep_alive_idle must reclaim the worker.
    let mut rng = StdRng::seed_from_u64(20);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 3, &mut rng)),
    ]);
    let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 16).unwrap());
    let server = Arc::new(
        BackendChoice::Csr
            .serve_streaming(model, &DIMS, StreamingConfig::default())
            .unwrap(),
    );
    let mut gateway = Gateway::start(
        Arc::clone(&server),
        GatewayConfig {
            workers: 1, // the worst case: a single connection worker
            poll_interval: Duration::from_millis(10),
            keep_alive_idle: Duration::from_millis(100),
            ..GatewayConfig::for_dims(&DIMS)
        },
    )
    .unwrap();

    // Occupy the only worker with a connection that completes one request
    // and then just sits there, keep-alive.
    let mut parked = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(
        parked.post_json("/v1/infer", &good_body()).unwrap().status,
        200
    );

    // A second connection must still get served once the idle timeout
    // reclaims the worker (well before the client's read timeout).
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn unknown_routes_and_methods_get_404_405() {
    let (server, mut gateway) = serving_stack(9);
    let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.get("/v1/infer").unwrap().status, 405);
    assert_eq!(client.post_json("/metrics", "{}").unwrap().status, 405);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    assert_still_serving(&gateway);
    gateway.shutdown();
    server.shutdown();
}

#[test]
fn parse_errors_are_counted_in_gateway_metrics() {
    let (server, mut gateway) = serving_stack(10);
    for _ in 0..3 {
        let mut client = HttpClient::connect(gateway.local_addr()).unwrap();
        client.send_raw(b"NOT HTTP AT ALL\r\n\r\n").unwrap();
        let _ = client.read_response();
    }
    assert_still_serving(&gateway);
    let metrics = gateway.shutdown();
    assert_eq!(metrics.parse_errors, 3);
    assert!(metrics.responses_2xx >= 1);
    server.shutdown();
}

#[test]
fn graceful_drain_answers_503_then_refuses_connections() {
    let (server, mut gateway) = serving_stack(11);
    let addr = gateway.local_addr();
    // A healthy request first.
    assert_still_serving(&gateway);
    let metrics = gateway.shutdown();
    assert!(metrics.responses_2xx >= 1);
    // After shutdown the port no longer accepts (or resets immediately) —
    // and crucially, shutdown() returned instead of hanging.
    let refused = match TcpStream::connect(addr) {
        Err(_) => true,
        Ok(mut stream) => {
            let _ = stream.write_all(b"GET /healthz HTTP/1.1\r\n\r\n");
            let mut client_buf = [0u8; 64];
            let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
            matches!(
                std::io::Read::read(&mut stream, &mut client_buf),
                Ok(0) | Err(_)
            )
        }
    };
    assert!(refused, "drained gateway must not serve new traffic");
    server.shutdown();
}
