//! # snn-gateway — dependency-free HTTP/1.1 serving front-end
//!
//! The network edge of the workspace's serving stack: a hand-rolled
//! HTTP/1.1 server on `std::net::TcpListener` (no hyper/tokio — the build
//! is fully offline) that fronts the runtime's
//! [`StreamingServer`](snn_runtime::StreamingServer) and pushes each
//! request's deadline from the wire all the way into the EDF
//! [`DeadlineBatcher`](snn_runtime::DeadlineBatcher) flush policy.
//!
//! * [`http`] — panic-free incremental request parser (`Content-Length`
//!   bodies, keep-alive, pipelining; `400`/`413` on malformed or oversized
//!   input) and the response writer.
//! * [`json`] — the inference wire format: `dims` + flat f32 `pixels` in,
//!   logits + top-1 + timing out; optional `deadline_ms`/`priority` fields
//!   map onto [`SubmitOptions`](snn_runtime::SubmitOptions). Float
//!   round-trips are bit-exact, so HTTP serving preserves the workspace's
//!   logit-equivalence guarantees.
//! * [`Gateway`] — acceptor + connection worker pool with graceful drain;
//!   routes `POST /v1/infer`, `GET /metrics` (Prometheus text: gateway
//!   counters, [`StreamingMetrics`](snn_runtime::StreamingMetrics) and
//!   log-bucket latency histograms), `GET /v1/trace/<id>` (a traced
//!   request's span tree — when the wrapped server carries a
//!   [`TraceCollector`](snn_trace::TraceCollector), each `/v1/infer`
//!   response echoes its `trace_id`, honoring a client-supplied
//!   `x-snn-trace-id` header), `GET /healthz` (liveness: always `200`
//!   while the process runs, even mid-drain) and `GET /readyz` (readiness:
//!   `503` with a JSON body once [`Gateway::begin_drain`] flips the drain
//!   flag, reporting brownout and breaker state alongside). With telemetry
//!   on (the [`GatewayConfig::telemetry`] default) a windowed
//!   [`TelemetryHub`](snn_telemetry::TelemetryHub) collects labeled
//!   per-model / per-route sliding-window series — served as JSON by
//!   `GET /v1/stats` ([`stats`] documents the schema) and rendered live by
//!   `GET /dashboard`, a single dependency-free HTML page. Backpressure
//!   maps onto the wire:
//!   [`QueueFull`](snn_runtime::SubmitError::QueueFull) → `429`, drain →
//!   `503`, handler timeout → `504`. With a
//!   [`ModelRegistry`](snn_runtime::ModelRegistry) attached
//!   ([`Gateway::start_with_registry`]) the gateway also serves
//!   `GET /v1/models` (catalog + residency), `POST
//!   /v1/models/<name[@version]>/infer` (per-model routing with lazy
//!   load + compile) and `POST /v1/models/<name>/swap` (atomic version
//!   swap under live traffic).
//! * [`client`] — a std-only keep-alive HTTP client and closed-loop load
//!   generator ([`run_closed_loop`]), reused by the benchmark harness and
//!   the end-to-end tests.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rand::SeedableRng;
//! use snn_gateway::{client::HttpClient, Gateway, GatewayConfig};
//! use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
//! use snn_runtime::{BackendChoice, StreamingConfig};
//! use ttfs_core::{convert, Base2Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![
//!     Layer::Flatten(Flatten::new()),
//!     Layer::Dense(DenseLayer::new(9, 2, &mut rng)),
//! ]);
//! let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 16)?);
//! let dims = [1usize, 3, 3];
//! let server = Arc::new(BackendChoice::Csr.serve_streaming(
//!     Arc::clone(&model),
//!     &dims,
//!     StreamingConfig::default(),
//! )?);
//! let mut gateway = Gateway::start(Arc::clone(&server), GatewayConfig::for_dims(&dims))?;
//!
//! let mut client = HttpClient::connect(gateway.local_addr())?;
//! let body = r#"{"dims":[1,3,3],"pixels":[0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5,0.5],
//!                "deadline_ms":2.0,"priority":1}"#;
//! let response = client.post_json("/v1/infer", body)?;
//! assert_eq!(response.status, 200);
//!
//! gateway.shutdown();
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
mod metrics;
mod server;
pub mod stats;

pub use client::{
    run_closed_loop, run_closed_loop_any, HttpClient, LoadGenConfig, LoadReport, WireResponse,
};
pub use http::{Limits, ParseError, Request};
pub use json::{ErrorBody, InferRequest, InferResponse, ModelListBody, SwapRequest};
pub use metrics::{
    prometheus_text, GatewayMetrics, GatewayRecorder, LogStats, RouteMetrics, TraceStats,
};
pub use server::{Gateway, GatewayConfig};
pub use stats::render_stats;
