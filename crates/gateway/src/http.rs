//! A hand-rolled, panic-free HTTP/1.1 request parser and response writer.
//!
//! The build is fully offline (no hyper/tiny-http), so the gateway parses
//! the wire format itself. The parser is deliberately **incremental**: it
//! looks at whatever bytes have arrived so far and either produces a
//! complete request plus the number of bytes it consumed, asks for more
//! ([`None`]), or rejects the connection with a structured error the
//! server maps to `400`/`413`. Because consumption is explicit, pipelined
//! keep-alive requests fall out naturally — the connection loop re-parses
//! the remainder of its buffer before reading again.
//!
//! Supported surface (everything the inference wire format needs):
//! `Content-Length` bodies, keep-alive (HTTP/1.1 default, `Connection:
//! close` honored, HTTP/1.0 opt-in), header-size and body-size limits.
//! `Transfer-Encoding: chunked` is rejected with `400` — the gateway's own
//! clients never produce it and accepting it would complicate the
//! denial-of-service story for no serving benefit.

/// Byte-size limits the parser enforces before buffering further input.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Most bytes the request line + headers may occupy (`400` beyond).
    pub max_head_bytes: usize,
    /// Most bytes a declared `Content-Length` may claim (`413` beyond).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// A fully received HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-cased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path plus optional query), e.g. `/v1/infer`.
    pub target: String,
    /// Header list in arrival order: lower-cased names, trimmed values.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards
    /// (HTTP/1.1 default, overridden by `Connection: close`; HTTP/1.0
    /// requires an explicit `Connection: keep-alive`).
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| n == &lower)
            .map(|(_, v)| v.as_str())
    }

    /// The request path with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }
}

/// Why a request could not be parsed. The server maps these onto the wire
/// (`BadRequest` → 400, `PayloadTooLarge` → 413) and closes the
/// connection, since the byte stream can no longer be trusted to frame the
/// next request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed request line, header, or unsupported framing.
    BadRequest(String),
    /// Declared `Content-Length` exceeds the configured body limit.
    PayloadTooLarge {
        /// The configured limit that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::PayloadTooLarge { limit } => {
                write!(f, "payload exceeds the {limit}-byte body limit")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Locates the end of an HTTP head: the index one past the blank line,
/// accepting both CRLF and bare-LF line endings. Shared with the client's
/// response parser.
///
/// Single left-to-right pass that stops at the FIRST blank line (a `\n`
/// followed by `\n` or `\r\n`), whichever line-ending style produced it.
/// `parse_request` re-runs on every socket read while a body streams in,
/// so this must exit at the (early, small) head end instead of rescanning
/// the accumulated body — separate whole-buffer searches per terminator
/// style would be quadratic in the body size.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0usize;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match (buf.get(i + 1), buf.get(i + 2)) {
                (Some(b'\n'), _) => return Some(i + 2),
                (Some(b'\r'), Some(b'\n')) => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Tries to parse one complete request from the front of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full head **and** body
/// are buffered (`consumed` bytes belong to this request; the caller keeps
/// the rest for the next pipelined request), `Ok(None)` when more bytes
/// are needed, and an error when the stream is malformed or over limits.
///
/// # Errors
///
/// [`ParseError::BadRequest`] on a malformed request line or header, an
/// unsupported version or framing, or a head exceeding
/// [`Limits::max_head_bytes`]; [`ParseError::PayloadTooLarge`] when the
/// declared `Content-Length` exceeds [`Limits::max_body_bytes`] (detected
/// from the head alone, before the body is buffered).
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(ParseError::BadRequest(format!(
                "request head exceeds {} bytes without terminating",
                limits.max_head_bytes
            )));
        }
        return Ok(None);
    };
    if head_end > limits.max_head_bytes {
        return Err(ParseError::BadRequest(format!(
            "request head exceeds {} bytes",
            limits.max_head_bytes
        )));
    }
    let head = std::str::from_utf8(buf.get(..head_end).unwrap_or_default())
        .map_err(|_| ParseError::BadRequest("request head is not valid UTF-8".into()))?;

    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::BadRequest("empty request head".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(ParseError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(ParseError::BadRequest(format!("invalid method {method:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    let version_11 = version == "HTTP/1.1";

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator line
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(ParseError::BadRequest(
                "obsolete header line folding is not supported".into(),
            ));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadRequest(format!(
                "malformed header line {line:?}"
            )));
        };
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadRequest(format!(
                "malformed header name {name:?}"
            )));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(ParseError::BadRequest(
            "transfer-encoding is not supported; send a Content-Length body".into(),
        ));
    }

    let mut content_length = 0usize;
    let mut saw_content_length = false;
    for (name, value) in &headers {
        if name == "content-length" {
            let parsed: usize = value
                .parse()
                .map_err(|_| ParseError::BadRequest(format!("invalid Content-Length {value:?}")))?;
            if saw_content_length && parsed != content_length {
                return Err(ParseError::BadRequest(
                    "conflicting Content-Length headers".into(),
                ));
            }
            content_length = parsed;
            saw_content_length = true;
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(ParseError::PayloadTooLarge {
            limit: limits.max_body_bytes,
        });
    }

    let total = head_end.saturating_add(content_length);
    if buf.len() < total {
        return Ok(None); // body still in flight
    }
    let body = buf.get(head_end..total).unwrap_or_default().to_vec();

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => version_11,
    };

    Ok(Some((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body,
            keep_alive,
        },
        total,
    )))
}

/// Canonical reason phrase for the status codes the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serializes one response with a `Content-Length` body and an explicit
/// `Connection` header (the gateway always frames by length, never by
/// connection close).
pub fn write_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    write_response_with_retry_after(status, content_type, body, keep_alive, None)
}

/// [`write_response`] with an optional `Retry-After: <seconds>` header —
/// the gateway attaches one to every backpressure/unavailability answer
/// (`429`/`503`) so well-behaved clients can pace their retries instead
/// of hammering a breaker that is known to stay open.
pub fn write_response_with_retry_after(
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    retry_after_secs: Option<u64>,
) -> Vec<u8> {
    let retry_after = retry_after_secs
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    let mut out = Vec::with_capacity(body.len() + 160);
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}Connection: {}\r\n\r\n",
            status,
            status_reason(status),
            content_type,
            body.len(),
            retry_after,
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/metrics");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length_body() {
        let raw = b"POST /v1/infer HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("content-length"), Some("4"));
    }

    #[test]
    fn incomplete_head_and_body_ask_for_more() {
        assert!(parse_request(b"POST /v1/in", &limits()).unwrap().is_none());
        let partial = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(parse_request(partial, &limits()).unwrap().is_none());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (req, used) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.path(), "/healthz");
        let (req2, used2) = parse_request(&raw[used..], &limits()).unwrap().unwrap();
        assert_eq!(req2.path(), "/metrics");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        let raw = b"POST /v1/infer HTTP/1.0\nContent-Length: 2\nConnection: keep-alive\n\nhi";
        let (req, _) = parse_request(raw, &limits()).unwrap().unwrap();
        assert_eq!(req.body, b"hi");
        assert!(req.keep_alive, "HTTP/1.0 opts in explicitly");
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_request(raw, &limits()).unwrap().unwrap();
        assert!(!req.keep_alive);
        let raw10 = b"GET / HTTP/1.0\r\n\r\n";
        let (req10, _) = parse_request(raw10, &limits()).unwrap().unwrap();
        assert!(!req10.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn truncated_request_line_rejected() {
        let err = parse_request(b"GARBAGE\r\n\r\n", &limits()).unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)), "{err:?}");
        let err = parse_request(b"GET /x\r\n\r\n", &limits()).unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)), "{err:?}");
        let err = parse_request(b"GET /x SPDY/3\r\n\r\n", &limits()).unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn bad_content_length_rejected() {
        for head in [
            "POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: -3\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 5\r\n\r\n",
        ] {
            let err = parse_request(head.as_bytes(), &limits()).unwrap_err();
            assert!(matches!(err, ParseError::BadRequest(_)), "{head:?}");
        }
    }

    #[test]
    fn oversized_content_length_is_413_before_the_body_arrives() {
        let small = Limits {
            max_head_bytes: 1024,
            max_body_bytes: 16,
        };
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
        assert_eq!(
            parse_request(raw, &small).unwrap_err(),
            ParseError::PayloadTooLarge { limit: 16 }
        );
    }

    #[test]
    fn unterminated_head_over_limit_rejected() {
        let small = Limits {
            max_head_bytes: 32,
            max_body_bytes: 16,
        };
        let raw = vec![b'A'; 64];
        let err = parse_request(&raw, &small).unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)));
    }

    #[test]
    fn chunked_transfer_encoding_rejected() {
        let raw = b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let err = parse_request(raw, &limits()).unwrap_err();
        assert!(matches!(err, ParseError::BadRequest(_)));
    }

    #[test]
    fn malformed_headers_rejected() {
        for head in [
            "GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            "GET / HTTP/1.1\r\nbad name: x\r\n\r\n",
            "GET / HTTP/1.1\r\nx: 1\r\n folded\r\n\r\n",
        ] {
            let err = parse_request(head.as_bytes(), &limits()).unwrap_err();
            assert!(matches!(err, ParseError::BadRequest(_)), "{head:?}");
        }
    }

    #[test]
    fn response_writer_frames_by_length() {
        let bytes = write_response(200, "application/json", b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Retry-After"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn response_writer_emits_retry_after_when_asked() {
        let bytes = write_response_with_retry_after(503, "application/json", b"{}", false, Some(7));
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
