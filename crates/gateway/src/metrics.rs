//! Gateway-level observability: wire counters, per-route latency
//! percentiles, and the Prometheus text rendering served by
//! `GET /metrics`.
//!
//! The gateway's own counters (connections, parse errors, sheds, status
//! classes) compose with the runtime's
//! [`StreamingMetrics`](snn_runtime::StreamingMetrics) — one scrape shows
//! the whole path from accepted socket to executed batch.

use serde::{Deserialize, Serialize};
use snn_runtime::{HistogramSnapshot, LatencyRecorder, RegistryMetrics, StreamingMetrics};
use std::collections::BTreeMap;
use std::time::Duration;

/// Trace-collector health for the exposition: the cumulative
/// recorded/dropped totals plus the ring's current occupancy against its
/// capacity — `ring_spans` near `ring_capacity` with `spans_dropped`
/// climbing means the retention window is too small for the span rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Spans recorded into the collector since construction.
    pub spans_recorded: u64,
    /// Spans evicted from the bounded ring since construction.
    pub spans_dropped: u64,
    /// Spans currently retained in the ring.
    pub ring_spans: usize,
    /// The ring's retention bound.
    pub ring_capacity: usize,
}

/// Flight-recorder health for the exposition: per-level recorded totals,
/// ring drops/occupancy, sink rate-limit suppressions and incident
/// reports written — `dropped` climbing means the log ring is too small
/// for the event rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    /// Events recorded per level, indexed `[debug, info, warn, error]`.
    pub events: [u64; 4],
    /// Events evicted from the bounded flight-recorder ring.
    pub dropped: u64,
    /// Events currently retained in the ring.
    pub ring_len: usize,
    /// The ring's retention bound.
    pub ring_capacity: usize,
    /// Sink lines suppressed by per-`(level, target)` rate limiting.
    pub suppressed: u64,
    /// Incident post-mortem reports written to disk.
    pub incidents_written: u64,
}

/// Latency summary for one route (`infer`, `metrics`, `health`, `other`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteMetrics {
    /// Route label.
    pub route: String,
    /// Requests that completed on this route (any status).
    pub requests: u64,
    /// Mean handler latency, microseconds.
    pub latency_mean_us: f64,
    /// Median handler latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile handler latency, microseconds.
    pub latency_p99_us: f64,
}

/// Serializable snapshot of the gateway's wire-level counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GatewayMetrics {
    /// TCP connections accepted.
    pub connections: u64,
    /// HTTP requests that received a response.
    pub requests: u64,
    /// Responses with a 2xx status.
    pub responses_2xx: u64,
    /// Responses with a 4xx status (includes parse errors and sheds).
    pub responses_4xx: u64,
    /// Responses with a 5xx status (drain 503s, timeouts, internal).
    pub responses_5xx: u64,
    /// Malformed or over-limit requests (400/413 from the parser); the
    /// connection closes afterwards because framing is lost.
    pub parse_errors: u64,
    /// Requests shed with `429 Too Many Requests` — a full queue
    /// ([`SubmitError::QueueFull`](snn_runtime::SubmitError)) or a
    /// priority brownout
    /// ([`SubmitError::Brownout`](snn_runtime::SubmitError)) on the wire.
    pub shed_429: u64,
    /// Requests refused with `503 Service Unavailable` during drain.
    pub drained_503: u64,
    /// Requests that timed out waiting on the ticket (`504`).
    pub timeout_504: u64,
    /// Per-route latency percentiles, ascending by route label.
    pub routes: Vec<RouteMetrics>,
}

/// Accumulates gateway measurements; one instance lives behind a mutex in
/// the gateway and every connection worker records into it.
#[derive(Debug, Default)]
pub struct GatewayRecorder {
    connections: u64,
    parse_errors: u64,
    shed_429: u64,
    drained_503: u64,
    timeout_504: u64,
    responses_2xx: u64,
    responses_4xx: u64,
    responses_5xx: u64,
    routes: BTreeMap<String, LatencyRecorder>,
}

impl GatewayRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one accepted TCP connection.
    pub fn record_connection(&mut self) {
        self.connections += 1;
    }

    /// Records one completed response: its route, status and handler
    /// latency.
    pub fn record_response(&mut self, route: &str, status: u16, latency: Duration) {
        match status {
            200..=299 => self.responses_2xx += 1,
            400..=499 => self.responses_4xx += 1,
            _ => self.responses_5xx += 1,
        }
        match status {
            429 => self.shed_429 += 1,
            503 => self.drained_503 += 1,
            504 => self.timeout_504 += 1,
            _ => {}
        }
        self.routes
            .entry(route.to_string())
            .or_default()
            .record(latency);
    }

    /// Records one request the parser rejected (already counted as a
    /// response via [`record_response`](Self::record_response) by the
    /// caller; this only bumps the dedicated parse-error counter).
    pub fn record_parse_error(&mut self) {
        self.parse_errors += 1;
    }

    /// Snapshots everything recorded so far.
    pub fn summarize(&mut self) -> GatewayMetrics {
        let routes: Vec<RouteMetrics> = self
            .routes
            .iter_mut()
            .map(|(route, rec)| RouteMetrics {
                route: route.clone(),
                requests: rec.len() as u64,
                latency_mean_us: rec.mean_us(),
                latency_p50_us: rec.quantile_us(0.50),
                latency_p99_us: rec.quantile_us(0.99),
            })
            .collect();
        GatewayMetrics {
            connections: self.connections,
            requests: routes.iter().map(|r| r.requests).sum(),
            responses_2xx: self.responses_2xx,
            responses_4xx: self.responses_4xx,
            responses_5xx: self.responses_5xx,
            parse_errors: self.parse_errors,
            shed_429: self.shed_429,
            drained_503: self.drained_503,
            timeout_504: self.timeout_504,
            routes,
        }
    }
}

fn counter_family(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn gauge_family(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Renders one [`HistogramSnapshot`] as a Prometheus histogram family:
/// cumulative `_bucket{le="..."}` samples (bounds converted from µs to
/// seconds, Prometheus' base unit), the implicit `+Inf` bucket, `_sum`
/// (seconds) and `_count`.
fn histogram_family(out: &mut String, name: &str, help: &str, hist: &HistogramSnapshot) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    for bucket in &hist.buckets {
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {}\n",
            bucket.le_us as f64 / 1e6,
            bucket.count
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
        hist.count,
        hist.sum_us / 1e6,
        hist.count
    ));
}

/// Renders the gateway and streaming snapshots in Prometheus text
/// exposition format (`text/plain; version=0.0.4`). `registry` adds the
/// `snn_registry_*` families when a [`ModelRegistry`](snn_runtime::ModelRegistry)
/// fronts this gateway; `trace` carries the span collector's totals and
/// ring occupancy when the wrapped server is traced; `log` adds the
/// `snn_log_*` + `snn_incidents_*` families when the structured-log
/// flight recorder is on.
pub fn prometheus_text(
    gateway: &GatewayMetrics,
    streaming: &StreamingMetrics,
    registry: Option<&RegistryMetrics>,
    trace: Option<TraceStats>,
    log: Option<&LogStats>,
) -> String {
    let mut out = String::with_capacity(2048);
    for (name, help, value) in [
        (
            "snn_gateway_connections_total",
            "TCP connections accepted",
            gateway.connections,
        ),
        (
            "snn_gateway_requests_total",
            "HTTP requests answered",
            gateway.requests,
        ),
        (
            "snn_gateway_parse_errors_total",
            "Requests rejected by the HTTP parser (400/413)",
            gateway.parse_errors,
        ),
        (
            "snn_gateway_sheds_total",
            "Requests shed with 429 (streaming backpressure)",
            gateway.shed_429,
        ),
        (
            "snn_gateway_drained_total",
            "Requests refused with 503 during drain",
            gateway.drained_503,
        ),
        (
            "snn_gateway_timeouts_total",
            "Requests that hit the handler timeout (504)",
            gateway.timeout_504,
        ),
    ] {
        counter_family(&mut out, name, help, value);
    }
    out.push_str(
        "# HELP snn_gateway_responses_total Responses by status class\n# TYPE snn_gateway_responses_total counter\n",
    );
    for (class, value) in [
        ("2xx", gateway.responses_2xx),
        ("4xx", gateway.responses_4xx),
        ("5xx", gateway.responses_5xx),
    ] {
        out.push_str(&format!(
            "snn_gateway_responses_total{{class=\"{class}\"}} {value}\n"
        ));
    }
    out.push_str(
        "# HELP snn_gateway_route_requests_total Requests per route\n# TYPE snn_gateway_route_requests_total counter\n",
    );
    for route in &gateway.routes {
        out.push_str(&format!(
            "snn_gateway_route_requests_total{{route=\"{}\"}} {}\n",
            route.route, route.requests
        ));
    }
    out.push_str(
        "# HELP snn_gateway_route_latency_us Handler latency percentiles per route\n# TYPE snn_gateway_route_latency_us gauge\n",
    );
    for route in &gateway.routes {
        for (q, v) in [
            ("0.5", route.latency_p50_us),
            ("0.99", route.latency_p99_us),
        ] {
            out.push_str(&format!(
                "snn_gateway_route_latency_us{{route=\"{}\",quantile=\"{q}\"}} {v}\n",
                route.route
            ));
        }
    }

    for (name, help, value) in [
        (
            "snn_streaming_requests_total",
            "Streamed requests completed",
            streaming.requests,
        ),
        (
            "snn_streaming_shed_requests_total",
            "Submissions shed by backpressure (QueueFull)",
            streaming.shed_requests,
        ),
        (
            "snn_streaming_brownout_shed_requests_total",
            "Low-priority submissions shed by the priority brownout",
            streaming.brownout_shed_requests,
        ),
        (
            "snn_streaming_batches_total",
            "Batches the deadline batcher formed",
            streaming.batches,
        ),
        (
            "snn_streaming_batch_retries_total",
            "Batches whose innocents were retried solo after a backend panic",
            streaming.batch_retries,
        ),
        (
            "snn_streaming_quarantined_total",
            "Requests quarantined as poison after panicking solo",
            streaming.quarantined,
        ),
        (
            "snn_streaming_wait_timeouts_total",
            "Ticket waits that expired before the result landed",
            streaming.wait_timeouts,
        ),
        (
            "snn_streaming_deadline_misses_total",
            "Requests whose batch began executing more than the grace period past their EDF deadline",
            streaming.deadline_misses,
        ),
    ] {
        counter_family(&mut out, name, help, value);
    }
    out.push_str(
        "# HELP snn_streaming_flushes_total Batch flushes by trigger\n# TYPE snn_streaming_flushes_total counter\n",
    );
    for (reason, value) in [
        ("edf_deadline", streaming.flushes_edf_deadline),
        ("max_batch", streaming.flushes_max_batch),
        ("drain", streaming.flushes_drain),
    ] {
        out.push_str(&format!(
            "snn_streaming_flushes_total{{reason=\"{reason}\"}} {value}\n"
        ));
    }
    for (name, help, value) in [
        (
            "snn_streaming_images_per_sec",
            "Completed requests per second of wall clock",
            streaming.images_per_sec,
        ),
        (
            "snn_streaming_e2e_p50_us",
            "Median submit-to-result latency",
            streaming.e2e_p50_us,
        ),
        (
            "snn_streaming_e2e_p99_us",
            "99th-percentile submit-to-result latency",
            streaming.e2e_p99_us,
        ),
        (
            "snn_streaming_queue_wait_share",
            "Fraction of e2e time spent queue-waiting",
            streaming.queue_wait_share,
        ),
        (
            "snn_streaming_mean_batch_occupancy",
            "Mean images per formed batch",
            streaming.mean_batch_occupancy,
        ),
    ] {
        gauge_family(&mut out, name, help, value);
    }
    for (name, help, hist) in [
        (
            "snn_streaming_e2e_seconds",
            "Submit-to-result latency",
            &streaming.e2e_histogram,
        ),
        (
            "snn_streaming_queue_wait_seconds",
            "Time from submission until batch execution began",
            &streaming.queue_wait_histogram,
        ),
        (
            "snn_streaming_exec_seconds",
            "Backend execution time of the formed batch",
            &streaming.exec_histogram,
        ),
    ] {
        histogram_family(&mut out, name, help, hist);
    }
    if let Some(registry) = registry {
        for (name, help, value) in [
            (
                "snn_registry_cold_loads_total",
                "Artifact loads performed (cold starts)",
                registry.cold_loads,
            ),
            (
                "snn_registry_warm_hits_total",
                "Lookups served immediately from a resident entry",
                registry.warm_hits,
            ),
            (
                "snn_registry_coalesced_loads_total",
                "Lookups that waited on another thread's in-progress load",
                registry.coalesced_loads,
            ),
            (
                "snn_registry_evictions_total",
                "Entries evicted by the LRU byte budget",
                registry.evictions,
            ),
            (
                "snn_registry_swaps_total",
                "Successful atomic version swaps",
                registry.swaps,
            ),
            (
                "snn_registry_load_errors_total",
                "Loads that failed (artifact or compile error)",
                registry.load_errors,
            ),
            (
                "snn_registry_breaker_opens_total",
                "Times a model's circuit breaker opened",
                registry.breaker_opens,
            ),
            (
                "snn_registry_breaker_recoveries_total",
                "Half-open probes that restored a model to service",
                registry.breaker_recoveries,
            ),
            (
                "snn_registry_breaker_rejections_total",
                "Lookups rejected immediately by an open breaker",
                registry.breaker_rejections,
            ),
        ] {
            counter_family(&mut out, name, help, value);
        }
        for (name, help, value) in [
            (
                "snn_registry_catalog_models",
                "Artifacts in the catalog (readable headers)",
                registry.catalog_models as f64,
            ),
            (
                "snn_registry_resident_models",
                "Currently resident compiled entries",
                registry.resident_models as f64,
            ),
            (
                "snn_registry_resident_bytes",
                "Sum of resident compiled bytes",
                registry.resident_bytes as f64,
            ),
            (
                "snn_registry_byte_budget",
                "Configured LRU byte budget (0 = unbounded)",
                registry.byte_budget as f64,
            ),
            (
                "snn_registry_load_ms_mean",
                "Mean artifact load wall time",
                registry.load_ms_mean,
            ),
            (
                "snn_registry_load_ms_max",
                "Max artifact load wall time",
                registry.load_ms_max,
            ),
            (
                "snn_registry_compile_ms_mean",
                "Mean backend compile wall time",
                registry.compile_ms_mean,
            ),
            (
                "snn_registry_compile_ms_max",
                "Max backend compile wall time",
                registry.compile_ms_max,
            ),
        ] {
            gauge_family(&mut out, name, help, value);
        }
    }
    if let Some(trace) = trace {
        counter_family(
            &mut out,
            "snn_trace_spans_recorded_total",
            "Spans recorded into the trace collector",
            trace.spans_recorded,
        );
        counter_family(
            &mut out,
            "snn_trace_spans_dropped_total",
            "Spans evicted from the bounded trace ring",
            trace.spans_dropped,
        );
        gauge_family(
            &mut out,
            "snn_trace_ring_spans",
            "Spans currently retained in the bounded trace ring",
            trace.ring_spans as f64,
        );
        gauge_family(
            &mut out,
            "snn_trace_ring_capacity",
            "Retention bound of the trace ring",
            trace.ring_capacity as f64,
        );
    }
    if let Some(log) = log {
        out.push_str(
            "# HELP snn_log_events_total Structured log events recorded, by level\n# TYPE snn_log_events_total counter\n",
        );
        for (i, level) in ["debug", "info", "warn", "error"].iter().enumerate() {
            out.push_str(&format!(
                "snn_log_events_total{{level=\"{level}\"}} {}\n",
                log.events[i]
            ));
        }
        counter_family(
            &mut out,
            "snn_log_events_dropped_total",
            "Events evicted from the bounded flight-recorder ring",
            log.dropped,
        );
        counter_family(
            &mut out,
            "snn_log_sink_suppressed_total",
            "JSON sink lines suppressed by per-target rate limiting",
            log.suppressed,
        );
        gauge_family(
            &mut out,
            "snn_log_ring_events",
            "Events currently retained in the flight-recorder ring",
            log.ring_len as f64,
        );
        gauge_family(
            &mut out,
            "snn_log_ring_capacity",
            "Retention bound of the flight-recorder ring",
            log.ring_capacity as f64,
        );
        counter_family(
            &mut out,
            "snn_incidents_written_total",
            "Incident post-mortem reports written to disk",
            log.incidents_written,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_runtime::StreamingRecorder;

    #[test]
    fn recorder_counts_status_classes_and_routes() {
        let mut r = GatewayRecorder::new();
        r.record_connection();
        r.record_connection();
        r.record_response("infer", 200, Duration::from_millis(2));
        r.record_response("infer", 429, Duration::from_millis(1));
        r.record_response("metrics", 200, Duration::from_micros(80));
        r.record_response("parse", 400, Duration::ZERO);
        r.record_parse_error();
        r.record_response("infer", 503, Duration::ZERO);
        r.record_response("infer", 504, Duration::from_secs(1));
        let m = r.summarize();
        assert_eq!(m.connections, 2);
        assert_eq!(m.requests, 6);
        assert_eq!(m.responses_2xx, 2);
        assert_eq!(m.responses_4xx, 2);
        assert_eq!(m.responses_5xx, 2);
        assert_eq!(m.parse_errors, 1);
        assert_eq!(m.shed_429, 1);
        assert_eq!(m.drained_503, 1);
        assert_eq!(m.timeout_504, 1);
        let infer = m.routes.iter().find(|r| r.route == "infer").unwrap();
        assert_eq!(infer.requests, 4);
        assert!(infer.latency_p99_us >= infer.latency_p50_us);
    }

    #[test]
    fn metrics_roundtrip_json() {
        let mut r = GatewayRecorder::new();
        r.record_response("infer", 200, Duration::from_millis(1));
        let m = r.summarize();
        let json = serde_json::to_string(&m).unwrap();
        let back: GatewayMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn prometheus_text_contains_every_family() {
        let mut r = GatewayRecorder::new();
        r.record_connection();
        r.record_response("infer", 200, Duration::from_millis(1));
        let gm = r.summarize();
        let sm = StreamingRecorder::new().summarize();
        let rm = RegistryMetrics {
            catalog_models: 2,
            resident_models: 1,
            resident_bytes: 4096,
            byte_budget: 0,
            cold_loads: 1,
            warm_hits: 3,
            coalesced_loads: 0,
            evictions: 0,
            swaps: 0,
            load_errors: 0,
            breaker_opens: 0,
            breaker_recoveries: 0,
            breaker_rejections: 0,
            load_ms_mean: 1.5,
            load_ms_max: 1.5,
            compile_ms_mean: 4.0,
            compile_ms_max: 4.0,
        };
        let text = prometheus_text(
            &gm,
            &sm,
            Some(&rm),
            Some(TraceStats {
                spans_recorded: 7,
                spans_dropped: 0,
                ring_spans: 7,
                ring_capacity: 4096,
            }),
            Some(&LogStats {
                events: [0, 5, 2, 1],
                dropped: 0,
                ring_len: 8,
                ring_capacity: 2048,
                suppressed: 0,
                incidents_written: 1,
            }),
        );
        for family in [
            "snn_gateway_connections_total 1",
            "snn_gateway_responses_total{class=\"2xx\"} 1",
            "snn_gateway_route_requests_total{route=\"infer\"} 1",
            "snn_gateway_route_latency_us{route=\"infer\",quantile=\"0.99\"}",
            "snn_streaming_requests_total 0",
            "snn_streaming_shed_requests_total 0",
            "snn_streaming_brownout_shed_requests_total 0",
            "snn_streaming_batch_retries_total 0",
            "snn_streaming_quarantined_total 0",
            "snn_streaming_mean_batch_occupancy 0",
            "snn_streaming_flushes_total{reason=\"edf_deadline\"} 0",
            "snn_streaming_flushes_total{reason=\"max_batch\"} 0",
            "snn_streaming_flushes_total{reason=\"drain\"} 0",
            "snn_streaming_wait_timeouts_total 0",
            "snn_streaming_deadline_misses_total 0",
            "snn_streaming_e2e_seconds_count 0",
            "snn_registry_cold_loads_total 1",
            "snn_registry_warm_hits_total 3",
            "snn_registry_coalesced_loads_total 0",
            "snn_registry_evictions_total 0",
            "snn_registry_catalog_models 2",
            "snn_registry_resident_models 1",
            "snn_registry_resident_bytes 4096",
            "snn_registry_load_ms_mean 1.5",
            "snn_registry_compile_ms_max 4",
            "snn_trace_spans_recorded_total 7",
            "snn_trace_spans_dropped_total 0",
            "snn_trace_ring_spans 7",
            "snn_trace_ring_capacity 4096",
            "snn_log_events_total{level=\"info\"} 5",
            "snn_log_events_total{level=\"error\"} 1",
            "snn_log_events_dropped_total 0",
            "snn_log_sink_suppressed_total 0",
            "snn_log_ring_events 8",
            "snn_log_ring_capacity 2048",
            "snn_incidents_written_total 1",
        ] {
            assert!(text.contains(family), "missing {family:?} in:\n{text}");
        }
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "bad line {line:?}");
        }
    }

    /// A parser-shaped walk over the full scrape: every sample must belong
    /// to a family that announced `# HELP` then `# TYPE` immediately before
    /// its samples, histogram buckets must be cumulative and close with
    /// `+Inf`/`_sum`/`_count`, and no family may be announced twice.
    #[test]
    fn prometheus_scrape_conforms_to_exposition_format() {
        let mut gr = GatewayRecorder::new();
        gr.record_connection();
        gr.record_response("infer", 200, Duration::from_millis(2));
        let mut sr = StreamingRecorder::new();
        sr.record_request(
            Duration::from_micros(1500),
            Duration::from_micros(300),
            false,
        );
        sr.record_batch(
            1,
            Duration::from_micros(900),
            snn_runtime::FlushReason::MaxBatch,
        );
        let text = prometheus_text(
            &gr.summarize(),
            &sr.summarize(),
            None,
            Some(TraceStats {
                spans_recorded: 3,
                spans_dropped: 1,
                ring_spans: 2,
                ring_capacity: 64,
            }),
            Some(&LogStats {
                events: [4, 3, 2, 1],
                dropped: 1,
                ring_len: 9,
                ring_capacity: 2048,
                suppressed: 2,
                incidents_written: 1,
            }),
        );

        let mut announced: Vec<String> = Vec::new(); // families, in order
        let mut current: Option<(String, String)> = None; // (family, type)
        let mut pending_help: Option<String> = None;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let family = rest.split_whitespace().next().unwrap_or_default();
                assert!(rest.len() > family.len() + 1, "HELP without text: {line:?}");
                pending_help = Some(family.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let family = parts.next().unwrap_or_default().to_string();
                let kind = parts.next().unwrap_or_default().to_string();
                assert_eq!(
                    pending_help.take().as_deref(),
                    Some(family.as_str()),
                    "TYPE not preceded by its HELP: {line:?}"
                );
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind.as_str()),
                    "unknown type {kind:?}"
                );
                assert!(
                    !announced.contains(&family),
                    "family {family:?} announced twice"
                );
                announced.push(family.clone());
                current = Some((family, kind));
            } else {
                let (family, kind) = current.as_ref().expect("sample before any TYPE");
                let name = line.split(['{', ' ']).next().unwrap_or_default();
                let owned = if kind == "histogram" {
                    name == format!("{family}_bucket")
                        || name == format!("{family}_sum")
                        || name == format!("{family}_count")
                } else {
                    name == family
                };
                assert!(owned, "sample {name:?} outside its family {family:?}");
                let value = line.rsplit(' ').next().unwrap_or_default();
                assert!(
                    value.parse::<f64>().is_ok(),
                    "unparseable sample value: {line:?}"
                );
            }
        }
        // Histogram invariants: buckets cumulative, closed by +Inf == count.
        for family in [
            "snn_streaming_e2e_seconds",
            "snn_streaming_queue_wait_seconds",
            "snn_streaming_exec_seconds",
        ] {
            assert!(announced.contains(&family.to_string()), "missing {family}");
            let mut last = 0u64;
            let mut inf = None;
            for line in text.lines().filter(|l| !l.starts_with('#')) {
                if let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{le=\"")) {
                    let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                    assert!(count >= last, "non-cumulative bucket: {line:?}");
                    last = count;
                    if rest.starts_with("+Inf") {
                        inf = Some(count);
                    }
                }
            }
            let count_line = text
                .lines()
                .find(|l| l.starts_with(&format!("{family}_count ")))
                .unwrap();
            let total: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
            assert_eq!(inf, Some(total), "{family}: +Inf bucket != _count");
            assert_eq!(total, 1, "{family}: the one recorded request counts");
        }
    }
}
