//! A std-only HTTP/1.1 client and closed-loop load generator.
//!
//! [`HttpClient`] is a minimal keep-alive client over one `TcpStream` —
//! enough to drive the gateway from tests, the benchmark harness, and CI
//! without any external tooling. [`run_closed_loop`] layers the classic
//! closed-loop load model on top: `clients` threads each own a share of
//! the sample set and submit → wait → submit, optionally attaching random
//! per-request deadlines and priorities (deterministic xorshift seeded per
//! client — no external RNG dependency, matching the gateway's
//! dependency-free story), and optionally checking every `200` response's
//! logits bit-for-bit against an expected tensor.

use serde::Serialize;
use snn_runtime::LatencyRecorder;
use snn_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use crate::http::find_head_end;
use crate::json::{InferRequest, InferResponse};

/// One parsed HTTP response as the client sees it.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Response body (framed by `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the server will keep the connection open.
    pub keep_alive: bool,
    /// Parsed `Retry-After` header, whole seconds, when the server sent
    /// one (the gateway attaches it to every `429`/`503`).
    pub retry_after: Option<u64>,
}

/// A blocking keep-alive HTTP/1.1 client over one TCP connection.
pub struct HttpClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr` with a generous read timeout (requests never
    /// hang a test run forever).
    ///
    /// # Errors
    ///
    /// Propagates the connect/configure error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Issues a `GET`.
    ///
    /// # Errors
    ///
    /// Propagates transport errors or a malformed response.
    pub fn get(&mut self, path: &str) -> std::io::Result<WireResponse> {
        self.request("GET", path, None)
    }

    /// Issues a `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates transport errors or a malformed response.
    pub fn post_json(&mut self, path: &str, body: &str) -> std::io::Result<WireResponse> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// Writes raw bytes to the underlying stream — the hostile-input tests
    /// use this to send deliberately broken requests.
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Reads one response off the wire (for use after
    /// [`send_raw`](Self::send_raw)).
    ///
    /// # Errors
    ///
    /// Propagates transport errors or a malformed response.
    pub fn read_response(&mut self) -> std::io::Result<WireResponse> {
        let mut scratch = [0u8; 8192];
        loop {
            if let Some(response) = self.try_parse_response()? {
                return Ok(response);
            }
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before a full response arrived",
                ));
            }
            self.buf.extend_from_slice(&scratch[..n]);
        }
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> std::io::Result<WireResponse> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: gateway\r\n");
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        if let Some(body) = body {
            self.stream.write_all(body)?;
        }
        self.read_response()
    }

    fn try_parse_response(&mut self) -> std::io::Result<Option<WireResponse>> {
        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
        let Some(head_end) = find_head_end(&self.buf) else {
            return Ok(None);
        };
        let head = std::str::from_utf8(&self.buf[..head_end])
            .map_err(|_| bad("response head is not UTF-8"))?;
        let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut keep_alive = true;
        let mut retry_after = None;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("bad Content-Length"))?;
            } else if name == "connection" {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name == "retry-after" {
                // Only the delta-seconds form (the one the gateway emits);
                // an HTTP-date or garbage value is ignored, not fatal.
                retry_after = value.parse::<u64>().ok();
            }
        }
        let total = head_end + content_length;
        if self.buf.len() < total {
            return Ok(None);
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(WireResponse {
            status,
            body,
            keep_alive,
            retry_after,
        }))
    }
}

/// Deterministic xorshift64* — the load generator's only randomness
/// source, keeping the client std-only.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Closed-loop client threads.
    pub clients: usize,
    /// How many times each client re-submits its share of the samples.
    pub passes: usize,
    /// When `Some((lo, hi))`, each request draws `deadline_ms` uniformly
    /// from the range — except a random quarter of requests omit the field
    /// to exercise the server-default path. `None` omits it always.
    pub deadline_ms: Option<(f64, f64)>,
    /// Priorities are drawn uniformly from `0..=max_priority`.
    pub max_priority: u8,
    /// Seed for the per-client deterministic RNG.
    pub seed: u64,
    /// Request path each POST targets — `/v1/infer` by default, or a
    /// registry route such as `/v1/models/alpha/infer`.
    pub path: String,
    /// When `Some(cap)`, a `429`/`503` response carrying a `Retry-After`
    /// header makes the client sleep `min(header, cap)` before its next
    /// request — the well-behaved-client model. `None` (the default)
    /// ignores the header and keeps hammering, which is what a
    /// backpressure benchmark wants.
    pub retry_after_cap: Option<Duration>,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            passes: 1,
            deadline_ms: None,
            max_priority: 0,
            seed: 7,
            path: "/v1/infer".into(),
            retry_after_cap: None,
        }
    }
}

/// Outcome of one closed-loop load-generation run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LoadReport {
    /// Client threads that ran.
    pub clients: usize,
    /// Total HTTP requests issued.
    pub requests: u64,
    /// `200` responses.
    pub ok_200: u64,
    /// `429` sheds (streaming backpressure on the wire).
    pub shed_429: u64,
    /// `503` unavailable responses (gateway drain).
    pub unavailable_503: u64,
    /// Any other HTTP status.
    pub other_status: u64,
    /// Requests that failed at the transport layer (connect/read/write).
    pub transport_errors: u64,
    /// `200` responses whose logits did NOT match any supplied expected
    /// tensor (only counted when at least one was supplied; must be 0).
    pub mismatches: u64,
    /// Per-expected-tensor match counts, aligned with the `expected_any`
    /// slice passed to [`run_closed_loop_any`] — the swap tests use this
    /// to assert both the old and the new version were actually observed.
    /// Empty when no expected tensors were supplied.
    pub ok_per_expected: Vec<u64>,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Completed requests (any status) per second of wall clock.
    pub requests_per_sec: f64,
    /// Mean client-observed request latency, microseconds.
    pub latency_mean_us: f64,
    /// Median client-observed request latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile client-observed request latency, microseconds.
    pub latency_p99_us: f64,
}

/// Drives the gateway at `addr` with closed-loop clients: client `c` owns
/// sample rows `c, c + clients, …` of `images` (`[N, …sample_dims]`) and
/// submits each of them `passes` times, always waiting for the previous
/// response before the next request. When `expected` is given (`[N,
/// classes]`), every `200` response's logits are compared bit-for-bit
/// against the matching row.
///
/// Transport errors reconnect once per request and are counted, never
/// panicked on — a load generator must survive a draining server.
pub fn run_closed_loop(
    addr: SocketAddr,
    images: &Tensor,
    expected: Option<&Tensor>,
    config: &LoadGenConfig,
) -> LoadReport {
    let expected_any: Vec<&Tensor> = expected.into_iter().collect();
    run_closed_loop_any(addr, images, &expected_any, config)
}

/// [`run_closed_loop`] generalized to a *set* of acceptable answers: a
/// `200` response counts as a match when its logits are bit-identical to
/// the sample's row in **any** tensor of `expected_any` (each `[N,
/// classes]`), and [`LoadReport::ok_per_expected`] records which. This is
/// the hot-swap correctness probe — during a version swap every response
/// must match exactly the old or the new version's logits, never a blend,
/// so a run with `expected_any = [v1_logits, v2_logits]` must finish with
/// zero mismatches and (for a mid-run swap) nonzero counts on both.
///
/// Transport errors reconnect once per request and are counted, never
/// panicked on.
pub fn run_closed_loop_any(
    addr: SocketAddr,
    images: &Tensor,
    expected_any: &[&Tensor],
    config: &LoadGenConfig,
) -> LoadReport {
    let n = images.dims().first().copied().unwrap_or(0);
    let sample_dims: Vec<usize> = images.dims().get(1..).unwrap_or_default().to_vec();
    let sample_len: usize = sample_dims.iter().product();
    let classes: Vec<usize> = expected_any
        .iter()
        .map(|e| e.dims().get(1).copied().unwrap_or(0))
        .collect();
    let clients = config.clients.clamp(1, n.max(1));
    let started = Instant::now();

    struct ClientTally {
        latencies: LatencyRecorder,
        requests: u64,
        ok_200: u64,
        shed_429: u64,
        unavailable_503: u64,
        other_status: u64,
        transport_errors: u64,
        mismatches: u64,
        ok_per_expected: Vec<u64>,
    }

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let sample_dims = &sample_dims;
                let classes = &classes;
                scope.spawn(move || {
                    let mut rng = XorShift::new(config.seed ^ (c as u64).wrapping_mul(0x9E37));
                    let mut tally = ClientTally {
                        latencies: LatencyRecorder::new(),
                        requests: 0,
                        ok_200: 0,
                        shed_429: 0,
                        unavailable_503: 0,
                        other_status: 0,
                        transport_errors: 0,
                        mismatches: 0,
                        ok_per_expected: vec![0; expected_any.len()],
                    };
                    let mut client = HttpClient::connect(addr).ok();
                    for _ in 0..config.passes {
                        for i in (c..n).step_by(clients) {
                            let mut wire = InferRequest::new(
                                sample_dims.clone(),
                                images.as_slice()[i * sample_len..(i + 1) * sample_len].to_vec(),
                            );
                            if let Some((lo, hi)) = config.deadline_ms {
                                if rng.next_f64() >= 0.25 {
                                    wire.deadline_ms = Some(lo + (hi - lo) * rng.next_f64());
                                }
                            }
                            if config.max_priority > 0 {
                                wire.priority =
                                    (rng.next_u64() % (u64::from(config.max_priority) + 1)) as u8;
                            }
                            let body = match serde_json::to_string(&wire) {
                                Ok(body) => body,
                                Err(_) => {
                                    tally.transport_errors += 1;
                                    continue;
                                }
                            };
                            let t0 = Instant::now();
                            // At most two attempts per request: the kept
                            // connection, then one fresh reconnect. A
                            // wedged server must surface as a counted
                            // transport error, never an infinite retry.
                            let mut response = None;
                            for _attempt in 0..2 {
                                if client.is_none() {
                                    client = HttpClient::connect(addr).ok();
                                }
                                let Some(c) = client.as_mut() else { break };
                                match c.post_json(&config.path, &body) {
                                    Ok(r) => {
                                        response = Some(r);
                                        break;
                                    }
                                    Err(_) => client = None,
                                }
                            }
                            tally.requests += 1;
                            let Some(response) = response else {
                                tally.transport_errors += 1;
                                continue;
                            };
                            tally.latencies.record(t0.elapsed());
                            if !response.keep_alive {
                                client = None;
                            }
                            match response.status {
                                200 => {
                                    tally.ok_200 += 1;
                                    if !expected_any.is_empty() {
                                        let parsed: Result<InferResponse, _> =
                                            std::str::from_utf8(&response.body)
                                                .map_err(|_| ())
                                                .and_then(|t| {
                                                    serde_json::from_str(t).map_err(|_| ())
                                                });
                                        let matched = parsed.ok().and_then(|r| {
                                            expected_any.iter().zip(classes).position(
                                                |(expected, &k)| {
                                                    r.logits
                                                        == expected.as_slice()[i * k..(i + 1) * k]
                                                },
                                            )
                                        });
                                        match matched {
                                            Some(j) => tally.ok_per_expected[j] += 1,
                                            None => tally.mismatches += 1,
                                        }
                                    }
                                }
                                429 => tally.shed_429 += 1,
                                503 => tally.unavailable_503 += 1,
                                _ => tally.other_status += 1,
                            }
                            if let (Some(cap), Some(secs), 429 | 503) = (
                                config.retry_after_cap,
                                response.retry_after,
                                response.status,
                            ) {
                                std::thread::sleep(Duration::from_secs(secs).min(cap));
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| ClientTally {
                    latencies: LatencyRecorder::new(),
                    requests: 0,
                    ok_200: 0,
                    shed_429: 0,
                    unavailable_503: 0,
                    other_status: 0,
                    transport_errors: 0,
                    mismatches: 0,
                    ok_per_expected: vec![0; expected_any.len()],
                })
            })
            .collect()
    });

    let wall = started.elapsed();
    let mut latencies = LatencyRecorder::new();
    let mut report = LoadReport {
        clients,
        requests: 0,
        ok_200: 0,
        shed_429: 0,
        unavailable_503: 0,
        other_status: 0,
        transport_errors: 0,
        mismatches: 0,
        ok_per_expected: vec![0; expected_any.len()],
        wall_ms: wall.as_secs_f64() * 1e3,
        requests_per_sec: 0.0,
        latency_mean_us: 0.0,
        latency_p50_us: 0.0,
        latency_p99_us: 0.0,
    };
    for tally in tallies {
        report.requests += tally.requests;
        report.ok_200 += tally.ok_200;
        report.shed_429 += tally.shed_429;
        report.unavailable_503 += tally.unavailable_503;
        report.other_status += tally.other_status;
        report.transport_errors += tally.transport_errors;
        report.mismatches += tally.mismatches;
        for (slot, count) in report
            .ok_per_expected
            .iter_mut()
            .zip(&tally.ok_per_expected)
        {
            *slot += count;
        }
        latencies.merge(&tally.latencies);
    }
    if wall.as_secs_f64() > 0.0 {
        report.requests_per_sec = report.requests as f64 / wall.as_secs_f64();
    }
    report.latency_mean_us = latencies.mean_us();
    report.latency_p50_us = latencies.quantile_us(0.50);
    report.latency_p99_us = latencies.quantile_us(0.99);
    report
}
