//! The `GET /v1/stats` body: one JSON document with everything the
//! dashboard (or an operator's `curl | jq`) needs — windowed per-model
//! and per-route series, SLO burn rates, energy attribution, degradation
//! counters, and the cumulative recorders for cross-checking.
//!
//! # Schema (stable, `schema_version: 1`)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "now_s": 63,                  // hub clock, seconds since gateway start
//!   "uptime_s": 63.4,
//!   "windows_s": [10, 60, 300],   // every windowed figure uses these
//!   "slo": {"miss_objective": 0.01, "shed_objective": 0.05,
//!           "fast_window_s": 60, "slow_window_s": 300},
//!   "routes": [                   // per-route HTTP view, ascending by route
//!     {"route": "infer", "requests_total": 810.0,
//!      "req_per_s": {"10s": 81.0, "60s": 13.5, "300s": 2.7},
//!      "p50_us": 1800.0, "p95_us": 3900.0, "p99_us": 4200.0}],
//!   "models": [                   // one entry per labeled model series
//!     {"model": "default", "version": "", "backend": "csr",
//!      "requests_total": 810.0,
//!      "req_per_s": {"10s": 81.0, "60s": 13.5, "300s": 2.7},
//!      "e2e_us": {"10s": {"count": 810, "p50": 1800.0, "p95": 3900.0,
//!                          "p99": 4200.0}, "60s": {...}, "300s": {...}},
//!      "energy_uj_per_inference": 431.2,   // fast-window mean
//!      "energy_uj_per_s": 5821.0,          // fast-window rate
//!      "deadline_miss_ratio": {"fast": 0.0, "slow": 0.0},
//!      "shed_ratio": {"fast": 0.0, "slow": 0.0},
//!      "burn": {"miss_fast": 0.0, "miss_slow": 0.0,
//!               "shed_fast": 0.0, "shed_slow": 0.0},
//!      "slo_state": "ok"}],      // "ok" | "warn" | "burning"
//!   "degradation": {             // the ladder, mildest to harshest
//!     "deadline_misses": 0, "wait_timeouts": 0, "brownout_sheds": 0,
//!     "queue_sheds": 0, "batch_retries": 0, "quarantined": 0,
//!     "gateway_shed_429": 0, "gateway_drained_503": 0,
//!     "gateway_timeout_504": 0},
//!   "cumulative": {              // whole-process recorders, for agreement
//!     "requests": 810, "images_per_sec": 804.2,
//!     "e2e_p50_us": 1800.0, "e2e_p99_us": 4200.0,
//!     "queue_wait_share": 0.42, "mean_batch_occupancy": 3.8},
//!   "registry": {...} | null,    // snn_runtime::RegistryMetrics verbatim
//!   "trace": {"ring_spans": 512, "ring_capacity": 4096,
//!             "spans_recorded": 9000, "spans_dropped": 0} | null,
//!   "log": {"events": {"debug": 0, "info": 810, "warn": 2, "error": 1},
//!           "dropped": 0, "ring_events": 813, "ring_capacity": 2048,
//!           "sink_suppressed": 0} | null,
//!   "incidents": 1,              // post-mortem reports written to disk
//!   "build": {"pkg_version": "0.1.0", "profile": "release"}
//! }
//! ```
//!
//! Quantiles are served from the telemetry crate's log-linear bins, which
//! report a bin's **upper** edge: a windowed quantile may exceed the exact
//! sample quantile by up to 25% + 1 µs, never undershoot it. Ratios whose
//! window saw no traffic are `0.0` (healthy-by-vacuity, never `NaN`).
//! `models` includes at most [`snn_telemetry::MAX_SERIES_PER_FAMILY`]
//! entries; past the cardinality cap new label sets collapse into one
//! `overflow=true` series, which appears here with `"model": "overflow"`.

use serde::{Content, Serialize};
use snn_runtime::{RegistryMetrics, StreamingMetrics};
use snn_telemetry::{families, slo, CounterSnapshot, HubSnapshot, TelemetryHub, WINDOWS_S};

use crate::metrics::{GatewayMetrics, LogStats, TraceStats};

/// Sum a counter snapshot's `window_s` window (0 when absent).
fn wsum(counter: Option<&CounterSnapshot>, window_s: u64) -> f64 {
    counter
        .and_then(|c| c.windows.iter().find(|w| w.window_s == window_s))
        .map(|w| w.sum)
        .unwrap_or(0.0)
}

/// `{"10s": rate, "60s": rate, "300s": rate}` for one counter.
fn rate_map(counter: Option<&CounterSnapshot>) -> Content {
    Content::Map(
        WINDOWS_S
            .iter()
            .map(|&w| {
                let rate = counter
                    .and_then(|c| c.windows.iter().find(|x| x.window_s == w))
                    .map(|x| x.rate_per_s)
                    .unwrap_or(0.0);
                (format!("{w}s"), Content::F64(rate))
            })
            .collect(),
    )
}

/// Sum of one family's windowed values across every series carrying
/// `model=<model>` — sheds are recorded per priority, so one model owns
/// several series in the shed families.
fn model_family_sum(snap: &HubSnapshot, family: &str, model: &str, window_s: u64) -> f64 {
    snap.counters
        .iter()
        .filter(|f| f.name == family)
        .flat_map(|f| &f.series)
        .filter(|s| s.labels.get("model") == Some(model))
        .map(|s| wsum(Some(&s.value), window_s))
        .sum()
}

/// `"ok"` < `"warn"` < `"burning"`.
fn severity(state: &str) -> u8 {
    match state {
        "ok" => 0,
        "warn" => 1,
        _ => 2,
    }
}

/// Renders the full `/v1/stats` JSON body from a live hub snapshot plus
/// the cumulative recorders. See the module docs for the schema.
pub fn render_stats(
    hub: &TelemetryHub,
    streaming: &StreamingMetrics,
    gateway: &GatewayMetrics,
    registry: Option<&RegistryMetrics>,
    trace: Option<&TraceStats>,
    log: Option<&LogStats>,
    uptime_s: f64,
) -> Vec<u8> {
    let now_s = hub.now_s();
    let snap = hub.snapshot(now_s);

    let routes: Vec<Content> = snap
        .counters
        .iter()
        .filter(|f| f.name == families::HTTP_REQUESTS)
        .flat_map(|f| &f.series)
        .map(|series| {
            let route = series.labels.get("route").unwrap_or("unknown");
            let hist = snap.histogram(families::HTTP_E2E_US, &series.labels);
            let fast =
                hist.and_then(|h| h.windows.iter().find(|w| w.window_s == slo::FAST_WINDOW_S));
            Content::Map(vec![
                ("route".to_string(), Content::Str(route.to_string())),
                (
                    "requests_total".to_string(),
                    Content::F64(series.value.total),
                ),
                ("req_per_s".to_string(), rate_map(Some(&series.value))),
                (
                    "p50_us".to_string(),
                    Content::F64(fast.map(|w| w.p50_us).unwrap_or(0.0)),
                ),
                (
                    "p95_us".to_string(),
                    Content::F64(fast.map(|w| w.p95_us).unwrap_or(0.0)),
                ),
                (
                    "p99_us".to_string(),
                    Content::F64(fast.map(|w| w.p99_us).unwrap_or(0.0)),
                ),
            ])
        })
        .collect();

    let models: Vec<Content> = snap
        .counters
        .iter()
        .filter(|f| f.name == families::REQUESTS)
        .flat_map(|f| &f.series)
        .map(|series| {
            let labels = &series.labels;
            let model = labels
                .get("model")
                .or_else(|| labels.get("overflow").map(|_| "overflow"))
                .unwrap_or("unknown");
            let requests = &series.value;
            let misses = snap.counter(families::DEADLINE_MISSES, labels);
            let energy = snap.counter(families::ENERGY_UJ, labels);
            let e2e = snap.histogram(families::E2E_US, labels);

            let e2e_windows = Content::Map(
                WINDOWS_S
                    .iter()
                    .map(|&w| {
                        let q = e2e.and_then(|h| h.windows.iter().find(|x| x.window_s == w));
                        (
                            format!("{w}s"),
                            Content::Map(vec![
                                (
                                    "count".to_string(),
                                    Content::U64(q.map(|x| x.count).unwrap_or(0)),
                                ),
                                (
                                    "p50".to_string(),
                                    Content::F64(q.map(|x| x.p50_us).unwrap_or(0.0)),
                                ),
                                (
                                    "p95".to_string(),
                                    Content::F64(q.map(|x| x.p95_us).unwrap_or(0.0)),
                                ),
                                (
                                    "p99".to_string(),
                                    Content::F64(q.map(|x| x.p99_us).unwrap_or(0.0)),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            );

            let req_fast = wsum(Some(requests), slo::FAST_WINDOW_S);
            let req_slow = wsum(Some(requests), slo::SLOW_WINDOW_S);
            let miss_fast = slo::ratio(wsum(misses, slo::FAST_WINDOW_S), req_fast);
            let miss_slow = slo::ratio(wsum(misses, slo::SLOW_WINDOW_S), req_slow);
            let sheds_fast = model_family_sum(&snap, families::SHEDS, model, slo::FAST_WINDOW_S)
                + model_family_sum(&snap, families::BROWNOUT_SHEDS, model, slo::FAST_WINDOW_S);
            let sheds_slow = model_family_sum(&snap, families::SHEDS, model, slo::SLOW_WINDOW_S)
                + model_family_sum(&snap, families::BROWNOUT_SHEDS, model, slo::SLOW_WINDOW_S);
            // Sheds never become requests, so the offered load is the sum.
            let shed_fast = slo::ratio(sheds_fast, req_fast + sheds_fast);
            let shed_slow = slo::ratio(sheds_slow, req_slow + sheds_slow);
            let burn_miss_fast = slo::burn_rate(miss_fast, slo::MISS_OBJECTIVE);
            let burn_miss_slow = slo::burn_rate(miss_slow, slo::MISS_OBJECTIVE);
            let burn_shed_fast = slo::burn_rate(shed_fast, slo::SHED_OBJECTIVE);
            let burn_shed_slow = slo::burn_rate(shed_slow, slo::SHED_OBJECTIVE);
            let miss_state = slo::state(burn_miss_fast, burn_miss_slow);
            let shed_state = slo::state(burn_shed_fast, burn_shed_slow);
            let slo_state = if severity(shed_state) > severity(miss_state) {
                shed_state
            } else {
                miss_state
            };
            let energy_fast = wsum(energy, slo::FAST_WINDOW_S);
            let energy_per_inference = if req_fast > 0.0 {
                energy_fast / req_fast
            } else {
                0.0
            };
            let energy_rate = energy_fast / slo::FAST_WINDOW_S as f64;

            Content::Map(vec![
                ("model".to_string(), Content::Str(model.to_string())),
                (
                    "version".to_string(),
                    Content::Str(labels.get("version").unwrap_or("").to_string()),
                ),
                (
                    "backend".to_string(),
                    Content::Str(labels.get("backend").unwrap_or("").to_string()),
                ),
                ("requests_total".to_string(), Content::F64(requests.total)),
                ("req_per_s".to_string(), rate_map(Some(requests))),
                ("e2e_us".to_string(), e2e_windows),
                (
                    "energy_uj_per_inference".to_string(),
                    Content::F64(energy_per_inference),
                ),
                ("energy_uj_per_s".to_string(), Content::F64(energy_rate)),
                (
                    "deadline_miss_ratio".to_string(),
                    Content::Map(vec![
                        ("fast".to_string(), Content::F64(miss_fast)),
                        ("slow".to_string(), Content::F64(miss_slow)),
                    ]),
                ),
                (
                    "shed_ratio".to_string(),
                    Content::Map(vec![
                        ("fast".to_string(), Content::F64(shed_fast)),
                        ("slow".to_string(), Content::F64(shed_slow)),
                    ]),
                ),
                (
                    "burn".to_string(),
                    Content::Map(vec![
                        ("miss_fast".to_string(), Content::F64(burn_miss_fast)),
                        ("miss_slow".to_string(), Content::F64(burn_miss_slow)),
                        ("shed_fast".to_string(), Content::F64(burn_shed_fast)),
                        ("shed_slow".to_string(), Content::F64(burn_shed_slow)),
                    ]),
                ),
                ("slo_state".to_string(), Content::Str(slo_state.to_string())),
            ])
        })
        .collect();

    let degradation = Content::Map(vec![
        (
            "deadline_misses".to_string(),
            Content::U64(streaming.deadline_misses),
        ),
        (
            "wait_timeouts".to_string(),
            Content::U64(streaming.wait_timeouts),
        ),
        (
            "brownout_sheds".to_string(),
            Content::U64(streaming.brownout_shed_requests),
        ),
        (
            "queue_sheds".to_string(),
            Content::U64(streaming.shed_requests),
        ),
        (
            "batch_retries".to_string(),
            Content::U64(streaming.batch_retries),
        ),
        (
            "quarantined".to_string(),
            Content::U64(streaming.quarantined),
        ),
        (
            "gateway_shed_429".to_string(),
            Content::U64(gateway.shed_429),
        ),
        (
            "gateway_drained_503".to_string(),
            Content::U64(gateway.drained_503),
        ),
        (
            "gateway_timeout_504".to_string(),
            Content::U64(gateway.timeout_504),
        ),
    ]);

    let cumulative = Content::Map(vec![
        ("requests".to_string(), Content::U64(streaming.requests)),
        (
            "images_per_sec".to_string(),
            Content::F64(streaming.images_per_sec),
        ),
        ("e2e_p50_us".to_string(), Content::F64(streaming.e2e_p50_us)),
        ("e2e_p99_us".to_string(), Content::F64(streaming.e2e_p99_us)),
        (
            "queue_wait_share".to_string(),
            Content::F64(streaming.queue_wait_share),
        ),
        (
            "mean_batch_occupancy".to_string(),
            Content::F64(streaming.mean_batch_occupancy),
        ),
    ]);

    let trace = trace
        .map(|t| {
            Content::Map(vec![
                ("ring_spans".to_string(), Content::U64(t.ring_spans as u64)),
                (
                    "ring_capacity".to_string(),
                    Content::U64(t.ring_capacity as u64),
                ),
                ("spans_recorded".to_string(), Content::U64(t.spans_recorded)),
                ("spans_dropped".to_string(), Content::U64(t.spans_dropped)),
            ])
        })
        .unwrap_or(Content::Null);

    let log_section = log
        .map(|l| {
            Content::Map(vec![
                (
                    "events".to_string(),
                    Content::Map(
                        ["debug", "info", "warn", "error"]
                            .iter()
                            .zip(l.events.iter())
                            .map(|(name, &n)| (name.to_string(), Content::U64(n)))
                            .collect(),
                    ),
                ),
                ("dropped".to_string(), Content::U64(l.dropped)),
                ("ring_events".to_string(), Content::U64(l.ring_len as u64)),
                (
                    "ring_capacity".to_string(),
                    Content::U64(l.ring_capacity as u64),
                ),
                ("sink_suppressed".to_string(), Content::U64(l.suppressed)),
            ])
        })
        .unwrap_or(Content::Null);

    let build = Content::Map(vec![
        (
            "pkg_version".to_string(),
            Content::Str(env!("CARGO_PKG_VERSION").to_string()),
        ),
        (
            "profile".to_string(),
            Content::Str(
                if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }
                .to_string(),
            ),
        ),
    ]);

    let body = Content::Map(vec![
        ("schema_version".to_string(), Content::U64(1)),
        ("now_s".to_string(), Content::U64(now_s)),
        ("uptime_s".to_string(), Content::F64(uptime_s)),
        (
            "windows_s".to_string(),
            Content::Seq(WINDOWS_S.iter().map(|&w| Content::U64(w)).collect()),
        ),
        (
            "slo".to_string(),
            Content::Map(vec![
                (
                    "miss_objective".to_string(),
                    Content::F64(slo::MISS_OBJECTIVE),
                ),
                (
                    "shed_objective".to_string(),
                    Content::F64(slo::SHED_OBJECTIVE),
                ),
                (
                    "fast_window_s".to_string(),
                    Content::U64(slo::FAST_WINDOW_S),
                ),
                (
                    "slow_window_s".to_string(),
                    Content::U64(slo::SLOW_WINDOW_S),
                ),
            ]),
        ),
        ("routes".to_string(), Content::Seq(routes)),
        ("models".to_string(), Content::Seq(models)),
        ("degradation".to_string(), degradation),
        ("cumulative".to_string(), cumulative),
        (
            "registry".to_string(),
            registry.map(|r| r.to_content()).unwrap_or(Content::Null),
        ),
        ("trace".to_string(), trace),
        ("log".to_string(), log_section),
        (
            "incidents".to_string(),
            Content::U64(log.map_or(0, |l| l.incidents_written)),
        ),
        ("build".to_string(), build),
    ]);
    serde_json::to_string(&body)
        .unwrap_or_else(|_| "{\"error\":\"internal error\"}".to_string())
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::field;
    use snn_runtime::StreamingRecorder;
    use snn_telemetry::Labels;

    #[test]
    fn stats_body_parses_and_carries_every_top_level_key() {
        let hub = TelemetryHub::new();
        let labels = Labels::new().with("model", "m").with("backend", "csr");
        let now = hub.now_s();
        hub.counter(families::REQUESTS, &labels).add(now, 5.0);
        hub.histogram(families::E2E_US, &labels)
            .record_us(now, 1500);
        hub.counter(families::ENERGY_UJ, &labels).add(now, 2000.0);
        let route = Labels::new().with("route", "infer");
        hub.counter(families::HTTP_REQUESTS, &route).add(now, 5.0);
        hub.histogram(families::HTTP_E2E_US, &route)
            .record_us(now, 1700);

        let streaming = StreamingRecorder::new().summarize();
        let gateway = crate::metrics::GatewayRecorder::new().summarize();
        let body = render_stats(&hub, &streaming, &gateway, None, None, None, 12.5);
        let text = String::from_utf8(body).unwrap();
        let parsed: Content = serde_json::from_str(&text).unwrap();
        let map = parsed.as_map().unwrap();
        assert_eq!(field(map, "schema_version").unwrap().as_u64(), Some(1));
        for key in [
            "now_s",
            "uptime_s",
            "windows_s",
            "slo",
            "routes",
            "models",
            "degradation",
            "cumulative",
            "registry",
            "trace",
            "log",
            "incidents",
            "build",
        ] {
            assert!(
                map.iter().any(|(k, _)| k == key),
                "missing top-level key {key:?} in {text}"
            );
        }
        let models = field(map, "models").unwrap().as_seq().unwrap();
        assert_eq!(models.len(), 1);
        let model = models[0].as_map().unwrap();
        assert_eq!(field(model, "model").unwrap().as_str(), Some("m"));
        assert_eq!(field(model, "slo_state").unwrap().as_str(), Some("ok"));
        // 2000 µJ over 5 inferences in the fast window.
        let per_inf = field(model, "energy_uj_per_inference")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((per_inf - 400.0).abs() < 1e-9, "got {per_inf}");
        let routes = field(map, "routes").unwrap().as_seq().unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(
            field(routes[0].as_map().unwrap(), "route")
                .unwrap()
                .as_str(),
            Some("infer")
        );
    }

    #[test]
    fn burning_model_reports_burning_state() {
        let hub = TelemetryHub::new();
        let labels = Labels::new().with("model", "hot");
        let now = hub.now_s();
        // 10% deadline misses over both SLO windows: 10× the 1% objective.
        hub.counter(families::REQUESTS, &labels).add(now, 100.0);
        hub.counter(families::DEADLINE_MISSES, &labels)
            .add(now, 10.0);
        let streaming = StreamingRecorder::new().summarize();
        let gateway = crate::metrics::GatewayRecorder::new().summarize();
        let body = render_stats(&hub, &streaming, &gateway, None, None, None, 1.0);
        let parsed: Content = serde_json::from_str(&String::from_utf8(body).unwrap()).unwrap();
        let models = field(parsed.as_map().unwrap(), "models")
            .unwrap()
            .as_seq()
            .unwrap();
        let model = models[0].as_map().unwrap();
        assert_eq!(field(model, "slo_state").unwrap().as_str(), Some("burning"));
    }
}
