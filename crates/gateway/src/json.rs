//! The inference wire format: JSON bodies for `POST /v1/infer`.
//!
//! Request — sample dims plus flat f32 pixels, with optional scheduling
//! fields carried straight into the runtime's
//! [`snn_runtime::SubmitOptions`]:
//!
//! ```json
//! {"dims": [3, 32, 32], "pixels": [0.1, 0.2, ...],
//!  "deadline_ms": 5.0, "priority": 2}
//! ```
//!
//! Response — logits, top-1 class, and the timing split the streaming
//! server measured for this request:
//!
//! ```json
//! {"logits": [...], "top1": 3, "batch_size": 4,
//!  "queue_wait_us": 812.0, "exec_us": 1554.0, "e2e_us": 2410.0}
//! ```
//!
//! The codec rides the vendored `serde_json` shim, whose float printing is
//! shortest-round-trip: an `f32 → text → f32` trip is bit-exact, which is
//! what lets the end-to-end tests demand logits *identical* to the
//! in-process engines through the HTTP boundary.
//!
//! [`InferRequest`] implements [`Deserialize`] by hand because
//! `deadline_ms` and `priority` are optional (the derive shim requires
//! every field); everything else derives.

use serde::{field, Content, Deserialize, Error as SerdeError, Serialize};
use snn_runtime::{ModelStatus, SubmitOptions};
use snn_trace::{AttrValue, SpanSnapshot, TraceId};
use std::time::Duration;

/// One inference request as it appears on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Per-sample dims, e.g. `[3, 32, 32]`; must match the gateway's
    /// configured input geometry exactly.
    pub dims: Vec<usize>,
    /// Flat row-major pixels; length must equal the product of `dims`.
    pub pixels: Vec<f32>,
    /// Optional batching deadline in milliseconds (fractional allowed).
    /// Omitted → the streaming server's configured `max_delay`.
    pub deadline_ms: Option<f64>,
    /// Optional EDF tie-break priority (0–255, default 0; higher sorts
    /// earlier in the formed batch on equal deadlines).
    pub priority: u8,
}

impl InferRequest {
    /// A request with default scheduling (no explicit deadline, priority 0).
    pub fn new(dims: Vec<usize>, pixels: Vec<f32>) -> Self {
        Self {
            dims,
            pixels,
            deadline_ms: None,
            priority: 0,
        }
    }

    /// Converts the wire scheduling fields into runtime [`SubmitOptions`].
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a `400` body when `deadline_ms` is
    /// negative or not a finite, representable duration.
    pub fn submit_options(&self) -> Result<SubmitOptions, String> {
        let deadline = match self.deadline_ms {
            None => None,
            Some(ms) => Some(
                Duration::try_from_secs_f64(ms / 1e3)
                    .map_err(|_| format!("deadline_ms {ms} is not a valid duration"))?,
            ),
        };
        Ok(SubmitOptions {
            deadline,
            priority: self.priority,
            trace: None,
        })
    }

    /// Validates the sample geometry against the gateway's configured
    /// dims.
    ///
    /// # Errors
    ///
    /// Returns a message suitable for a `400` body when `dims` differs
    /// from `expected` or `pixels` does not fill the geometry.
    pub fn validate(&self, expected: &[usize]) -> Result<(), String> {
        if self.dims != expected {
            return Err(format!(
                "dims {:?} do not match the served model's input dims {:?}",
                self.dims, expected
            ));
        }
        let len: usize = self.dims.iter().product();
        if self.pixels.len() != len {
            return Err(format!(
                "pixels has {} values but dims {:?} require {}",
                self.pixels.len(),
                self.dims,
                len
            ));
        }
        Ok(())
    }
}

impl Serialize for InferRequest {
    fn to_content(&self) -> Content {
        let mut map = vec![
            ("dims".to_string(), self.dims.to_content()),
            ("pixels".to_string(), self.pixels.to_content()),
        ];
        if let Some(ms) = self.deadline_ms {
            map.push(("deadline_ms".to_string(), Content::F64(ms)));
        }
        if self.priority != 0 {
            map.push(("priority".to_string(), Content::U64(self.priority.into())));
        }
        Content::Map(map)
    }
}

impl Deserialize for InferRequest {
    fn from_content(content: &Content) -> Result<Self, SerdeError> {
        let map = content
            .as_map()
            .ok_or_else(|| SerdeError::msg("infer request must be a JSON object"))?;
        let dims = Vec::<usize>::from_content(field(map, "dims")?)?;
        let pixels = Vec::<f32>::from_content(field(map, "pixels")?)?;
        let deadline_ms = match map.iter().find(|(k, _)| k == "deadline_ms") {
            None => None,
            Some((_, Content::Null)) => None,
            Some((_, v)) => Some(
                v.as_f64()
                    .ok_or_else(|| SerdeError::msg("deadline_ms must be a number"))?,
            ),
        };
        let priority = match map.iter().find(|(k, _)| k == "priority") {
            None => 0,
            Some((_, Content::Null)) => 0,
            Some((_, v)) => {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| SerdeError::msg("priority must be an integer in 0..=255"))?;
                u8::try_from(raw)
                    .map_err(|_| SerdeError::msg("priority must be an integer in 0..=255"))?
            }
        };
        Ok(Self {
            dims,
            pixels,
            deadline_ms,
            priority,
        })
    }
}

/// One successful inference response as it appears on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferResponse {
    /// Decoded logits for this sample, `[classes]`.
    pub logits: Vec<f32>,
    /// Index of the largest logit.
    pub top1: usize,
    /// Images in the formed batch this request rode in.
    pub batch_size: usize,
    /// Time from submission until a worker began executing the batch, µs.
    pub queue_wait_us: f64,
    /// Backend execution time of the formed batch, µs.
    pub exec_us: f64,
    /// Submit-to-result latency as measured inside the gateway, µs.
    pub e2e_us: f64,
    /// Modeled per-image energy of the formed batch this request rode in,
    /// µJ on the paper's proposed processor configuration. `0.0` when the
    /// serving stack has no energy pricer attached (telemetry disabled).
    pub energy_uj: f64,
    /// The request's trace id (16 hex digits); empty when the gateway
    /// serves an untraced [`snn_runtime::StreamingServer`]. Feed it to
    /// `GET /v1/trace/<id>` to retrieve the recorded span tree.
    pub trace_id: String,
}

/// Renders one recorded span tree as the `GET /v1/trace/<id>` response
/// body:
///
/// ```json
/// {"trace_id": "000000800000002a", "spans": [
///   {"span_id": 3, "parent_id": 0, "name": "http.request",
///    "start_us": 12, "dur_us": 840, "track": 2,
///    "attrs": {"status": 200}}, ...]}
/// ```
///
/// Spans arrive sorted by start time; attribute values keep their native
/// JSON types (strings stay strings, counters stay integers).
pub fn render_trace(trace: TraceId, spans: &[SpanSnapshot]) -> Vec<u8> {
    let spans = spans
        .iter()
        .map(|span| {
            let attrs = span
                .attrs
                .iter()
                .map(|(key, value)| {
                    let value = match *value {
                        AttrValue::Str(s) => Content::Str(s.to_string()),
                        AttrValue::U64(n) => Content::U64(n),
                        AttrValue::F64(x) => Content::F64(x),
                    };
                    ((*key).to_string(), value)
                })
                .collect();
            Content::Map(vec![
                ("span_id".to_string(), Content::U64(span.span_id)),
                ("parent_id".to_string(), Content::U64(span.parent_id)),
                ("name".to_string(), Content::Str(span.name.to_string())),
                ("start_us".to_string(), Content::U64(span.start_us)),
                ("dur_us".to_string(), Content::U64(span.dur_us)),
                ("track".to_string(), Content::U64(span.track.into())),
                ("attrs".to_string(), Content::Map(attrs)),
            ])
        })
        .collect();
    let body = Content::Map(vec![
        ("trace_id".to_string(), Content::Str(trace.to_string())),
        ("spans".to_string(), Content::Seq(spans)),
    ]);
    serde_json::to_string(&body)
        .unwrap_or_else(|_| "{\"error\":\"internal error\"}".to_string())
        .into_bytes()
}

/// The `POST /v1/models/<name>/swap` request body: which version the
/// name's active pointer should move to.
///
/// ```json
/// {"version": "2"}
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwapRequest {
    /// Target version label (the artifact `name@version` must exist).
    pub version: String,
}

/// The `GET /v1/models` response body: one
/// [`ModelStatus`] row per cataloged artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ModelListBody {
    /// Cataloged models with residency state, sorted by `name@version`.
    pub models: Vec<ModelStatus>,
}

/// The JSON error body every non-2xx response carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Human-readable reason, safe to echo to clients.
    pub error: String,
}

impl ErrorBody {
    /// Serializes an error message to its JSON wire form.
    pub fn render(message: impl Into<String>) -> Vec<u8> {
        let body = ErrorBody {
            error: message.into(),
        };
        serde_json::to_string(&body)
            .unwrap_or_else(|_| "{\"error\":\"internal error\"}".to_string())
            .into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip_with_options() {
        let req = InferRequest {
            dims: vec![1, 2, 2],
            pixels: vec![0.25, 0.5, 0.75, 1.0],
            deadline_ms: Some(2.5),
            priority: 7,
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: InferRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(req, back);
    }

    #[test]
    fn request_optional_fields_default() {
        let back: InferRequest =
            serde_json::from_str(r#"{"dims":[1,1,2],"pixels":[0.1,0.9]}"#).unwrap();
        assert_eq!(back.deadline_ms, None);
        assert_eq!(back.priority, 0);
        let opts = back.submit_options().unwrap();
        assert_eq!(opts, SubmitOptions::default());
    }

    #[test]
    fn request_rejects_bad_shapes() {
        assert!(serde_json::from_str::<InferRequest>("[1,2]").is_err());
        assert!(serde_json::from_str::<InferRequest>(r#"{"dims":[1]}"#).is_err());
        assert!(serde_json::from_str::<InferRequest>(
            r#"{"dims":[1],"pixels":[0.5],"priority":999}"#
        )
        .is_err());
        assert!(serde_json::from_str::<InferRequest>(
            r#"{"dims":[1],"pixels":[0.5],"deadline_ms":"soon"}"#
        )
        .is_err());
    }

    #[test]
    fn validate_checks_geometry() {
        let req = InferRequest::new(vec![1, 2, 2], vec![0.0; 4]);
        assert!(req.validate(&[1, 2, 2]).is_ok());
        assert!(req.validate(&[3, 2, 2]).unwrap_err().contains("dims"));
        let short = InferRequest::new(vec![1, 2, 2], vec![0.0; 3]);
        assert!(short.validate(&[1, 2, 2]).unwrap_err().contains("pixels"));
    }

    #[test]
    fn submit_options_rejects_negative_deadline() {
        let mut req = InferRequest::new(vec![1], vec![0.5]);
        req.deadline_ms = Some(-1.0);
        assert!(req.submit_options().is_err());
        req.deadline_ms = Some(3.5);
        let opts = req.submit_options().unwrap();
        assert_eq!(opts.deadline, Some(Duration::from_micros(3500)));
    }

    #[test]
    fn pixel_floats_roundtrip_bit_exact() {
        // The equivalence guarantee across the HTTP boundary hangs on
        // this: shortest-round-trip printing makes f32 → text → f32 exact.
        let vals: Vec<f32> = vec![0.1, 1.0 / 3.0, -0.687_194_9, 2.337_512e-6, 0.999_999_94];
        let req = InferRequest::new(vec![5], vals.clone());
        let json = serde_json::to_string(&req).unwrap();
        let back: InferRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pixels.len(), vals.len());
        for (a, b) in back.pixels.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = InferResponse {
            logits: vec![0.1, -0.9],
            top1: 0,
            batch_size: 3,
            queue_wait_us: 12.5,
            exec_us: 99.0,
            e2e_us: 120.0,
            energy_uj: 431.25,
            trace_id: "00000080000002ab".to_string(),
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: InferResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn render_trace_keeps_native_attr_types() {
        let trace = TraceId::from_raw(0xab).unwrap();
        let spans = vec![SpanSnapshot {
            trace,
            span_id: 2,
            parent_id: 1,
            name: "batch.flush",
            start_us: 10,
            dur_us: 0,
            track: 3,
            attrs: vec![
                ("reason", AttrValue::Str("max_batch")),
                ("batch_size", AttrValue::U64(4)),
            ],
        }];
        let body = String::from_utf8(render_trace(trace, &spans)).unwrap();
        let parsed: Content = serde_json::from_str(&body).unwrap();
        let map = parsed.as_map().unwrap();
        assert_eq!(
            field(map, "trace_id").unwrap().as_str(),
            Some("00000000000000ab")
        );
        let spans_json = field(map, "spans").unwrap().as_seq().unwrap();
        let span = spans_json[0].as_map().unwrap();
        assert_eq!(field(span, "name").unwrap().as_str(), Some("batch.flush"));
        assert_eq!(field(span, "parent_id").unwrap().as_u64(), Some(1));
        let attrs = field(span, "attrs").unwrap().as_map().unwrap();
        assert_eq!(field(attrs, "reason").unwrap().as_str(), Some("max_batch"));
        assert_eq!(field(attrs, "batch_size").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn error_body_renders_json() {
        let body = String::from_utf8(ErrorBody::render("queue full")).unwrap();
        assert_eq!(body, r#"{"error":"queue full"}"#);
    }
}
