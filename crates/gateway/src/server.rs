//! The gateway proper: a `std::net::TcpListener` acceptor plus a
//! connection worker pool, fronting a [`StreamingServer`].
//!
//! ```text
//! accept loop ──► WorkerPool (connection jobs)
//!                    │  read → parse_request (incremental, pipelining)
//!                    │  POST /v1/infer: JSON → Tensor → submit_with
//!                    │       SubmitOptions { deadline_ms, priority,
//!                    │                       trace (when collecting) }
//!                    │       Ticket::wait_timeout → 200 / 504
//!                    │       SubmitError::QueueFull → 429
//!                    │       SubmitError::Brownout → 429 (load shed)
//!                    │       breaker open → 503 + Retry-After
//!                    │       drain → 503
//!                    │       (every 429/503 carries Retry-After)
//!                    │  GET /metrics: Prometheus text (+ histograms)
//!                    │  GET /v1/trace/<id>: span tree of a traced request
//!                    ▼
//!           StreamingServer (EDF DeadlineBatcher → engine)
//! ```
//!
//! When the wrapped server was built with a
//! [`TraceCollector`](snn_trace::TraceCollector)
//! ([`StreamingServer::new_traced`](snn_runtime::StreamingServer::new_traced)),
//! each inference request gets a trace: the handler mints a
//! [`TraceId`](snn_trace::TraceId) (or honors the request's
//! `x-snn-trace-id` header), records the gateway-side spans
//! (`http.request` root, `http.parse`, `request.decode`, `infer.submit`,
//! `ticket.wait`, `http.respond`), and threads the id through
//! [`SubmitOptions`](snn_runtime::SubmitOptions) so the batcher, worker
//! and engine spans land in the same tree. The response echoes the id,
//! and `GET /v1/trace/<id>` serves the finished tree.
//!
//! Shutdown is a graceful drain: the acceptor stops, connection workers
//! answer anything already parsed with `503` and exit at their next poll
//! tick, and in-flight inference handlers run to completion before the
//! pool joins. The wrapped [`StreamingServer`] is left running — it
//! belongs to the caller, who may front it with a new gateway or shut it
//! down separately.

use std::io::{Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snn_log::{IncidentConfig, IncidentRecorder, Level, LogCollector};
use snn_runtime::{
    FaultInjector, FaultPoint, LogSink, ModelRegistry, RegistryError, StreamingServer, SubmitError,
    WorkerPool,
};
use snn_telemetry::{families, Labels, TelemetryHub};
use snn_tensor::Tensor;
use snn_trace::{AttrValue, TraceCollector, TraceId, TraceTarget};

use crate::http::{
    parse_request, write_response, write_response_with_retry_after, Limits, ParseError, Request,
};
use crate::json::{
    render_trace, ErrorBody, InferRequest, InferResponse, ModelListBody, SwapRequest,
};
use crate::metrics::{prometheus_text, GatewayMetrics, GatewayRecorder, LogStats, TraceStats};
use crate::stats::render_stats;

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port `0` picks a free port (see
    /// [`Gateway::local_addr`]).
    pub addr: String,
    /// Connection worker threads (0 = one per available core, floored at
    /// 4). Each worker owns one connection for its keep-alive lifetime;
    /// additional accepted connections queue until a worker frees — which
    /// [`keep_alive_idle`](Self::keep_alive_idle) guarantees it eventually
    /// does.
    pub workers: usize,
    /// The per-sample dims this gateway serves (e.g. `[3, 32, 32]`).
    /// Requests with any other `dims` are rejected with `400` **before**
    /// touching the stream, so a hostile first request can never pin the
    /// streaming server to the wrong geometry.
    pub input_dims: Vec<usize>,
    /// Most bytes a request body may declare (`413` beyond).
    pub max_body_bytes: usize,
    /// Most bytes a request head may occupy (`400` beyond).
    pub max_head_bytes: usize,
    /// Longest a handler waits on its [`Ticket`](snn_runtime::Ticket)
    /// before answering `504` (the batch still executes; the reply is
    /// discarded). Client-supplied `deadline_ms` values are clamped to
    /// half this bound — an untrusted request must not park in the EDF
    /// window longer than the gateway is willing to wait for it, and the
    /// remaining half of the budget covers queueing and execution.
    pub handler_timeout: Duration,
    /// Socket read timeout: how often an idle keep-alive connection checks
    /// for shutdown. Smaller drains faster; larger polls less.
    pub poll_interval: Duration,
    /// Close a connection that has gone this long without completing a
    /// request. This reclaims workers from parked keep-alive clients (a
    /// handful of idle connections must never starve the pool) and bounds
    /// slow-loris senders who trickle a request forever.
    pub keep_alive_idle: Duration,
    /// Whether to stand up a windowed [`TelemetryHub`] for this gateway
    /// (default `true`). When on, the wrapped server (and registry, if
    /// any) record labeled sliding-window series alongside their
    /// cumulative recorders, and `GET /v1/stats` + `GET /dashboard`
    /// serve live snapshots. Turning it off leaves those routes answering
    /// `404` and removes every per-request telemetry write.
    pub telemetry: bool,
    /// Whether to stand up the structured log flight recorder (default
    /// `true`). When on, every layer — access log, batcher, registry,
    /// fault injector — records leveled events into a bounded in-memory
    /// ring served by `GET /v1/logs`; the minimum level comes from the
    /// `SNN_LOG` spec (default `info`), and setting `SNN_LOG` also
    /// attaches a JSON-lines stderr sink. Off, the routes answer `404`
    /// and every log call is one relaxed atomic load.
    pub logging: bool,
    /// Directory for incident post-mortem reports. When set (and
    /// [`logging`](Self::logging) is on), failure sites — batch
    /// quarantine, breaker open, brownout engage, panics — atomically
    /// write self-contained JSON snapshots here (bounded, LRU-cleaned),
    /// served by `GET /v1/incidents`. `None` (the default) disables
    /// incident capture.
    pub incidents_dir: Option<PathBuf>,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            input_dims: Vec::new(),
            max_body_bytes: 8 * 1024 * 1024,
            max_head_bytes: 16 * 1024,
            handler_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(50),
            keep_alive_idle: Duration::from_secs(10),
            telemetry: true,
            logging: true,
            incidents_dir: None,
        }
    }
}

impl GatewayConfig {
    /// A config serving the given per-sample dims, all else default.
    pub fn for_dims(input_dims: &[usize]) -> Self {
        Self {
            input_dims: input_dims.to_vec(),
            ..Self::default()
        }
    }
}

/// State shared between the acceptor, every connection worker, and the
/// [`Gateway`] handle.
struct Shared {
    server: Arc<StreamingServer>,
    /// The model registry behind the `/v1/models` routes, when this
    /// gateway was started with [`Gateway::start_with_registry`].
    registry: Option<Arc<ModelRegistry>>,
    /// The streaming server's span sink, if it was built traced
    /// ([`StreamingServer::trace_collector`]); gateway request spans and
    /// the `GET /v1/trace/<id>` route record into / read from it.
    trace: Option<Arc<TraceCollector>>,
    recorder: Mutex<GatewayRecorder>,
    /// The windowed time-series hub (when
    /// [`GatewayConfig::telemetry`] is on): the default server, every
    /// registry entry, and the per-route HTTP recorder all write labeled
    /// sliding-window series into it; `/v1/stats` and `/dashboard` read
    /// them back.
    telemetry: Option<Arc<TelemetryHub>>,
    /// The structured-log sink (collector + optional incident recorder)
    /// every layer records into, when [`GatewayConfig::logging`] is on.
    log: Option<LogSink>,
    /// When the gateway started serving (the `uptime_s` origin).
    started: Instant,
    /// Soft drain ([`Gateway::begin_drain`]): readiness flips to `503`,
    /// non-health traffic is refused, keep-alive stops — but connections
    /// are still accepted so `/healthz` and `/readyz` probes keep working.
    draining: AtomicBool,
    /// Hard stop ([`Gateway::shutdown`]): the acceptor exits and
    /// connection workers close their streams. Implies `draining`.
    stopping: AtomicBool,
    limits: Limits,
    input_dims: Vec<usize>,
    handler_timeout: Duration,
    poll_interval: Duration,
    keep_alive_idle: Duration,
}

/// The HTTP serving front-end: acceptor + connection worker pool over a
/// [`StreamingServer`], with graceful drain (see the module-level docs for
/// the data path).
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use snn_gateway::{Gateway, GatewayConfig};
/// use snn_runtime::{BackendChoice, StreamingConfig};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let model: Arc<ttfs_core::SnnModel> = unimplemented!();
/// let dims = [3usize, 32, 32];
/// let server = Arc::new(BackendChoice::Csr.serve_streaming(
///     Arc::clone(&model), &dims, StreamingConfig::default())?);
/// let mut gateway = Gateway::start(server, GatewayConfig::for_dims(&dims))?;
/// println!("serving on http://{}", gateway.local_addr());
/// // ... traffic ...
/// gateway.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Gateway {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    connections: Mutex<Option<Arc<WorkerPool>>>,
}

impl Gateway {
    /// Binds the listener, spawns the acceptor and connection workers, and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or `InvalidInput` when
    /// [`input_dims`](GatewayConfig::input_dims) is empty (the gateway
    /// must know its geometry to validate requests).
    pub fn start(server: Arc<StreamingServer>, config: GatewayConfig) -> std::io::Result<Self> {
        Self::start_inner(server, None, config)
    }

    /// [`start`](Self::start) with a [`ModelRegistry`] attached: the
    /// gateway additionally serves `GET /v1/models`,
    /// `POST /v1/models/<name[@version]>/infer` and
    /// `POST /v1/models/<name>/swap`. The default `server` + `input_dims`
    /// keep serving the plain `/v1/infer` route. When the registry carries
    /// a trace collector, per-model requests record `registry.load` /
    /// `registry.compile` / `registry.swap` spans under their request
    /// root.
    ///
    /// # Errors
    ///
    /// Same conditions as [`start`](Self::start).
    pub fn start_with_registry(
        server: Arc<StreamingServer>,
        registry: Arc<ModelRegistry>,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        Self::start_inner(server, Some(registry), config)
    }

    fn start_inner(
        server: Arc<StreamingServer>,
        registry: Option<Arc<ModelRegistry>>,
        config: GatewayConfig,
    ) -> std::io::Result<Self> {
        if config.input_dims.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "GatewayConfig::input_dims must name the served sample geometry",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = if config.workers > 0 {
            config.workers
        } else {
            // Floor at 4: connection workers are I/O-parked most of their
            // lives, and a 1-core box must still overlap several clients.
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(4)
        };
        let trace = server
            .trace_collector()
            .cloned()
            .or_else(|| registry.as_ref().and_then(|r| r.trace_collector().cloned()));
        let telemetry = config.telemetry.then(|| {
            let hub = Arc::new(TelemetryHub::new());
            // The default (non-registry) server records under a fixed
            // model label; registry entries attach their own
            // model/version/backend labels at load time.
            server.attach_telemetry(
                Arc::clone(&hub),
                Labels::new()
                    .with("model", "default")
                    .with("backend", server.backend_name()),
            );
            if let Some(registry) = &registry {
                registry.attach_telemetry(Arc::clone(&hub));
            }
            hub
        });
        let log = config.logging.then(|| {
            // The SNN_LOG spec sets the collector's floor; the spec's
            // per-target overrides additionally filter the stderr sink.
            // No SNN_LOG → info-level ring only, no sink.
            let spec = snn_log::LogSpec::from_env();
            let collector = Arc::new(LogCollector::new(snn_log::DEFAULT_CAPACITY));
            collector.set_min_level(spec.most_verbose());
            if std::env::var_os("SNN_LOG").is_some() {
                if let Ok(sink) = snn_log::JsonSink::new(snn_log::SinkConfig::stderr(spec)) {
                    collector.set_sink(sink);
                }
            }
            let incidents = config.incidents_dir.as_ref().and_then(|dir| {
                IncidentRecorder::new(dir, Arc::clone(&collector), IncidentConfig::default())
                    .ok()
                    .map(Arc::new)
            });
            if let Some(recorder) = &incidents {
                snn_log::install_panic_hook(recorder);
            }
            let sink = LogSink::new(collector, incidents);
            server.attach_logging(sink.clone());
            if let Some(registry) = &registry {
                registry.attach_logging(sink.clone());
            }
            FaultInjector::global().attach_log(Arc::clone(sink.collector()));
            sink
        });
        let shared = Arc::new(Shared {
            server,
            registry,
            trace,
            telemetry,
            log,
            started: Instant::now(),
            recorder: Mutex::new(GatewayRecorder::new()),
            draining: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            limits: Limits {
                max_head_bytes: config.max_head_bytes,
                max_body_bytes: config.max_body_bytes,
            },
            input_dims: config.input_dims,
            handler_timeout: config.handler_timeout,
            poll_interval: config.poll_interval,
            keep_alive_idle: config.keep_alive_idle,
        });
        if let Some(recorder) = shared.log.as_ref().and_then(|s| s.incidents()).cloned() {
            // Weak back-reference: the incident recorder must not keep the
            // gateway alive after shutdown — a post-shutdown incident just
            // loses its live-snapshot sections.
            let weak = Arc::downgrade(&shared);
            recorder.set_provider(move |trace| match weak.upgrade() {
                Some(shared) => snapshot_sections(&shared, trace),
                None => Vec::new(),
            });
        }
        let pool = Arc::new(WorkerPool::new(workers));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("snn-gateway-acceptor".into())
                .spawn(move || acceptor_loop(listener, shared, pool))
                .map_err(std::io::Error::other)?
        };
        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            connections: Mutex::new(Some(pool)),
        })
    }

    /// The bound address (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the gateway is draining (shutdown has begun).
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::Acquire)
    }

    /// Marks the gateway as draining **without** stopping it: readiness
    /// (`GET /readyz`) flips to `503` so load balancers stop routing here,
    /// new non-health requests are refused with `503`, and liveness
    /// (`GET /healthz`) keeps answering `200` — the process is alive, just
    /// winding down. Idempotent; [`shutdown`](Self::shutdown) completes
    /// the drain.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::Release);
    }

    /// The windowed telemetry hub, when the gateway was configured with
    /// [`GatewayConfig::telemetry`] (the default).
    pub fn telemetry(&self) -> Option<&Arc<TelemetryHub>> {
        self.shared.telemetry.as_ref()
    }

    /// The structured-log flight recorder, when the gateway was
    /// configured with [`GatewayConfig::logging`] (the default).
    pub fn log_collector(&self) -> Option<&Arc<LogCollector>> {
        self.shared.log.as_ref().map(|s| s.collector())
    }

    /// The incident recorder, when [`GatewayConfig::incidents_dir`] was
    /// set (and logging is on).
    pub fn incidents(&self) -> Option<&Arc<IncidentRecorder>> {
        self.shared.log.as_ref().and_then(|s| s.incidents())
    }

    /// Snapshot of the gateway-level metrics accumulated so far.
    pub fn metrics(&self) -> GatewayMetrics {
        // Recover, don't propagate, a poisoned recorder: it holds plain
        // counters with no multi-step invariants, and losing /metrics
        // because one handler thread panicked would blind the operator
        // exactly when they need the numbers.
        self.shared
            .recorder
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .summarize()
    }

    /// Gracefully drains and stops the gateway: no new connections are
    /// accepted, parked keep-alive connections close at their next poll
    /// tick, in-flight handlers finish (their responses are written), and
    /// the connection pool joins. Returns the final gateway metrics.
    /// Idempotent; also invoked by [`Drop`]. The wrapped
    /// [`StreamingServer`] keeps running.
    pub fn shutdown(&mut self) -> GatewayMetrics {
        self.shared.draining.store(true, Ordering::Release);
        self.shared.stopping.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            // Wake the blocking accept with a throwaway connection; the
            // acceptor sees the stop flag and exits.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
        // The acceptor is gone, so its pool Arc is dropped; taking ours
        // makes this the last reference and dropping it joins the workers
        // after every queued connection job finishes.
        if let Some(pool) = self
            .connections
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            drop(pool);
        }
        self.metrics()
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: TcpListener, shared: Arc<Shared>, pool: Arc<WorkerPool>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.stopping.load(Ordering::Acquire) {
                    // The wakeup connection (or late traffic): close it.
                    let _ = stream.shutdown(NetShutdown::Both);
                    break;
                }
                shared
                    .recorder
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record_connection();
                let shared = Arc::clone(&shared);
                // A closed pool can only mean shutdown raced us; drop the
                // stream and exit on the next accept.
                if pool
                    .try_execute(move || handle_connection(stream, &shared))
                    .is_err()
                {
                    break;
                }
            }
            Err(_) => {
                // Transient accept errors (EMFILE, aborted handshake) must
                // not kill the acceptor; a poisoned listener during drain
                // just exits. Back off briefly so persistent failures
                // (e.g. fd exhaustion) do not busy-spin a core against
                // the workers trying to free descriptors.
                if shared.stopping.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Serves one connection until it closes, errors, stops keeping alive, or
/// the gateway drains. Panic-free by construction: all parsing is
/// [`parse_request`], all indexing bounded.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.poll_interval));
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut scratch = [0u8; 8192];
    // Reset after every completed response (not at parse time — a slow
    // handler must not eat into its connection's idle allowance); a
    // connection that then goes `keep_alive_idle` without completing a
    // request is closed, so parked keep-alive clients and slow-loris
    // senders cannot pin a worker.
    let mut last_activity = Instant::now();
    // When the current request's first bytes landed — the start instant of
    // its `http.request` trace span (parse + queue + exec + respond all
    // nest under it).
    let mut recv_start: Option<Instant> = None;
    loop {
        // Serve everything already buffered first (pipelining).
        match parse_request(&buf, &shared.limits) {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                if FaultInjector::global().should(FaultPoint::ConnReset) {
                    // Injected mid-exchange connection loss: the request
                    // parsed but its response never leaves. The client
                    // must surface a typed transport error, not hang.
                    if let Some(sink) = &shared.log {
                        snn_log::warn!(
                            sink.collector(),
                            "gateway.conn",
                            { "target": request.target.as_str() },
                            "dropping connection: injected reset after parsing {}",
                            request.target
                        );
                    }
                    let _ = stream.shutdown(NetShutdown::Both);
                    return;
                }
                let received = recv_start.take().unwrap_or_else(Instant::now);
                let keep_alive = respond(&mut stream, &request, shared, received);
                last_activity = Instant::now();
                if !buf.is_empty() {
                    // A pipelined follow-up is already buffered.
                    recv_start = Some(last_activity);
                }
                if !keep_alive {
                    let _ = stream.shutdown(NetShutdown::Both);
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                let (status, message) = match &e {
                    ParseError::BadRequest(msg) => (400u16, msg.clone()),
                    ParseError::PayloadTooLarge { limit } => {
                        (413u16, format!("body exceeds the {limit}-byte limit"))
                    }
                };
                let start = Instant::now();
                if let Some(sink) = &shared.log {
                    snn_log::warn!(
                        sink.collector(),
                        "gateway.conn",
                        { "status": u64::from(status) },
                        "connection closed on parse error: {message}"
                    );
                }
                let body = ErrorBody::render(message);
                let bytes = write_response(status, "application/json", &body, false);
                let _ = stream.write_all(&bytes);
                let mut rec = shared.recorder.lock().unwrap_or_else(|e| e.into_inner());
                rec.record_parse_error();
                rec.record_response("parse", status, start.elapsed());
                let _ = stream.shutdown(NetShutdown::Both);
                return;
            }
        }
        if shared.stopping.load(Ordering::Acquire) {
            // Mid-request bytes can never complete once we stop reading;
            // close so the client sees a connection error, not a hang.
            // (A soft drain keeps reading: health probes must still land.)
            let _ = stream.shutdown(NetShutdown::Both);
            return;
        }
        if last_activity.elapsed() >= shared.keep_alive_idle {
            let _ = stream.shutdown(NetShutdown::Both);
            return;
        }
        match stream.read(&mut scratch) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                if recv_start.is_none() {
                    recv_start = Some(Instant::now());
                }
                buf.extend_from_slice(scratch.get(..n).unwrap_or_default());
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: loop back to re-check the drain flag.
            }
            Err(_) => return,
        }
    }
}

/// A routed answer: `(route label, status, content type, body, explicit
/// Retry-After seconds)`. The final element is `None` almost everywhere —
/// [`respond`] derives a default `Retry-After: 1` for every `429`/`503` —
/// and carries an explicit value only where the server knows better (the
/// registry's circuit breaker knows exactly how long it will stay open).
type Reply = (&'static str, u16, &'static str, Vec<u8>, Option<u64>);

/// Widens a plain 4-field answer into a [`Reply`] with no explicit
/// Retry-After override.
fn widen(reply: (&'static str, u16, &'static str, Vec<u8>)) -> Reply {
    let (route, status, content_type, body) = reply;
    (route, status, content_type, body, None)
}

/// Routes and answers one request; returns whether the connection may
/// serve another. `received` is when the request's first bytes arrived —
/// the root instant of its trace, when tracing is on.
fn respond(stream: &mut TcpStream, request: &Request, shared: &Shared, received: Instant) -> bool {
    let start = Instant::now();
    let draining = shared.draining.load(Ordering::Acquire);
    // Health probes are answered even while draining: liveness must stay
    // `200` (the process is alive, winding down is not a crash) and
    // readiness must keep *reporting* — it answers `503` with a JSON body
    // saying why, so a load balancer sees "alive but do not route here".
    let probe = match (request.method.as_str(), request.path()) {
        ("GET", "/healthz") => Some(("health", 200u16, "text/plain", b"ok\n".to_vec(), None)),
        ("GET", "/readyz") => Some(widen(handle_readyz(shared, draining))),
        _ => None,
    };
    let (route, status, content_type, body, retry_override) = if let Some(reply) = probe {
        reply
    } else if draining {
        (
            "drain",
            503u16,
            "application/json",
            ErrorBody::render("gateway is draining; retry against another replica"),
            None,
        )
    } else {
        match (request.method.as_str(), request.path()) {
            ("POST", "/v1/infer") => widen(handle_infer(request, shared, received)),
            ("GET", "/v1/models") => widen(handle_models_list(shared)),
            (method, path) if path.starts_with("/v1/models/") => {
                handle_model_route(method, path, request, shared, received)
            }
            ("GET", path) if path.starts_with("/v1/trace/") => widen(handle_trace(path, shared)),
            (_, path) if path.starts_with("/v1/trace/") => (
                "other",
                405,
                "application/json",
                ErrorBody::render(format!("method {} not allowed on {path}", request.method)),
                None,
            ),
            ("GET", "/v1/logs") => widen(handle_logs(request, shared)),
            ("GET", "/v1/incidents") => widen(handle_incidents_list(shared)),
            ("GET", path) if path.starts_with("/v1/incidents/") => {
                widen(handle_incident_get(path, shared))
            }
            (_, path) if path == "/v1/incidents" || path.starts_with("/v1/incidents/") => (
                "other",
                405,
                "application/json",
                ErrorBody::render(format!("method {} not allowed on {path}", request.method)),
                None,
            ),
            ("GET", "/metrics") => {
                let streaming = shared.server.metrics();
                let gateway = shared
                    .recorder
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .summarize();
                let registry = shared.registry.as_deref().map(|r| r.metrics());
                let trace = live_trace_stats(shared);
                let log = live_log_stats(shared);
                (
                    "metrics",
                    200,
                    "text/plain; version=0.0.4",
                    prometheus_text(&gateway, &streaming, registry.as_ref(), trace, log.as_ref())
                        .into_bytes(),
                    None,
                )
            }
            ("GET", "/v1/stats") => widen(handle_stats(shared)),
            ("GET", "/dashboard") => widen(handle_dashboard(shared)),
            (_, "/v1/infer")
            | (_, "/v1/models")
            | (_, "/metrics")
            | (_, "/healthz")
            | (_, "/readyz")
            | (_, "/v1/stats")
            | (_, "/v1/logs")
            | (_, "/dashboard") => (
                "other",
                405,
                "application/json",
                ErrorBody::render(format!(
                    "method {} not allowed on {}",
                    request.method,
                    request.path()
                )),
                None,
            ),
            (_, path) => (
                "other",
                404,
                "application/json",
                ErrorBody::render(format!("no route for {path}")),
                None,
            ),
        }
    };
    // Every backpressure/unavailability answer carries a Retry-After so
    // clients pace their retries: an explicit value when the server knows
    // the outage's horizon (breaker backoff), else "1" (brownout, queue
    // full and drain all clear on the order of a second or a re-route).
    let retry_after = retry_override.or(match status {
        429 | 503 => Some(1),
        _ => None,
    });
    // During drain the connection stops keeping alive so workers wind down.
    let keep_alive = request.keep_alive && !draining;
    let bytes =
        write_response_with_retry_after(status, content_type, &body, keep_alive, retry_after);
    let wrote = stream.write_all(&bytes).is_ok();
    shared
        .recorder
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .record_response(route, status, start.elapsed());
    if let Some(hub) = &shared.telemetry {
        let now = hub.now_s();
        let labels = Labels::new().with("route", route);
        hub.counter(families::HTTP_REQUESTS, &labels).add(now, 1.0);
        hub.histogram(families::HTTP_E2E_US, &labels)
            .record_us(now, start.elapsed().as_micros() as u64);
    }
    // Per-request access log: one event per answered request, error-level
    // for 5xx, warn for backpressure, stamped with the caller's trace id
    // when the request carried one (inference failures additionally log
    // with their internally minted id — see `log_request_failure`).
    if let Some(sink) = &shared.log {
        let collector = sink.collector();
        let level = match status {
            500.. => Level::Error,
            429 => Level::Warn,
            _ => Level::Info,
        };
        if collector.level_enabled(level) {
            let trace = request
                .header("x-snn-trace-id")
                .and_then(TraceId::parse_hex);
            collector.record_traced(
                level,
                "gateway.http",
                format!("{} {} -> {status}", request.method, request.path()),
                vec![
                    ("route", route.into()),
                    ("status", u64::from(status).into()),
                    ("latency_us", (start.elapsed().as_micros() as u64).into()),
                ],
                trace,
            );
        }
    }
    keep_alive && wrote
}

/// The `GET /readyz` handler — readiness as distinct from liveness. A
/// ready gateway answers `200`; a draining one answers `503` so load
/// balancers stop routing here while `/healthz` keeps reporting the
/// process alive. The body always carries the degradation signals an
/// operator triages first: the drain flag, whether the streaming server's
/// priority brownout is engaged, and how many registry models sit behind
/// an open circuit breaker.
fn handle_readyz(shared: &Shared, draining: bool) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "health";
    let breaker_open_models = shared
        .registry
        .as_deref()
        .map(|r| {
            r.list()
                .iter()
                .filter(|m| m.state == "breaker-open")
                .count()
        })
        .unwrap_or(0);
    let body = serde::Content::Map(vec![
        ("ready".to_string(), serde::Content::Bool(!draining)),
        ("draining".to_string(), serde::Content::Bool(draining)),
        (
            "brownout_engaged".to_string(),
            serde::Content::Bool(shared.server.brownout_engaged()),
        ),
        (
            "breaker_open_models".to_string(),
            serde::Content::U64(breaker_open_models as u64),
        ),
    ]);
    let body = serde_json::to_string(&body)
        .unwrap_or_else(|_| "{\"ready\":false}".to_string())
        .into_bytes();
    let status = if draining { 503 } else { 200 };
    (ROUTE, status, "application/json", body)
}

/// The `GET /v1/stats` handler: the full windowed telemetry snapshot as
/// JSON (see [`crate::stats`] for the schema). `404` when the gateway was
/// configured with [`GatewayConfig::telemetry`] off.
fn handle_stats(shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "stats";
    let Some(hub) = shared.telemetry.as_deref() else {
        return (
            ROUTE,
            404,
            "application/json",
            ErrorBody::render("telemetry is not enabled on this gateway"),
        );
    };
    (
        ROUTE,
        200,
        "application/json",
        render_live_stats(shared, hub),
    )
}

/// Renders the full `/v1/stats` snapshot body — shared between the route
/// handler and the incident report's `stats` section, so a post-mortem
/// snapshot always matches the live schema.
fn render_live_stats(shared: &Shared, hub: &TelemetryHub) -> Vec<u8> {
    let streaming = shared.server.metrics();
    let gateway = shared
        .recorder
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .summarize();
    let registry = shared.registry.as_deref().map(|r| r.metrics());
    let trace = live_trace_stats(shared);
    let log = live_log_stats(shared);
    render_stats(
        hub,
        &streaming,
        &gateway,
        registry.as_ref(),
        trace.as_ref(),
        log.as_ref(),
        shared.started.elapsed().as_secs_f64(),
    )
}

/// The trace collector's cumulative counters, when tracing is on.
fn live_trace_stats(shared: &Shared) -> Option<TraceStats> {
    shared.trace.as_deref().map(|c| TraceStats {
        spans_recorded: c.spans_recorded(),
        spans_dropped: c.spans_dropped(),
        ring_spans: c.ring_len(),
        ring_capacity: c.capacity(),
    })
}

/// The flight recorder's cumulative counters, when logging is on.
fn live_log_stats(shared: &Shared) -> Option<LogStats> {
    shared.log.as_ref().map(|sink| {
        let c = sink.collector();
        LogStats {
            events: [
                c.events_recorded(Level::Debug),
                c.events_recorded(Level::Info),
                c.events_recorded(Level::Warn),
                c.events_recorded(Level::Error),
            ],
            dropped: c.events_dropped(),
            ring_len: c.ring_len(),
            ring_capacity: c.capacity(),
            suppressed: c.sink_suppressed(),
            incidents_written: sink.incidents().map_or(0, |r| r.written()),
        }
    })
}

/// The sections an incident report embeds: the live `/v1/stats` snapshot
/// (same renderer as the route, so the schemas match), the failing
/// request's span tree when its trace id is known, and the fault
/// injector's counters.
fn snapshot_sections(shared: &Shared, trace: Option<TraceId>) -> Vec<(String, String)> {
    let mut sections = Vec::new();
    if let Some(hub) = shared.telemetry.as_deref() {
        if let Ok(body) = String::from_utf8(render_live_stats(shared, hub)) {
            sections.push(("stats".to_string(), body));
        }
    }
    if let (Some(collector), Some(trace)) = (shared.trace.as_deref(), trace) {
        let spans = collector.trace(trace);
        if !spans.is_empty() {
            if let Ok(tree) = String::from_utf8(render_trace(trace, &spans)) {
                sections.push(("trace".to_string(), tree));
            }
        }
    }
    if let Ok(counts) = serde_json::to_string(&FaultInjector::global().counts()) {
        sections.push(("faults".to_string(), counts));
    }
    sections
}

/// The `GET /dashboard` handler: one self-contained HTML page (no external
/// scripts, styles or fonts — it must render on an air-gapped box) that
/// polls `/v1/stats` and draws per-model tiles, sparklines, SLO state and
/// the degradation ladder. `404` when telemetry is off.
fn handle_dashboard(shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "dashboard";
    if shared.telemetry.is_none() {
        return (
            ROUTE,
            404,
            "application/json",
            ErrorBody::render("telemetry is not enabled on this gateway"),
        );
    }
    (
        ROUTE,
        200,
        "text/html; charset=utf-8",
        include_str!("dashboard.html").as_bytes().to_vec(),
    )
}

/// The `GET /v1/trace/<id>` handler: parses the hex trace id from the
/// path and returns the recorded span tree as JSON. `404` when tracing is
/// off, the id is unknown, or the trace was evicted from the bounded
/// collector; `400` for a malformed id.
fn handle_trace(path: &str, shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "trace";
    let json = "application/json";
    let Some(collector) = shared.trace.as_deref() else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("tracing is not enabled on this gateway"),
        );
    };
    let id_text = path.strip_prefix("/v1/trace/").unwrap_or_default();
    let Some(trace) = TraceId::parse_hex(id_text) else {
        return (
            ROUTE,
            400,
            json,
            ErrorBody::render(format!(
                "{id_text:?} is not a trace id (up to 16 hex digits)"
            )),
        );
    };
    let spans = collector.trace(trace);
    if spans.is_empty() {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render(format!(
                "no spans recorded for trace {trace}; it may have been evicted"
            )),
        );
    }
    (ROUTE, 200, json, render_trace(trace, &spans))
}

/// The `GET /v1/logs` handler: the flight recorder's retained events as
/// JSON, optionally filtered by `?level=<debug|info|warn|error>`
/// (at-least) and `?target=<prefix>`. Each event uses the same schema as
/// the JSON-lines sink. `404` when logging is off; `400` for an unknown
/// level.
fn handle_logs(request: &Request, shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "logs";
    let json = "application/json";
    let Some(sink) = &shared.log else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("logging is not enabled on this gateway"),
        );
    };
    let mut level = None;
    let mut target = None;
    if let Some((_, query)) = request.target.split_once('?') {
        for pair in query.split('&') {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            match key {
                "level" => match Level::parse(value) {
                    Some(parsed) => level = Some(parsed),
                    None => {
                        return (
                            ROUTE,
                            400,
                            json,
                            ErrorBody::render(format!(
                                "{value:?} is not a log level (debug|info|warn|error)"
                            )),
                        )
                    }
                },
                "target" => target = Some(value.to_string()),
                _ => {} // unknown query keys are ignored, not rejected
            }
        }
    }
    let collector = sink.collector();
    let events = collector.recent_filtered(level, target.as_deref());
    let mut body = String::with_capacity(events.len() * 160 + 64);
    body.push_str("{\"events\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        // `render_line` emits one self-contained JSON object per event —
        // the exact sink schema — so the array embeds them verbatim.
        body.push_str(snn_log::render_line(event).trim_end());
    }
    body.push_str(&format!(
        "],\"recorded\":{},\"dropped\":{}}}",
        collector.events_recorded_total(),
        collector.events_dropped()
    ));
    (ROUTE, 200, json, body.into_bytes())
}

/// The `GET /v1/incidents` handler: every incident report id on disk
/// (oldest first — ids sort chronologically) plus cumulative counters.
/// `404` when incident capture is off.
fn handle_incidents_list(shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "incidents";
    let json = "application/json";
    let Some(recorder) = shared.log.as_ref().and_then(|s| s.incidents()) else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("incident capture is not enabled on this gateway"),
        );
    };
    let ids = recorder.list();
    let mut body = String::with_capacity(ids.len() * 48 + 64);
    body.push_str("{\"incidents\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&snn_log::json_escape(id));
        body.push('"');
    }
    body.push_str(&format!(
        "],\"written\":{},\"coalesced\":{}}}",
        recorder.written(),
        recorder.coalesced()
    ));
    (ROUTE, 200, json, body.into_bytes())
}

/// The `GET /v1/incidents/<id>` handler: one incident report, verbatim.
/// `404` for an unknown (or malformed — ids never contain separators) id,
/// or when incident capture is off.
fn handle_incident_get(path: &str, shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "incidents";
    let json = "application/json";
    let Some(recorder) = shared.log.as_ref().and_then(|s| s.incidents()) else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("incident capture is not enabled on this gateway"),
        );
    };
    let id = path.strip_prefix("/v1/incidents/").unwrap_or_default();
    match recorder.read(id) {
        Some(bytes) => (ROUTE, 200, json, bytes),
        None => (
            ROUTE,
            404,
            json,
            ErrorBody::render(format!("no incident report named {id:?}")),
        ),
    }
}

/// Records a request-failure event in the flight recorder, stamped with
/// the request's (possibly internally minted) trace id — every 5xx answer
/// leaves at least one correlated event behind.
fn log_request_failure(
    shared: &Shared,
    route: &'static str,
    status: u16,
    detail: &str,
    trace: Option<TraceId>,
) {
    let Some(sink) = &shared.log else { return };
    let collector = sink.collector();
    let level = if status >= 500 {
        Level::Error
    } else {
        Level::Warn
    };
    if collector.level_enabled(level) {
        collector.record_traced(
            level,
            "gateway.http",
            format!("{route} failed with {status}: {detail}"),
            vec![
                ("route", route.into()),
                ("status", u64::from(status).into()),
            ],
            trace,
        );
    }
}

/// The `POST /v1/infer` handler: JSON body → geometry validation →
/// `submit_with` → bounded ticket wait → JSON response. Backpressure and
/// lifecycle map onto the wire: `QueueFull` → 429, drain/shutdown → 503,
/// handler timeout → 504.
///
/// When the wrapped server is traced, the handler accepts the caller's
/// `x-snn-trace-id` header (or mints an id), hangs `http.parse`,
/// `request.decode`, `infer.submit`, `ticket.wait` and `http.respond`
/// spans under one `http.request` root, and rides the
/// [`TraceTarget`] into the runtime so queue/flush/execution spans land in
/// the same tree. The whole tree is recorded before the response body
/// leaves this function, so a follow-up `GET /v1/trace/<id>` always sees
/// it complete.
fn handle_infer(
    request: &Request,
    shared: &Shared,
    received: Instant,
) -> (&'static str, u16, &'static str, Vec<u8>) {
    let trace_ctx = make_trace_ctx(request, shared);
    run_infer(
        "infer",
        &shared.server,
        &shared.input_dims,
        request,
        shared,
        received,
        trace_ctx,
    )
}

/// `(collector, trace id, pre-allocated root span id)` for one request —
/// `None` when the gateway is untraced or the collector is disabled, in
/// which case the only cost downstream is one check per instrumentation
/// point.
type TraceCtx = (Arc<TraceCollector>, TraceId, u64);

/// Mints (or adopts from `x-snn-trace-id`) the request's trace context.
fn make_trace_ctx(request: &Request, shared: &Shared) -> Option<TraceCtx> {
    shared
        .trace
        .as_ref()
        .filter(|c| c.is_enabled())
        .map(|collector| {
            let trace = request
                .header("x-snn-trace-id")
                .and_then(TraceId::parse_hex)
                .unwrap_or_else(|| collector.mint_trace());
            (Arc::clone(collector), trace, collector.next_span_id())
        })
}

/// The shared inference body behind `POST /v1/infer` and
/// `POST /v1/models/<spec>/infer`: JSON body → geometry validation against
/// `expected_dims` (the routed entry's geometry, not the process's) →
/// `submit_with` on `server` → bounded ticket wait → JSON response.
#[allow(clippy::too_many_arguments)]
fn run_infer(
    route: &'static str,
    server: &StreamingServer,
    expected_dims: &[usize],
    request: &Request,
    shared: &Shared,
    received: Instant,
    trace_ctx: Option<TraceCtx>,
) -> (&'static str, u16, &'static str, Vec<u8>) {
    let json = "application/json";
    let handler_start = Instant::now();
    let trace_id = trace_ctx.as_ref().map(|&(_, trace, _)| trace);
    if let Some((collector, trace, root)) = &trace_ctx {
        collector.record_span(
            *trace,
            *root,
            "http.parse",
            received,
            handler_start,
            vec![("body_bytes", request.body.len().into())],
        );
    }
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            return (
                route,
                400,
                json,
                ErrorBody::render("request body is not valid UTF-8"),
            )
        }
    };
    let wire: InferRequest = match serde_json::from_str(text) {
        Ok(wire) => wire,
        Err(e) => {
            return (
                route,
                400,
                json,
                ErrorBody::render(format!("bad JSON: {e}")),
            )
        }
    };
    if let Err(msg) = wire.validate(expected_dims) {
        return (route, 400, json, ErrorBody::render(msg));
    }
    let mut options = match wire.submit_options() {
        Ok(options) => options,
        Err(msg) => return (route, 400, json, ErrorBody::render(msg)),
    };
    // Clamp untrusted deadlines to HALF the handler timeout: the handler
    // gives up (504) at handler_timeout, so batching may consume at most
    // half the budget, leaving the rest for queueing and execution. An
    // unclamped deadline would park in the EDF window for a client-chosen
    // duration, stalling every request sharing it (and, under tight
    // max_pending, wedging admission) — and a clamp at the full timeout
    // would race the 504 by design.
    options.deadline = options.deadline.map(|d| d.min(shared.handler_timeout / 2));
    let pixels = wire.pixels.len();
    let image = match Tensor::from_vec(wire.pixels, &wire.dims) {
        Ok(image) => image,
        Err(e) => return (route, 400, json, ErrorBody::render(e.to_string())),
    };
    if let Some((collector, trace, root)) = &trace_ctx {
        collector.record_span(
            *trace,
            *root,
            "request.decode",
            handler_start,
            Instant::now(),
            vec![("pixels", pixels.into())],
        );
        options = options.traced(TraceTarget {
            trace: *trace,
            parent: *root,
        });
    }
    let submitted = Instant::now();
    let mut ticket = match server.submit_with(&image, options) {
        Ok(ticket) => ticket,
        Err(SubmitError::QueueFull { max_pending }) => {
            log_request_failure(
                shared,
                route,
                429,
                &format!("queue full at {max_pending} admitted"),
                trace_id,
            );
            return (
                route,
                429,
                json,
                ErrorBody::render(format!(
                    "queue full: {max_pending} requests already admitted; retry with backoff"
                )),
            );
        }
        Err(SubmitError::Brownout {
            priority,
            shed_below_priority,
        }) => {
            // Load shedding is backpressure, same wire shape as a full
            // queue: the client should back off and retry (or escalate
            // its priority if it genuinely is latency-critical).
            log_request_failure(
                shared,
                route,
                429,
                &format!("brownout shed priority {priority} (below {shed_below_priority})"),
                trace_id,
            );
            return (
                route,
                429,
                json,
                ErrorBody::render(format!(
                    "brownout: shedding priority {priority} (below {shed_below_priority}) \
                     while the pending queue is above its high-water mark; retry with backoff"
                )),
            );
        }
        Err(SubmitError::Rejected(e)) => {
            // A rejected submit during server teardown is unavailability,
            // not a client error.
            let status = if server.is_shut_down() { 503 } else { 400 };
            if status >= 500 {
                log_request_failure(shared, route, status, &e.to_string(), trace_id);
            }
            return (route, status, json, ErrorBody::render(e.to_string()));
        }
    };
    if let Some((collector, trace, root)) = &trace_ctx {
        collector.record_span(
            *trace,
            *root,
            "infer.submit",
            submitted,
            Instant::now(),
            vec![],
        );
    }
    let wait_start = Instant::now();
    match ticket.wait_timeout(shared.handler_timeout) {
        Ok(Some(response)) => {
            let wait_end = Instant::now();
            let logits = response.logits.as_slice().to_vec();
            let top1 = logits
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.total_cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let wire = InferResponse {
                logits,
                top1,
                batch_size: response.batch_size,
                queue_wait_us: response.queue_wait.as_secs_f64() * 1e6,
                exec_us: response.exec_time.as_secs_f64() * 1e6,
                e2e_us: submitted.elapsed().as_secs_f64() * 1e6,
                energy_uj: response.energy_uj,
                trace_id: trace_ctx
                    .as_ref()
                    .map(|(_, trace, _)| trace.to_string())
                    .unwrap_or_default(),
            };
            let body = match serde_json::to_string(&wire) {
                Ok(body) => body.into_bytes(),
                Err(e) => {
                    log_request_failure(
                        shared,
                        route,
                        500,
                        &format!("response serialization failed: {e}"),
                        trace_id,
                    );
                    return (
                        route,
                        500,
                        json,
                        ErrorBody::render(format!("response serialization failed: {e}")),
                    );
                }
            };
            if let Some((collector, trace, root)) = &trace_ctx {
                collector.record_span(
                    *trace,
                    *root,
                    "ticket.wait",
                    wait_start,
                    wait_end,
                    vec![("batch_size", response.batch_size.into())],
                );
                collector.record_span(
                    *trace,
                    *root,
                    "http.respond",
                    wait_end,
                    Instant::now(),
                    vec![("body_bytes", body.len().into())],
                );
                // The root closes last, so a `GET /v1/trace/<id>` issued
                // the moment the response arrives sees the full tree.
                collector.record_span_with_id(
                    *root,
                    *trace,
                    0,
                    "http.request",
                    received,
                    Instant::now(),
                    vec![("status", AttrValue::U64(200))],
                );
            }
            (route, 200, json, body)
        }
        Ok(None) => {
            if let Some((collector, trace, root)) = &trace_ctx {
                let now = Instant::now();
                collector.record_span(*trace, *root, "ticket.wait", wait_start, now, vec![]);
                collector.record_span_with_id(
                    *root,
                    *trace,
                    0,
                    "http.request",
                    received,
                    now,
                    vec![("status", AttrValue::U64(504))],
                );
            }
            log_request_failure(
                shared,
                route,
                504,
                &format!("ticket wait exceeded {:?}", shared.handler_timeout),
                trace_id,
            );
            (
                route,
                504,
                json,
                ErrorBody::render(format!(
                    "inference did not complete within {:?}",
                    shared.handler_timeout
                )),
            )
        }
        Err(e) => {
            log_request_failure(shared, route, 500, &e.to_string(), trace_id);
            (route, 500, json, ErrorBody::render(e.to_string()))
        }
    }
}

/// The `GET /v1/models` handler: the registry catalog with residency
/// state. `404` when no registry is attached.
fn handle_models_list(shared: &Shared) -> (&'static str, u16, &'static str, Vec<u8>) {
    const ROUTE: &str = "models";
    let json = "application/json";
    let Some(registry) = shared.registry.as_deref() else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("no model registry attached to this gateway"),
        );
    };
    let body = ModelListBody {
        models: registry.list(),
    };
    match serde_json::to_string(&body) {
        Ok(body) => (ROUTE, 200, json, body.into_bytes()),
        Err(e) => (
            ROUTE,
            500,
            json,
            ErrorBody::render(format!("model list serialization failed: {e}")),
        ),
    }
}

/// Dispatches `/v1/models/<...>` sub-routes:
/// `POST /v1/models/<name[@version]>/infer` and
/// `POST /v1/models/<name>/swap`.
fn handle_model_route(
    method: &str,
    path: &str,
    request: &Request,
    shared: &Shared,
    received: Instant,
) -> Reply {
    let json = "application/json";
    let rest = path.strip_prefix("/v1/models/").unwrap_or_default();
    if let Some(spec) = rest.strip_suffix("/infer") {
        if spec.is_empty() {
            return (
                "model_infer",
                404,
                json,
                ErrorBody::render("missing model name in /v1/models/<name>/infer"),
                None,
            );
        }
        if method != "POST" {
            return (
                "model_infer",
                405,
                json,
                ErrorBody::render(format!("method {method} not allowed on {path}")),
                None,
            );
        }
        return handle_model_infer(spec, request, shared, received);
    }
    if let Some(name) = rest.strip_suffix("/swap") {
        if name.is_empty() {
            return (
                "swap",
                404,
                json,
                ErrorBody::render("missing model name in /v1/models/<name>/swap"),
                None,
            );
        }
        if method != "POST" {
            return (
                "swap",
                405,
                json,
                ErrorBody::render(format!("method {method} not allowed on {path}")),
                None,
            );
        }
        return handle_swap(name, request, shared);
    }
    (
        "other",
        404,
        json,
        ErrorBody::render(format!("no route for {path}")),
        None,
    )
}

/// Maps a registry failure onto the wire: a model the catalog has never
/// heard of is the client's mistake (`404`); an artifact or compile
/// failure is the server's (`500`); an open circuit breaker is temporary
/// unavailability (`503`) with a `Retry-After` telling the client exactly
/// how long the breaker will keep rejecting.
fn registry_error_response(route: &'static str, e: &RegistryError) -> Reply {
    let (status, retry_after) = match e {
        RegistryError::UnknownModel(_) => (404, None),
        RegistryError::Artifact(_) | RegistryError::Compile(_) => (500, None),
        RegistryError::BreakerOpen { retry_after, .. } => {
            // Ceil to whole seconds so a 300 ms residue does not round
            // down to "retry immediately".
            (503, Some(retry_after.as_secs_f64().ceil().max(1.0) as u64))
        }
    };
    (
        route,
        status,
        "application/json",
        ErrorBody::render(e.to_string()),
        retry_after,
    )
}

/// The `POST /v1/models/<name[@version]>/infer` handler: resolves `spec`
/// through the registry (lazily loading + compiling a cold entry —
/// recorded as `registry.load` / `registry.compile` spans under this
/// request's root when traced) and runs the shared inference body against
/// that entry's server and geometry. The resolved handle is held across
/// the whole request, so LRU eviction can never tear down an entry with
/// this request in flight.
fn handle_model_infer(spec: &str, request: &Request, shared: &Shared, received: Instant) -> Reply {
    const ROUTE: &str = "model_infer";
    let json = "application/json";
    let Some(registry) = shared.registry.as_deref() else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("no model registry attached to this gateway"),
            None,
        );
    };
    let trace_ctx = make_trace_ctx(request, shared);
    let parent = trace_ctx.as_ref().map(|(_, trace, root)| TraceTarget {
        trace: *trace,
        parent: *root,
    });
    match registry.get_or_load_traced(spec, parent) {
        Ok(handle) => widen(run_infer(
            ROUTE,
            handle.server(),
            handle.input_dims(),
            request,
            shared,
            received,
            trace_ctx,
        )),
        Err(e) => {
            let reply = registry_error_response(ROUTE, &e);
            if reply.1 >= 500 {
                log_request_failure(
                    shared,
                    ROUTE,
                    reply.1,
                    &e.to_string(),
                    parent.map(|t| t.trace),
                );
            }
            reply
        }
    }
}

/// The `POST /v1/models/<name>/swap` handler: parses `{"version": ...}`
/// and atomically repoints the name's active version. In-flight tickets
/// complete against the old entry; new bare-`name` submissions land on
/// the new one. Returns the [`snn_runtime::SwapReport`] as JSON.
fn handle_swap(name: &str, request: &Request, shared: &Shared) -> Reply {
    const ROUTE: &str = "swap";
    let json = "application/json";
    let Some(registry) = shared.registry.as_deref() else {
        return (
            ROUTE,
            404,
            json,
            ErrorBody::render("no model registry attached to this gateway"),
            None,
        );
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            return (
                ROUTE,
                400,
                json,
                ErrorBody::render("request body is not valid UTF-8"),
                None,
            )
        }
    };
    let wire: SwapRequest = match serde_json::from_str(text) {
        Ok(wire) => wire,
        Err(e) => {
            return (
                ROUTE,
                400,
                json,
                ErrorBody::render(format!("bad JSON: {e}")),
                None,
            )
        }
    };
    let trace_ctx = make_trace_ctx(request, shared);
    let parent = trace_ctx.as_ref().map(|(_, trace, root)| TraceTarget {
        trace: *trace,
        parent: *root,
    });
    let swap_start = Instant::now();
    match registry.swap(name, &wire.version, parent) {
        Ok(report) => {
            let body = match serde_json::to_string(&report) {
                Ok(body) => body.into_bytes(),
                Err(e) => {
                    return (
                        ROUTE,
                        500,
                        json,
                        ErrorBody::render(format!("swap report serialization failed: {e}")),
                        None,
                    )
                }
            };
            if let Some((collector, trace, root)) = &trace_ctx {
                collector.record_span_with_id(
                    *root,
                    *trace,
                    0,
                    "http.request",
                    swap_start,
                    Instant::now(),
                    vec![("status", AttrValue::U64(200))],
                );
            }
            (ROUTE, 200, json, body, None)
        }
        Err(e) => {
            let reply = registry_error_response(ROUTE, &e);
            if reply.1 >= 500 {
                log_request_failure(
                    shared,
                    ROUTE,
                    reply.1,
                    &e.to_string(),
                    parent.map(|t| t.trace),
                );
            }
            reply
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_runtime::BackendChoice;
    use ttfs_core::{convert, Base2Kernel};

    /// Observability must survive exactly the situations it exists for: a
    /// thread that panics while holding the gateway recorder lock poisons
    /// it, and a later `GET /metrics` scrape over real TCP must still
    /// answer `200` with the full exposition text — counters are plain
    /// data, so the poison is recovered, not propagated.
    #[test]
    fn metrics_scrape_survives_a_poisoned_recorder_lock() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(8, 4, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(4, 3, &mut rng)),
        ]);
        let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 24).unwrap());
        let dims = [1usize, 2, 4];
        let server = Arc::new(
            BackendChoice::Csr
                .serve_streaming(
                    Arc::clone(&model),
                    &dims,
                    snn_runtime::StreamingConfig {
                        threads: 1,
                        max_batch: 2,
                        max_delay: Duration::from_millis(1),
                        max_pending: 0,
                        brownout: None,
                    },
                )
                .unwrap(),
        );
        let mut gateway = Gateway::start(
            Arc::clone(&server),
            GatewayConfig {
                workers: 2,
                ..GatewayConfig::for_dims(&dims)
            },
        )
        .unwrap();

        // Poison the recorder mutex: panic while holding its guard.
        let shared = Arc::clone(&gateway.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.recorder.lock().unwrap();
            panic!("poison the gateway recorder lock");
        });
        assert!(poisoner.join().is_err(), "the poisoner must panic");
        assert!(
            gateway.shared.recorder.is_poisoned(),
            "the recorder lock must actually be poisoned"
        );

        // A real scrape through the full socket path still answers.
        let mut stream = TcpStream::connect(gateway.local_addr()).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 200"),
            "poisoned-lock scrape failed: {text}"
        );
        assert!(
            text.contains("snn_gateway_requests_total"),
            "scrape is missing its families: {text}"
        );

        // Shutdown also crosses the recorder; it must not unwind either.
        let metrics = gateway.shutdown();
        server.shutdown();
        assert!(metrics.requests >= 1, "the scrape itself was recorded");
    }
}
