//! # snn-log — structured logging + incident flight recorder
//!
//! The third observability pillar of the serving stack, next to spans
//! (`snn-trace`) and windowed metrics (`snn-telemetry`): structured,
//! leveled log events with typed attributes, correlated with the
//! per-request trace ids the rest of the stack already mints.
//!
//! * [`LogCollector`] — the bounded in-memory **flight recorder**. Its
//!   architecture mirrors the proven `TraceCollector` shape: each
//!   recording thread buffers into its own shard behind an uncontended
//!   mutex, shards drain into a bounded ring that evicts (and counts)
//!   the oldest event on overflow, and the below-level/disabled path is
//!   a single relaxed atomic load.
//! * Trace correlation is free: when a `snn-trace` ambient context is
//!   installed on the recording thread (a request being served), every
//!   event records the context's [`TraceId`] without the call site
//!   passing anything.
//! * [`JsonSink`] — an optional JSON-lines sink (stderr or file) with
//!   per-`(level, target)` token-bucket rate limiting, so a hot error
//!   loop cannot melt the disk. Each line is written with one
//!   `write_all` under the writer lock: concurrent writers never
//!   interleave partial lines.
//! * [`LogSpec`] — `SNN_LOG=<level>[,target=level]*` parsing for the
//!   sink level plus per-target-prefix overrides; malformed specs fall
//!   back to `info` and never panic.
//! * [`IncidentRecorder`] — post-mortem snapshots: a panic hook
//!   ([`install_panic_hook`]) plus explicit triggers at the stack's
//!   failure sites atomically write (temp file + fsync + rename) a
//!   self-contained incident JSON — the last N flight-recorder events,
//!   build/uptime info, and caller-provided raw-JSON sections (stats
//!   snapshot, trace tree, fault counts) — into a bounded directory
//!   with oldest-first cleanup.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use snn_log::{info, warn, Level, LogCollector};
//!
//! let log = Arc::new(LogCollector::new(256));
//! info!(log, "example.server", { "port": 8080u64 }, "listening on {}", "0.0.0.0");
//! warn!(log, "example.server", "queue depth {} above high water", 97);
//! let events = log.recent();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].target, "example.server");
//! assert_eq!(events[1].level, Level::Warn);
//! assert_eq!(log.events_recorded(Level::Info), 1);
//! ```

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

pub use snn_trace::TraceId;

/// Ring capacity when [`LogCollector::new`] is passed 0.
pub const DEFAULT_CAPACITY: usize = 2048;

/// Events a thread shard buffers before flushing into the ring.
const SHARD_FLUSH_THRESHOLD: usize = 64;

/// Sentinel stored in the level gate when recording is disabled
/// entirely (one past [`Level::Error`]).
const LEVEL_OFF: u8 = 4;

// ---------------------------------------------------------------------------
// Levels and values
// ---------------------------------------------------------------------------

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Level {
    /// High-volume diagnostics (per-batch flush decisions).
    Debug = 0,
    /// Normal operation (access log, loads, swaps).
    Info = 1,
    /// Degraded but handled (sheds, brownouts, injected faults).
    Warn = 2,
    /// A request or subsystem failed (quarantine, breaker open).
    Error = 3,
}

impl Level {
    /// All levels, ascending by severity.
    pub const ALL: [Level; 4] = [Level::Debug, Level::Info, Level::Warn, Level::Error];

    /// The stable lowercase label (`"debug"`, `"info"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level label, case-insensitively; accepts the common
    /// aliases `warning` and `err`. `None` for anything else.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" | "err" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(raw: u8) -> Option<Level> {
        match raw {
            0 => Some(Level::Debug),
            1 => Some(Level::Info),
            2 => Some(Level::Warn),
            3 => Some(Level::Error),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed attribute value on a [`LogEvent`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An owned string.
    Str(String),
    /// An unsigned integer (counts, sizes, status codes).
    U64(u64),
    /// A float (latencies, ratios).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v.into())
    }
}
impl From<u16> for Value {
    fn from(v: u16) -> Self {
        Value::U64(v.into())
    }
}
impl From<u8> for Value {
    fn from(v: u8) -> Self {
        Value::U64(v.into())
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v.into())
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One recorded structured log event.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Process-wide monotonically increasing sequence number (total
    /// order across threads).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Static dotted component name (`"gateway.access"`,
    /// `"runtime.batcher"`, ...).
    pub target: &'static str,
    /// The formatted human-readable message.
    pub message: String,
    /// Typed key/value attributes.
    pub attrs: Vec<(&'static str, Value)>,
    /// The ambient request trace id, when one was active (or explicitly
    /// supplied) at record time.
    pub trace: Option<TraceId>,
    /// Microseconds since the collector's epoch (monotonic clock).
    pub mono_us: u64,
    /// Milliseconds since the Unix epoch (wall clock).
    pub unix_ms: u64,
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// The flight-recorder collector
// ---------------------------------------------------------------------------

/// One recording thread's buffer: only its owner pushes, only a drain
/// takes, so the mutex is uncontended on the hot path.
#[derive(Debug)]
struct ThreadShard {
    buf: Mutex<Vec<LogEvent>>,
}

thread_local! {
    /// This thread's shard per collector id (pruned when collectors die).
    static SHARDS: RefCell<Vec<(u64, Arc<ThreadShard>)>> = const { RefCell::new(Vec::new()) };
}

/// Process-wide collector id source (so thread-local shard entries can
/// tell collectors apart).
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// The bounded structured-log flight recorder shared by every layer of
/// one serving stack.
///
/// Below-level cost of every recording API is one relaxed atomic load;
/// enabled events buffer on the recording thread's shard and drain into
/// a bounded ring that evicts (and counts) the oldest on overflow, so a
/// query always sees the newest window of what the process decided.
#[derive(Debug)]
pub struct LogCollector {
    id: u64,
    /// The hot gate: events below this level are dropped after one
    /// relaxed load ([`LEVEL_OFF`] disables recording entirely).
    min_level: AtomicU8,
    epoch: Instant,
    capacity: usize,
    shards: Mutex<Vec<Arc<ThreadShard>>>,
    ring: Mutex<VecDeque<LogEvent>>,
    recorded: [AtomicU64; 4],
    dropped: AtomicU64,
    seq: AtomicU64,
    has_sink: AtomicBool,
    sink: Mutex<Option<Arc<JsonSink>>>,
}

impl LogCollector {
    /// Creates a collector retaining at most `capacity` events
    /// (0 → [`DEFAULT_CAPACITY`]), recording at [`Level::Info`] and
    /// above.
    pub fn new(capacity: usize) -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            min_level: AtomicU8::new(Level::Info as u8),
            epoch: Instant::now(),
            capacity: if capacity == 0 {
                DEFAULT_CAPACITY
            } else {
                capacity
            },
            shards: Mutex::new(Vec::new()),
            ring: Mutex::new(VecDeque::new()),
            recorded: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            dropped: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            has_sink: AtomicBool::new(false),
            sink: Mutex::new(None),
        }
    }

    /// Whether events at `level` are currently recorded — THE hot-path
    /// gate, one relaxed load.
    #[inline]
    pub fn level_enabled(&self, level: Level) -> bool {
        level as u8 >= self.min_level.load(Ordering::Relaxed)
    }

    /// Sets the minimum recorded level.
    pub fn set_min_level(&self, level: Level) {
        self.min_level.store(level as u8, Ordering::Relaxed);
    }

    /// Disables recording entirely (already-retained events stay
    /// queryable).
    pub fn disable(&self) {
        self.min_level.store(LEVEL_OFF, Ordering::Relaxed);
    }

    /// The current minimum recorded level (`None` when disabled).
    pub fn min_level(&self) -> Option<Level> {
        Level::from_u8(self.min_level.load(Ordering::Relaxed))
    }

    /// The retention bound of the flight-recorder ring.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Microseconds from the collector epoch to `at` (0 if `at`
    /// precedes the epoch).
    pub fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Records one event, stamping it with the ambient `snn-trace`
    /// context's trace id when one is active on this thread. Below the
    /// minimum level this is one relaxed load and an early return.
    pub fn record(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        attrs: Vec<(&'static str, Value)>,
    ) {
        if !self.level_enabled(level) {
            return;
        }
        let trace = snn_trace::current_trace_ids().first().copied();
        self.record_traced(level, target, message.into(), attrs, trace);
    }

    /// [`record`](Self::record) with an explicit trace id (pass `None`
    /// for process-scoped events; an explicit `Some` wins over the
    /// ambient context).
    pub fn record_traced(
        &self,
        level: Level,
        target: &'static str,
        message: String,
        attrs: Vec<(&'static str, Value)>,
        trace: Option<TraceId>,
    ) {
        if !self.level_enabled(level) {
            return;
        }
        let event = LogEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            level,
            target,
            message,
            attrs,
            trace,
            mono_us: self.us_since_epoch(Instant::now()),
            unix_ms: unix_ms_now(),
        };
        self.recorded[level as usize].fetch_add(1, Ordering::Relaxed);
        if self.has_sink.load(Ordering::Relaxed) {
            let sink = self
                .sink
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .as_ref()
                .map(Arc::clone);
            if let Some(sink) = sink {
                sink.write(&event);
            }
        }
        self.push_record(event);
    }

    /// Buffers one event on this thread's shard, flushing the shard
    /// into the ring past the threshold.
    fn push_record(&self, event: LogEvent) {
        let shard = self.shard_for_current_thread();
        let overflow = {
            let mut buf = shard.buf.lock().unwrap_or_else(|e| e.into_inner());
            buf.push(event);
            if buf.len() >= SHARD_FLUSH_THRESHOLD {
                std::mem::take(&mut *buf)
            } else {
                Vec::new()
            }
        };
        if !overflow.is_empty() {
            self.flush_to_ring(overflow);
        }
    }

    /// This thread's shard for this collector, registering one on first
    /// use.
    fn shard_for_current_thread(&self) -> Arc<ThreadShard> {
        SHARDS.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some((_, shard)) = entries.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(shard);
            }
            let shard = {
                let mut shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
                let shard = Arc::new(ThreadShard {
                    buf: Mutex::new(Vec::new()),
                });
                shards.push(Arc::clone(&shard));
                shard
            };
            // Entries whose collector died hold the only other Arc;
            // prune them so long-lived threads stay bounded.
            entries.retain(|(_, s)| Arc::strong_count(s) > 1);
            entries.push((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Moves events into the bounded ring, evicting (and counting) the
    /// oldest on overflow.
    fn flush_to_ring(&self, events: Vec<LogEvent>) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        for event in events {
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(event);
        }
    }

    /// Drains every thread's shard into the ring (queries call this so
    /// an event recorded before the query is always visible).
    fn drain_shards(&self) {
        let shards: Vec<Arc<ThreadShard>> = self
            .shards
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(Arc::clone)
            .collect();
        for shard in shards {
            let taken = std::mem::take(&mut *shard.buf.lock().unwrap_or_else(|e| e.into_inner()));
            if !taken.is_empty() {
                self.flush_to_ring(taken);
            }
        }
    }

    /// Every retained event, ascending by sequence number (oldest
    /// first).
    pub fn recent(&self) -> Vec<LogEvent> {
        self.recent_filtered(None, None)
    }

    /// Retained events at or above `min_level` whose target starts with
    /// `target_prefix` (either filter `None` = no constraint),
    /// ascending by sequence number.
    pub fn recent_filtered(
        &self,
        min_level: Option<Level>,
        target_prefix: Option<&str>,
    ) -> Vec<LogEvent> {
        self.drain_shards();
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut events: Vec<LogEvent> = ring
            .iter()
            .filter(|e| min_level.is_none_or(|min| e.level >= min))
            .filter(|e| target_prefix.is_none_or(|p| e.target.starts_with(p)))
            .cloned()
            .collect();
        drop(ring);
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Events recorded at `level` since construction (including
    /// later-evicted ones).
    pub fn events_recorded(&self, level: Level) -> u64 {
        self.recorded[level as usize].load(Ordering::Relaxed)
    }

    /// Events recorded across all levels since construction.
    pub fn events_recorded_total(&self) -> u64 {
        Level::ALL.iter().map(|&l| self.events_recorded(l)).sum()
    }

    /// Events evicted from the full ring since construction.
    pub fn events_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently retained (drains the shards first so the figure
    /// reflects everything recorded so far).
    pub fn ring_len(&self) -> usize {
        self.drain_shards();
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Attaches a JSON-lines sink; every subsequently recorded event
    /// that passes the sink's [`LogSpec`] and rate limit is written as
    /// one line. Replaces any previous sink.
    pub fn set_sink(&self, sink: JsonSink) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(sink));
        self.has_sink.store(true, Ordering::Relaxed);
    }

    /// Detaches the sink, if any.
    pub fn clear_sink(&self) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.has_sink.store(false, Ordering::Relaxed);
    }

    /// Lines the attached sink suppressed by rate limiting (0 when no
    /// sink is attached).
    pub fn sink_suppressed(&self) -> u64 {
        self.sink
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(|s| s.suppressed())
            .unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Records one event on `$collector` at `$level` under `$target`, with
/// an optional `{ "key": value, ... }` attribute block before the
/// format string. The level gate runs **before** the format arguments
/// are evaluated, so a below-level call costs one relaxed load.
#[macro_export]
macro_rules! log {
    ($collector:expr, $level:expr, $target:expr, { $($key:literal : $value:expr),* $(,)? }, $($fmt:tt)+) => {{
        let __collector = &$collector;
        let __level = $level;
        if __collector.level_enabled(__level) {
            __collector.record(
                __level,
                $target,
                format!($($fmt)+),
                vec![$(($key, $crate::Value::from($value))),*],
            );
        }
    }};
    ($collector:expr, $level:expr, $target:expr, $($fmt:tt)+) => {
        $crate::log!($collector, $level, $target, {}, $($fmt)+)
    };
}

/// [`log!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($collector:expr, $target:expr, $($rest:tt)+) => {
        $crate::log!($collector, $crate::Level::Debug, $target, $($rest)+)
    };
}

/// [`log!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($collector:expr, $target:expr, $($rest:tt)+) => {
        $crate::log!($collector, $crate::Level::Info, $target, $($rest)+)
    };
}

/// [`log!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($collector:expr, $target:expr, $($rest:tt)+) => {
        $crate::log!($collector, $crate::Level::Warn, $target, $($rest)+)
    };
}

/// [`log!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($collector:expr, $target:expr, $($rest:tt)+) => {
        $crate::log!($collector, $crate::Level::Error, $target, $($rest)+)
    };
}

// ---------------------------------------------------------------------------
// SNN_LOG spec
// ---------------------------------------------------------------------------

/// A sink filter: a default level plus per-target-prefix overrides,
/// parsed from `SNN_LOG=<level>[,target=level]*`.
///
/// Parsing never fails and never panics: an unparseable default falls
/// back to [`Level::Info`], malformed override segments are skipped.
/// The longest matching target prefix wins
/// (`SNN_LOG=warn,gateway=info,gateway.access=debug`).
#[derive(Debug, Clone, PartialEq)]
pub struct LogSpec {
    default: Level,
    overrides: Vec<(String, Level)>,
}

impl Default for LogSpec {
    fn default() -> Self {
        Self {
            default: Level::Info,
            overrides: Vec::new(),
        }
    }
}

impl LogSpec {
    /// Parses a spec string; see the type docs for the grammar and the
    /// fallback rules.
    pub fn parse(spec: &str) -> LogSpec {
        let mut out = LogSpec::default();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            match token.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(token) {
                        out.default = level;
                    }
                }
                Some((target, level)) => {
                    let target = target.trim();
                    if target.is_empty() {
                        continue;
                    }
                    if let Some(level) = Level::parse(level) {
                        out.overrides.push((target.to_string(), level));
                    }
                }
            }
        }
        out
    }

    /// Parses the `SNN_LOG` environment variable (unset → the default
    /// info-level spec).
    pub fn from_env() -> LogSpec {
        match std::env::var("SNN_LOG") {
            Ok(spec) => LogSpec::parse(&spec),
            Err(_) => LogSpec::default(),
        }
    }

    /// The default level (applies to targets with no matching
    /// override).
    pub fn default_level(&self) -> Level {
        self.default
    }

    /// The effective level for `target`: the longest override whose
    /// prefix matches, else the default.
    pub fn effective(&self, target: &str) -> Level {
        let mut best: Option<(usize, Level)> = None;
        for (prefix, level) in &self.overrides {
            if target.starts_with(prefix.as_str())
                && best.is_none_or(|(len, _)| prefix.len() >= len)
            {
                best = Some((prefix.len(), *level));
            }
        }
        best.map(|(_, level)| level).unwrap_or(self.default)
    }

    /// Whether an event at `level` under `target` passes the spec.
    pub fn enabled(&self, level: Level, target: &str) -> bool {
        level >= self.effective(target)
    }

    /// The most verbose level the spec can emit anywhere (the minimum
    /// across the default and every override) — what a collector's gate
    /// must be set to so the sink sees everything it asked for.
    pub fn most_verbose(&self) -> Level {
        self.overrides
            .iter()
            .map(|(_, level)| *level)
            .chain(std::iter::once(self.default))
            .min()
            .unwrap_or(Level::Info)
    }
}

// ---------------------------------------------------------------------------
// JSON-lines sink
// ---------------------------------------------------------------------------

/// Where a [`JsonSink`] writes.
#[derive(Debug, Clone)]
pub enum SinkTarget {
    /// Standard error of the process.
    Stderr,
    /// Appended to the file at this path (created if missing).
    File(PathBuf),
}

/// Token-bucket parameters of a [`JsonSink`]'s per-`(level, target)`
/// rate limit: each key may burst `burst` lines, refilling at `per_s`
/// lines per second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket depth: lines a single `(level, target)` may emit
    /// back-to-back.
    pub burst: u32,
    /// Sustained refill rate, lines per second.
    pub per_s: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        Self {
            burst: 64,
            per_s: 16.0,
        }
    }
}

/// Configuration for [`JsonSink::new`].
#[derive(Debug, Clone)]
pub struct SinkConfig {
    /// Where lines go.
    pub target: SinkTarget,
    /// Level filter (default + per-target overrides).
    pub spec: LogSpec,
    /// Per-`(level, target)` token bucket; `None` disables rate
    /// limiting.
    pub rate: Option<RateLimit>,
}

impl SinkConfig {
    /// A stderr sink honoring `spec`, with the default rate limit.
    pub fn stderr(spec: LogSpec) -> Self {
        Self {
            target: SinkTarget::Stderr,
            spec,
            rate: Some(RateLimit::default()),
        }
    }

    /// A file sink honoring `spec`, with the default rate limit.
    pub fn file(path: impl Into<PathBuf>, spec: LogSpec) -> Self {
        Self {
            target: SinkTarget::File(path.into()),
            spec,
            rate: Some(RateLimit::default()),
        }
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// A JSON-lines sink: one self-contained JSON object per event, one
/// line per object, written with a single `write_all` under the writer
/// lock so concurrent recording threads never interleave partial lines.
///
/// Line schema:
///
/// ```json
/// {"ts_ms": 1719400000000, "mono_us": 8123, "level": "warn",
///  "target": "gateway.access", "msg": "POST /v1/infer -> 503",
///  "trace": "0000008000000001",
///  "attrs": {"route": "/v1/infer", "status": 503}}
/// ```
///
/// `trace` is `null` for uncorrelated events; attribute values keep
/// their native JSON types.
pub struct JsonSink {
    writer: Mutex<Box<dyn Write + Send>>,
    spec: LogSpec,
    rate: Option<RateLimit>,
    buckets: Mutex<BTreeMap<(u8, &'static str), Bucket>>,
    suppressed: AtomicU64,
}

impl std::fmt::Debug for JsonSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonSink")
            .field("spec", &self.spec)
            .field("rate", &self.rate)
            .finish_non_exhaustive()
    }
}

impl JsonSink {
    /// Opens the sink (creating/appending the file for
    /// [`SinkTarget::File`]).
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file target cannot be opened.
    pub fn new(config: SinkConfig) -> std::io::Result<JsonSink> {
        let writer: Box<dyn Write + Send> = match &config.target {
            SinkTarget::Stderr => Box::new(std::io::stderr()),
            SinkTarget::File(path) => Box::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
        };
        Ok(JsonSink {
            writer: Mutex::new(writer),
            spec: config.spec,
            rate: config.rate,
            buckets: Mutex::new(BTreeMap::new()),
            suppressed: AtomicU64::new(0),
        })
    }

    /// Writes one event if it passes the spec and the rate limit.
    pub fn write(&self, event: &LogEvent) {
        if !self.spec.enabled(event.level, event.target) {
            return;
        }
        if !self.admit(event) {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let line = render_line(event);
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.flush();
    }

    /// Token-bucket admission for the event's `(level, target)` key.
    fn admit(&self, event: &LogEvent) -> bool {
        let Some(rate) = self.rate else {
            return true;
        };
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets
            .entry((event.level as u8, event.target))
            .or_insert_with(|| Bucket {
                tokens: f64::from(rate.burst),
                last: now,
            });
        let elapsed = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * rate.per_s).min(f64::from(rate.burst));
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Lines suppressed by the rate limit since construction.
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn render_value(value: &Value, out: &mut String) {
    match value {
        Value::Str(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => out.push_str(&format!("{x}")),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Renders one event as its JSON line (terminated by `\n`); see
/// [`JsonSink`] for the schema. Public so other layers (incident
/// reports, the `/v1/logs` route) render events identically.
pub fn render_line(event: &LogEvent) -> String {
    let mut out = String::with_capacity(128);
    out.push_str(&format!(
        "{{\"ts_ms\":{},\"mono_us\":{},\"seq\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        event.unix_ms,
        event.mono_us,
        event.seq,
        event.level.as_str(),
        json_escape(event.target),
        json_escape(&event.message),
    ));
    match event.trace {
        Some(trace) => out.push_str(&format!(",\"trace\":\"{trace}\"")),
        None => out.push_str(",\"trace\":null"),
    }
    out.push_str(",\"attrs\":{");
    for (i, (key, value)) in event.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(key));
        out.push_str("\":");
        render_value(value, &mut out);
    }
    out.push_str("}}\n");
    out
}

// ---------------------------------------------------------------------------
// Incident recorder
// ---------------------------------------------------------------------------

/// Bounds and debounce of an [`IncidentRecorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IncidentConfig {
    /// Incident files retained in the directory; the oldest are deleted
    /// past the bound.
    pub max_incidents: usize,
    /// Flight-recorder events embedded per incident (the newest N).
    pub last_events: usize,
    /// Minimum gap between written incidents *of the same kind*;
    /// triggers inside the gap are counted as coalesced instead of
    /// writing another file (a panic storm produces one report, not a
    /// thousand). The gap is tracked per kind so a panic flurry never
    /// swallows the first `quarantine` or `breaker_open` report — the
    /// set of kinds is small and fixed by the call sites, so the disk
    /// write rate stays bounded either way.
    pub min_gap: Duration,
}

impl Default for IncidentConfig {
    fn default() -> Self {
        Self {
            max_incidents: 32,
            last_events: 256,
            min_gap: Duration::from_millis(250),
        }
    }
}

/// A caller-installed snapshot hook: given the triggering trace id (if
/// any), returns named raw-JSON sections to embed in the report — the
/// gateway installs one that renders its live `/v1/stats` body, the
/// matching trace tree, and the fault-injector counts.
pub type SnapshotProvider = Box<dyn Fn(Option<TraceId>) -> Vec<(String, String)> + Send + Sync>;

/// Writes self-contained post-mortem snapshots ("incidents") when the
/// stack's failure machinery fires.
///
/// Each report is a single JSON file: trigger kind + detail, build and
/// uptime info, the last N flight-recorder events from the attached
/// [`LogCollector`], and whatever raw-JSON sections the installed
/// [`SnapshotProvider`] contributes. Files are written atomically —
/// temp sibling, `fsync`, rename — so a crash mid-write never leaves a
/// torn report, and the directory is bounded: the oldest reports are
/// deleted past [`IncidentConfig::max_incidents`].
pub struct IncidentRecorder {
    dir: PathBuf,
    config: IncidentConfig,
    collector: Arc<LogCollector>,
    started: Instant,
    written: AtomicU64,
    coalesced: AtomicU64,
    last_write: Mutex<BTreeMap<String, Instant>>,
    seq: AtomicU64,
    provider: Mutex<Option<SnapshotProvider>>,
}

impl std::fmt::Debug for IncidentRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncidentRecorder")
            .field("dir", &self.dir)
            .field("config", &self.config)
            .field("written", &self.written.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl IncidentRecorder {
    /// Creates the recorder, creating `dir` if missing.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the directory cannot be created.
    pub fn new(
        dir: impl Into<PathBuf>,
        collector: Arc<LogCollector>,
        config: IncidentConfig,
    ) -> std::io::Result<IncidentRecorder> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(IncidentRecorder {
            dir,
            config,
            collector,
            started: Instant::now(),
            written: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            last_write: Mutex::new(BTreeMap::new()),
            seq: AtomicU64::new(0),
            provider: Mutex::new(None),
        })
    }

    /// Installs the snapshot hook (replacing any previous one).
    pub fn set_provider(
        &self,
        provider: impl Fn(Option<TraceId>) -> Vec<(String, String)> + Send + Sync + 'static,
    ) {
        *self.provider.lock().unwrap_or_else(|e| e.into_inner()) = Some(Box::new(provider));
    }

    /// The directory reports are written into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Incidents written since construction.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Triggers coalesced into a preceding incident by the
    /// [`IncidentConfig::min_gap`] debounce.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Records one incident, returning its id (`None` when debounced or
    /// when the filesystem write failed — incident recording never
    /// takes the serving path down). The trigger is also logged at
    /// [`Level::Error`] under target `incident`, so the report's own
    /// event window carries it.
    pub fn record(&self, kind: &str, detail: &str, trace: Option<TraceId>) -> Option<String> {
        let kind = sanitize_kind(kind);
        {
            let mut last = self.last_write.lock().unwrap_or_else(|e| e.into_inner());
            let now = Instant::now();
            if let Some(prev) = last.get(&kind) {
                if now.saturating_duration_since(*prev) < self.config.min_gap {
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            last.insert(kind.clone(), now);
        }
        self.collector.record_traced(
            Level::Error,
            "incident",
            format!("{kind}: {detail}"),
            vec![("kind", Value::Str(kind.clone()))],
            trace,
        );
        let unix_ms = unix_ms_now();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let id = format!("inc-{unix_ms:013}-{seq:06}-{kind}");
        let body = self.render_report(&id, &kind, detail, trace, unix_ms);
        self.write_atomic(&id, body.as_bytes())?;
        self.written.fetch_add(1, Ordering::Relaxed);
        self.cleanup();
        Some(id)
    }

    /// Builds the report JSON.
    fn render_report(
        &self,
        id: &str,
        kind: &str,
        detail: &str,
        trace: Option<TraceId>,
        unix_ms: u64,
    ) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\",\"unix_ms\":{},\"uptime_s\":{}",
            json_escape(id),
            json_escape(kind),
            json_escape(detail),
            unix_ms,
            self.started.elapsed().as_secs_f64(),
        ));
        out.push_str(&format!(
            ",\"build\":{{\"pkg_version\":\"{}\",\"profile\":\"{}\"}}",
            env!("CARGO_PKG_VERSION"),
            if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        ));
        match trace {
            Some(trace) => out.push_str(&format!(",\"trace_id\":\"{trace}\"")),
            None => out.push_str(",\"trace_id\":null"),
        }
        let events = self.collector.recent();
        let skip = events.len().saturating_sub(self.config.last_events);
        out.push_str(",\"events\":[");
        for (i, event) in events[skip..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = render_line(event);
            out.push_str(line.trim_end());
        }
        out.push(']');
        out.push_str(&format!(
            ",\"events_dropped\":{}",
            self.collector.events_dropped()
        ));
        out.push_str(",\"sections\":{");
        let provider = self.provider.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(provider) = provider.as_ref() {
            let mut first = true;
            for (name, raw) in provider(trace) {
                if raw.is_empty() {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(&json_escape(&name));
                out.push_str("\":");
                out.push_str(&raw);
            }
        }
        out.push_str("}}");
        out
    }

    /// Temp sibling + fsync + rename, the same idiom the model
    /// artifacts publish with; all I/O errors are swallowed (`None`).
    fn write_atomic(&self, id: &str, body: &[u8]) -> Option<()> {
        let path = self.dir.join(format!("{id}.json"));
        let tmp = self.dir.join(format!("{id}.json.tmp"));
        let result = (|| -> std::io::Result<()> {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body)?;
            file.sync_all()?;
            std::fs::rename(&tmp, &path)?;
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return None;
        }
        Some(())
    }

    /// Deletes the oldest reports past the retention bound (ids embed a
    /// zero-padded wall timestamp + sequence, so the lexicographic
    /// order is chronological).
    fn cleanup(&self) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|name| name.ends_with(".json"))
            .collect();
        if ids.len() <= self.config.max_incidents {
            return;
        }
        ids.sort();
        let excess = ids.len() - self.config.max_incidents;
        for name in ids.into_iter().take(excess) {
            let _ = std::fs::remove_file(self.dir.join(name));
        }
    }

    /// Ids of the retained reports, oldest first.
    pub fn list(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut ids: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter_map(|name| name.strip_suffix(".json").map(str::to_string))
            .collect();
        ids.sort();
        ids
    }

    /// Reads one report body by id. Ids are restricted to
    /// `[A-Za-z0-9_-]` (no dots, no separators), so a hostile id can
    /// never traverse out of the incidents directory.
    pub fn read(&self, id: &str) -> Option<Vec<u8>> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return None;
        }
        std::fs::read(self.dir.join(format!("{id}.json"))).ok()
    }
}

/// Restricts an incident kind to a short `[a-z0-9_]` slug usable inside
/// a file name.
fn sanitize_kind(kind: &str) -> String {
    let slug: String = kind
        .chars()
        .map(|c| c.to_ascii_lowercase())
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .take(32)
        .collect();
    if slug.is_empty() {
        "incident".to_string()
    } else {
        slug
    }
}

/// Installs a process-wide panic hook that records an incident (kind
/// `panic`) before delegating to the previously installed hook. The
/// hook holds only a [`Weak`] reference: once the recorder is dropped
/// the hook degrades to a pure pass-through, so repeated installs from
/// short-lived stacks (tests) stay cheap.
pub fn install_panic_hook(recorder: &Arc<IncidentRecorder>) {
    let weak: Weak<IncidentRecorder> = Arc::downgrade(recorder);
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(recorder) = weak.upgrade() {
            recorder.record("panic", &info.to_string(), None);
        }
        prev(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    static TEMP_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_dir(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "snn-log-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        path
    }

    #[test]
    fn ring_overflow_keeps_newest_and_counts_drops_exactly() {
        let log = LogCollector::new(8);
        for i in 0..20u64 {
            log.record(Level::Info, "test.ring", format!("event {i}"), Vec::new());
        }
        let events = log.recent();
        assert_eq!(events.len(), 8, "ring retains exactly its capacity");
        assert_eq!(log.events_dropped(), 12, "drops counted exactly");
        assert_eq!(log.events_recorded(Level::Info), 20);
        // The retained window is the newest 8 events, in order.
        let messages: Vec<&str> = events.iter().map(|e| e.message.as_str()).collect();
        let expected: Vec<String> = (12..20).map(|i| format!("event {i}")).collect();
        assert_eq!(messages, expected);
    }

    #[test]
    fn below_min_level_records_nothing() {
        let log = LogCollector::new(16);
        log.set_min_level(Level::Warn);
        assert!(!log.level_enabled(Level::Info));
        log.record(Level::Info, "test", "dropped", Vec::new());
        debug!(log, "test", "also dropped {}", 1);
        log.record(Level::Error, "test", "kept", Vec::new());
        assert_eq!(log.events_recorded_total(), 1);
        assert_eq!(log.recent().len(), 1);
        log.disable();
        assert_eq!(log.min_level(), None);
        log.record(Level::Error, "test", "gone", Vec::new());
        assert_eq!(log.events_recorded_total(), 1);
    }

    #[test]
    fn macros_gate_before_evaluating_arguments() {
        let log = LogCollector::new(16);
        log.set_min_level(Level::Warn);
        let evaluated = std::cell::Cell::new(false);
        let probe = || {
            evaluated.set(true);
            7
        };
        info!(log, "test", "value {}", probe());
        assert!(
            !evaluated.get(),
            "below-level format args must not evaluate"
        );
        warn!(log, "test", { "k": 1u64 }, "value {}", probe());
        assert!(evaluated.get());
        let events = log.recent();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].attrs, vec![("k", Value::U64(1))]);
    }

    #[test]
    fn ambient_trace_context_stamps_events() {
        use snn_trace::{push_context, TraceCollector, TraceTarget};
        let traces = Arc::new(TraceCollector::new(64));
        let trace = traces.mint_trace();
        let log = LogCollector::new(16);
        log.record(Level::Info, "test", "before context", Vec::new());
        {
            let _guard = push_context(Arc::clone(&traces), vec![TraceTarget { trace, parent: 0 }]);
            log.record(Level::Info, "test", "inside context", Vec::new());
        }
        let events = log.recent();
        assert_eq!(events[0].trace, None);
        assert_eq!(events[1].trace, Some(trace));
    }

    #[test]
    fn spec_parses_overrides_and_survives_garbage() {
        let spec = LogSpec::parse("warn,gateway=info,gateway.access=debug");
        assert_eq!(spec.default_level(), Level::Warn);
        assert_eq!(spec.effective("runtime.batcher"), Level::Warn);
        assert_eq!(spec.effective("gateway.http"), Level::Info);
        assert_eq!(spec.effective("gateway.access"), Level::Debug);
        assert!(spec.enabled(Level::Debug, "gateway.access"));
        assert!(!spec.enabled(Level::Debug, "gateway.http"));
        assert_eq!(spec.most_verbose(), Level::Debug);

        // Malformed specs never panic and fall back to info.
        for garbage in [
            "",
            ",,,",
            "shout",
            "=debug",
            "gateway=",
            "gateway=verbose",
            "a=b=c",
            "🦀🦀🦀",
        ] {
            let spec = LogSpec::parse(garbage);
            assert_eq!(spec.default_level(), Level::Info, "spec {garbage:?}");
        }
        // A bad override is skipped without discarding the good ones.
        let spec = LogSpec::parse("error,runtime=bogus,gateway=warn");
        assert_eq!(spec.default_level(), Level::Error);
        assert_eq!(spec.effective("runtime"), Level::Error);
        assert_eq!(spec.effective("gateway"), Level::Warn);
    }

    #[test]
    fn sink_lines_never_interleave_across_threads() {
        let dir = temp_dir("sink");
        let path = dir.join("log.jsonl");
        let log = Arc::new(LogCollector::new(4096));
        let mut config = SinkConfig::file(&path, LogSpec::parse("info"));
        config.rate = None;
        log.set_sink(JsonSink::new(config).unwrap());

        let threads = 8;
        let per_thread = 100;
        let mut handles = Vec::new();
        for t in 0..threads {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    info!(
                        log,
                        "test.sink",
                        { "thread": t as u64, "i": i as u64 },
                        "thread {t} line {i} with a long-enough payload to tempt interleaving"
                    );
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), threads * per_thread);
        for line in &lines {
            let parsed: serde::Content = serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("unparseable sink line {line:?}: {e:?}"));
            let map = parsed.as_map().expect("line is an object");
            assert_eq!(
                serde::field(map, "target").unwrap().as_str(),
                Some("test.sink")
            );
            assert!(serde::field(map, "attrs").unwrap().as_map().is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_rate_limit_suppresses_and_counts() {
        let dir = temp_dir("rate");
        let path = dir.join("log.jsonl");
        let log = LogCollector::new(4096);
        let mut config = SinkConfig::file(&path, LogSpec::parse("info"));
        config.rate = Some(RateLimit {
            burst: 5,
            per_s: 0.0,
        });
        log.set_sink(JsonSink::new(config).unwrap());
        for i in 0..50u64 {
            log.record(Level::Warn, "test.hot", format!("line {i}"), Vec::new());
            // A different (level, target) key has its own bucket.
            log.record(Level::Error, "test.other", format!("line {i}"), Vec::new());
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 10, "5 per (level, target) key");
        assert_eq!(log.sink_suppressed(), 90);
        // The flight recorder is not rate limited: all 100 events kept.
        assert_eq!(log.events_recorded_total(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_spec_filters_by_target() {
        let dir = temp_dir("spec");
        let path = dir.join("log.jsonl");
        let log = LogCollector::new(64);
        log.set_min_level(Level::Debug);
        let mut config = SinkConfig::file(&path, LogSpec::parse("warn,test.chatty=debug"));
        config.rate = None;
        log.set_sink(JsonSink::new(config).unwrap());
        log.record(Level::Debug, "test.chatty", "kept by override", Vec::new());
        log.record(Level::Debug, "test.quiet", "filtered", Vec::new());
        log.record(Level::Info, "test.quiet", "filtered too", Vec::new());
        log.record(Level::Error, "test.quiet", "kept by default", Vec::new());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        // Everything still reached the flight recorder.
        assert_eq!(log.recent().len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recent_filtered_applies_level_and_target() {
        let log = LogCollector::new(64);
        log.set_min_level(Level::Debug);
        log.record(Level::Debug, "gateway.access", "a", Vec::new());
        log.record(Level::Warn, "gateway.access", "b", Vec::new());
        log.record(Level::Error, "runtime.batcher", "c", Vec::new());
        assert_eq!(log.recent_filtered(Some(Level::Warn), None).len(), 2);
        assert_eq!(log.recent_filtered(None, Some("gateway")).len(), 2);
        assert_eq!(
            log.recent_filtered(Some(Level::Warn), Some("gateway"))
                .len(),
            1
        );
    }

    #[test]
    fn incidents_write_atomically_with_lru_cleanup() {
        let dir = temp_dir("incidents");
        let log = Arc::new(LogCollector::new(64));
        log.record(Level::Warn, "test", "pre-incident context", Vec::new());
        let recorder = IncidentRecorder::new(
            &dir,
            Arc::clone(&log),
            IncidentConfig {
                max_incidents: 4,
                last_events: 8,
                min_gap: Duration::ZERO,
            },
        )
        .unwrap();
        recorder.set_provider(|_trace| {
            vec![("stats".to_string(), "{\"schema_version\":1}".to_string())]
        });
        let mut last_id = None;
        for i in 0..10 {
            let id = recorder.record("breaker_open", &format!("breaker {i}"), None);
            assert!(id.is_some(), "incident {i} must write");
            last_id = id;
        }
        assert_eq!(recorder.written(), 10);
        let ids = recorder.list();
        assert_eq!(ids.len(), 4, "LRU cleanup bounds the directory");
        assert!(ids.contains(last_id.as_ref().unwrap()));
        // No torn temp files remain.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().into_string().unwrap();
            assert!(name.ends_with(".json"), "stray file {name}");
        }
        // The report parses and carries the embedded section + events.
        let body = recorder.read(last_id.as_ref().unwrap()).unwrap();
        let parsed: serde::Content =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        let map = parsed.as_map().unwrap();
        assert_eq!(
            serde::field(map, "kind").unwrap().as_str(),
            Some("breaker_open")
        );
        let sections = serde::field(map, "sections").unwrap().as_map().unwrap();
        let stats = serde::field(sections, "stats").unwrap().as_map().unwrap();
        assert_eq!(
            serde::field(stats, "schema_version").unwrap().as_u64(),
            Some(1)
        );
        let events = serde::field(map, "events").unwrap().as_seq().unwrap();
        assert!(!events.is_empty());
        // Hostile ids never escape the directory.
        assert!(recorder.read("../../../etc/passwd").is_none());
        assert!(recorder.read("id.with.dots").is_none());
        assert!(recorder.read("").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incident_debounce_coalesces_storms() {
        let dir = temp_dir("debounce");
        let log = Arc::new(LogCollector::new(64));
        let recorder = IncidentRecorder::new(
            &dir,
            log,
            IncidentConfig {
                min_gap: Duration::from_secs(3600),
                ..IncidentConfig::default()
            },
        )
        .unwrap();
        assert!(recorder.record("quarantine", "first", None).is_some());
        for _ in 0..5 {
            assert!(recorder.record("quarantine", "storm", None).is_none());
        }
        // The gap is per kind: an unrelated panic flurry never swallows
        // the first report of a different failure.
        assert!(recorder.record("panic", "different kind", None).is_some());
        assert!(recorder.record("panic", "same kind again", None).is_none());
        assert_eq!(recorder.written(), 2);
        assert_eq!(recorder.coalesced(), 6);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panic_hook_records_an_incident() {
        let dir = temp_dir("panic");
        let log = Arc::new(LogCollector::new(64));
        let recorder = Arc::new(
            IncidentRecorder::new(
                &dir,
                log,
                IncidentConfig {
                    min_gap: Duration::ZERO,
                    ..IncidentConfig::default()
                },
            )
            .unwrap(),
        );
        install_panic_hook(&recorder);
        let result = std::panic::catch_unwind(|| panic!("deliberate test panic"));
        assert!(result.is_err());
        assert!(recorder.written() >= 1, "panic must write an incident");
        let ids = recorder.list();
        let body = recorder.read(&ids[ids.len() - 1]).unwrap();
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains("deliberate test panic"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
