//! # snn-trace — dependency-free request tracing for the serving stack
//!
//! Per-request, per-stage timelines for the TTFS serving path: a
//! [`TraceId`] is minted per request (or accepted from a client header),
//! every layer records [`Span`]s against it, and the whole lifecycle —
//! socket parse, JSON decode, batcher queue wait, EDF flush (with its
//! *reason*), per-CSR-stage execution, response write — becomes one
//! queryable tree.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path stays bit-identical and effectively free.** Tracing
//!    never touches the float accumulation; when disabled, opening a span
//!    is a single relaxed atomic load and an untaken branch.
//! 2. **No new dependencies.** The crate is `std`-only; Chrome trace JSON
//!    is rendered by hand (all span names are static identifiers).
//! 3. **Bounded memory.** Spans finish into per-thread buffers (one
//!    uncontended mutex each — the only other locker is a drain) and are
//!    drained into a bounded ring; when the ring is full the *oldest*
//!    spans are evicted and counted in
//!    [`spans_dropped`](TraceCollector::spans_dropped).
//!
//! Two recording APIs:
//!
//! * **Direct**: [`TraceCollector::span`] / the [`span!`] macro, for code
//!   that holds the collector and the request's [`TraceId`] — the gateway
//!   and the batcher.
//! * **Ambient context**: [`push_context`] + [`ctx_span`], for code deep
//!   inside the engine that must not thread trace arguments through its
//!   hot signatures. A worker pushes the batch's targets (one per traced
//!   request riding in the batch) before `run_batch`; every
//!   [`ctx_span`] inside then fans out one span per target, so each
//!   request's tree contains the per-stage execution spans of the batch
//!   it rode in. With no context pushed, [`ctx_span`] is a thread-local
//!   read and a `None` branch.
//!
//! Export surfaces: per-trace span trees ([`TraceCollector::trace`]) and
//! a whole-run Chrome `chrome://tracing` / Perfetto JSON
//! ([`TraceCollector::chrome_trace_json`]) with one track per recording
//! thread.

#![deny(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Spans buffered per thread before an eager flush into the ring (a drain
/// or query flushes everything regardless).
const SHARD_FLUSH_THRESHOLD: usize = 128;

/// Default bound on retained finished spans.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Identity of one traced request; rendered as 16 lowercase hex digits
/// (the wire form of the `x-snn-trace-id` header and the `trace_id`
/// response field). Never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// Wraps a raw id; `raw` must be nonzero (zero is reserved for "no
    /// trace" on the wire).
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != 0).then_some(Self(raw))
    }

    /// The raw 64-bit id.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit wire form (shorter strings are accepted as
    /// the low digits); `None` for non-hex, overlong, or zero input.
    pub fn parse_hex(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() || text.len() > 16 {
            return None;
        }
        u64::from_str_radix(text, 16).ok().and_then(Self::from_raw)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One span attribute value. Only static strings and numbers, so
/// recording a span allocates nothing but its (small) attribute vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue {
    /// A static string (flush reasons, stage kinds, backend names).
    Str(&'static str),
    /// An unsigned counter (spikes, edges, batch sizes).
    U64(u64),
    /// A measurement (energies, ratios).
    F64(f64),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Str(s) => f.write_str(s),
            Self::U64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        Self::U64(v.into())
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

/// One finished span, as stored and as returned by queries.
///
/// Timestamps are microseconds since the owning collector's epoch (its
/// construction instant), so spans recorded on different threads share
/// one monotonic axis and Chrome-trace `ts` values are direct.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// The request tree this span belongs to.
    pub trace: TraceId,
    /// Unique span id within the collector (never 0).
    pub span_id: u64,
    /// Parent span id; 0 marks a root.
    pub parent_id: u64,
    /// Static span name (see the taxonomy in `docs/OBSERVABILITY.md`).
    pub name: &'static str,
    /// Start, µs since the collector epoch.
    pub start_us: u64,
    /// Duration, µs (0 for instantaneous marks).
    pub dur_us: u64,
    /// Recording-thread track index (see [`TraceCollector::tracks`]).
    pub track: u32,
    /// Attributes, in recording order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanSnapshot {
    /// End instant, µs since the collector epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// The value of attribute `key`, if recorded.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// One recording thread's buffer: only its owner pushes, only a drain
/// takes, so the mutex is uncontended on the hot path.
#[derive(Debug)]
struct ThreadShard {
    track: u32,
    label: String,
    buf: Mutex<Vec<SpanSnapshot>>,
}

thread_local! {
    /// This thread's shard per collector id (pruned when collectors die).
    static SHARDS: RefCell<Vec<(u64, Arc<ThreadShard>)>> = const { RefCell::new(Vec::new()) };
}

thread_local! {
    /// The ambient trace context (see [`push_context`]).
    static CONTEXT: RefCell<Option<ActiveContext>> = const { RefCell::new(None) };
}

/// Process-wide collector id source (so thread-local shard entries can
/// tell collectors apart).
static NEXT_COLLECTOR_ID: AtomicU64 = AtomicU64::new(1);

/// The bounded span sink shared by every layer of one serving stack.
///
/// Disabled-path cost of every recording API is one relaxed atomic load.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use snn_trace::{span, TraceCollector};
///
/// let collector = Arc::new(TraceCollector::new(1024));
/// let trace = collector.mint_trace();
/// {
///     let mut root = span!(collector, trace, 0, "http.request");
///     let child = span!(collector, trace, root.id(), "request.decode", {
///         bytes: 512usize,
///     });
///     drop(child);
///     root.attr("status", 200u64);
/// }
/// let spans = collector.trace(trace);
/// assert_eq!(spans.len(), 2);
/// assert!(spans.iter().any(|s| s.name == "request.decode"));
/// ```
#[derive(Debug)]
pub struct TraceCollector {
    id: u64,
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    shards: Mutex<Vec<Arc<ThreadShard>>>,
    ring: Mutex<VecDeque<SpanSnapshot>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
    next_span: AtomicU64,
    next_trace: AtomicU64,
}

impl TraceCollector {
    /// Creates an **enabled** collector retaining at most `capacity`
    /// finished spans (0 → [`DEFAULT_CAPACITY`]); disable with
    /// [`set_enabled`](Self::set_enabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            id: NEXT_COLLECTOR_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            capacity: if capacity == 0 {
                DEFAULT_CAPACITY
            } else {
                capacity
            },
            shards: Mutex::new(Vec::new()),
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            next_span: AtomicU64::new(1),
            next_trace: AtomicU64::new(1),
        }
    }

    /// Whether spans are currently recorded — THE hot-path gate, read with
    /// a single relaxed load by every recording API.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (spans already retained stay queryable).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Mints a fresh nonzero [`TraceId`] (collector id in the high bits,
    /// so stacks running side by side never collide).
    pub fn mint_trace(&self) -> TraceId {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        TraceId((self.id << 40) | (n & 0xFF_FFFF_FFFF) | (1 << 39))
    }

    /// Allocates a span id without recording anything — for pre-naming a
    /// parent whose children are recorded before it finishes.
    pub fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds from the collector epoch to `at` (0 if `at` precedes
    /// the epoch).
    pub fn us_since_epoch(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Opens a live span; it records when dropped (or
    /// [`finish`](Span::finish)ed). Disabled collectors return an inert
    /// guard whose [`id`](Span::id) is 0.
    pub fn span(self: &Arc<Self>, trace: TraceId, parent_id: u64, name: &'static str) -> Span {
        if !self.is_enabled() {
            return Span { state: None };
        }
        Span {
            state: Some(SpanState {
                collector: Arc::clone(self),
                trace,
                parent_id,
                span_id: self.next_span_id(),
                name,
                start: Instant::now(),
                attrs: Vec::new(),
            }),
        }
    }

    /// Records one finished span from explicit instants, returning its
    /// freshly allocated id (0 when disabled). For code that learns a
    /// span's bounds after the fact (queue waits measured at dispatch).
    pub fn record_span(
        &self,
        trace: TraceId,
        parent_id: u64,
        name: &'static str,
        start: Instant,
        end: Instant,
        attrs: Vec<(&'static str, AttrValue)>,
    ) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let span_id = self.next_span_id();
        self.record_span_with_id(span_id, trace, parent_id, name, start, end, attrs);
        span_id
    }

    /// [`record_span`](Self::record_span) with a pre-allocated id (see
    /// [`next_span_id`](Self::next_span_id)).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span_with_id(
        &self,
        span_id: u64,
        trace: TraceId,
        parent_id: u64,
        name: &'static str,
        start: Instant,
        end: Instant,
        attrs: Vec<(&'static str, AttrValue)>,
    ) {
        if !self.is_enabled() || span_id == 0 {
            return;
        }
        let start_us = self.us_since_epoch(start);
        let end_us = self.us_since_epoch(end);
        self.push_record(SpanSnapshot {
            trace,
            span_id,
            parent_id,
            name,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            track: 0, // stamped by the shard below
            attrs,
        });
    }

    /// Buffers one finished span on this thread's shard, flushing the
    /// shard into the ring past the threshold.
    fn push_record(&self, mut record: SpanSnapshot) {
        let shard = self.shard_for_current_thread();
        record.track = shard.track;
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let overflow = {
            let mut buf = shard.buf.lock().expect("trace shard poisoned");
            buf.push(record);
            if buf.len() >= SHARD_FLUSH_THRESHOLD {
                std::mem::take(&mut *buf)
            } else {
                Vec::new()
            }
        };
        if !overflow.is_empty() {
            self.flush_to_ring(overflow);
        }
    }

    /// This thread's shard for this collector, registering one (and its
    /// track) on first use.
    fn shard_for_current_thread(&self) -> Arc<ThreadShard> {
        SHARDS.with(|cell| {
            let mut entries = cell.borrow_mut();
            if let Some((_, shard)) = entries.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(shard);
            }
            let label = std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string();
            let shard = {
                let mut shards = self.shards.lock().expect("trace shards poisoned");
                let shard = Arc::new(ThreadShard {
                    track: shards.len() as u32,
                    label,
                    buf: Mutex::new(Vec::new()),
                });
                shards.push(Arc::clone(&shard));
                shard
            };
            // Entries whose collector died hold the only other Arc; prune
            // them so long-lived threads stay bounded across collectors.
            entries.retain(|(_, s)| Arc::strong_count(s) > 1);
            entries.push((self.id, Arc::clone(&shard)));
            shard
        })
    }

    /// Moves finished spans into the bounded ring, evicting (and
    /// counting) the oldest on overflow.
    fn flush_to_ring(&self, records: Vec<SpanSnapshot>) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        for record in records {
            if ring.len() >= self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(record);
        }
    }

    /// Drains every thread's shard into the ring (queries call this so a
    /// span recorded before the query is always visible).
    fn drain_shards(&self) {
        let shards: Vec<Arc<ThreadShard>> = self
            .shards
            .lock()
            .expect("trace shards poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        for shard in shards {
            let taken = std::mem::take(&mut *shard.buf.lock().expect("trace shard poisoned"));
            if !taken.is_empty() {
                self.flush_to_ring(taken);
            }
        }
    }

    /// Every retained span of `trace`, sorted by start time then id;
    /// empty when the trace is unknown (or evicted).
    pub fn trace(&self, trace: TraceId) -> Vec<SpanSnapshot> {
        self.drain_shards();
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut spans: Vec<SpanSnapshot> =
            ring.iter().filter(|s| s.trace == trace).cloned().collect();
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        spans
    }

    /// Every retained span, sorted by start time then id.
    pub fn snapshot(&self) -> Vec<SpanSnapshot> {
        self.drain_shards();
        let ring = self.ring.lock().expect("trace ring poisoned");
        let mut spans: Vec<SpanSnapshot> = ring.iter().cloned().collect();
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        spans
    }

    /// Spans recorded since construction (including later-evicted ones).
    pub fn spans_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted from the full ring since construction.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Spans currently retained in the ring (occupancy against
    /// [`capacity`](Self::capacity)). Drains the per-thread shards first
    /// so the figure reflects everything recorded so far.
    pub fn ring_len(&self) -> usize {
        self.drain_shards();
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// Recording-thread tracks as `(track, thread name)` pairs, ascending
    /// by track.
    pub fn tracks(&self) -> Vec<(u32, String)> {
        self.shards
            .lock()
            .expect("trace shards poisoned")
            .iter()
            .map(|s| (s.track, s.label.clone()))
            .collect()
    }

    /// Discards every retained span and resets the recorded/dropped
    /// counters (tracks persist — threads keep their shards).
    pub fn clear(&self) {
        self.drain_shards();
        self.ring.lock().expect("trace ring poisoned").clear();
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Renders every retained span as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form `chrome://tracing` and
    /// Perfetto load): one complete (`"ph":"X"`) event per span, one
    /// metadata track per recording thread, timestamps in µs since the
    /// collector epoch.
    pub fn chrome_trace_json(&self) -> String {
        let spans = self.snapshot();
        let tracks = self.tracks();
        let mut out = String::with_capacity(128 + spans.len() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (track, label) in &tracks {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":\"{}\"}}}}",
                json_escape(label)
            ));
        }
        for span in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"snn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{}\",\"span\":{},\"parent\":{}",
                json_escape(span.name),
                span.start_us,
                span.dur_us,
                span.track,
                span.trace,
                span.span_id,
                span.parent_id,
            ));
            for (key, value) in &span.attrs {
                out.push_str(&format!(",\"{}\":", json_escape(key)));
                match value {
                    AttrValue::Str(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
                    AttrValue::U64(v) => out.push_str(&v.to_string()),
                    AttrValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
                    AttrValue::F64(v) => out.push_str(&format!("\"{v}\"")),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// span names and attr keys are static identifiers, but thread names are
/// arbitrary.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A live span that records itself into its collector when dropped.
/// Inert (all methods no-ops, [`id`](Self::id) = 0) when the collector
/// was disabled at open time.
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

#[derive(Debug)]
struct SpanState {
    collector: Arc<TraceCollector>,
    trace: TraceId,
    parent_id: u64,
    span_id: u64,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// This span's id, for parenting children; 0 when inert.
    pub fn id(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.span_id)
    }

    /// Whether the span will actually record.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches an attribute (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(state) = self.state.as_mut() {
            state.attrs.push((key, value.into()));
        }
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.collector.record_span_with_id(
                state.span_id,
                state.trace,
                state.parent_id,
                state.name,
                state.start,
                Instant::now(),
                state.attrs,
            );
        }
    }
}

/// Opens a span on a collector, optionally with inline attributes:
///
/// ```
/// # use std::sync::Arc;
/// # use snn_trace::{span, TraceCollector};
/// # let collector = Arc::new(TraceCollector::new(64));
/// # let trace = collector.mint_trace();
/// let s = span!(collector, trace, 0, "batch.flush", { reason: "edf_deadline", batch_size: 4usize });
/// drop(s);
/// # assert_eq!(collector.trace(trace).len(), 1);
/// ```
#[macro_export]
macro_rules! span {
    ($collector:expr, $trace:expr, $parent:expr, $name:expr) => {
        $collector.span($trace, $parent, $name)
    };
    ($collector:expr, $trace:expr, $parent:expr, $name:expr, { $($key:ident : $value:expr),* $(,)? }) => {{
        let mut __span = $collector.span($trace, $parent, $name);
        $( __span.attr(stringify!($key), $value); )*
        __span
    }};
}

/// One `(trace, parent span)` attachment point for ambient-context spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceTarget {
    /// The request tree to record into.
    pub trace: TraceId,
    /// The span id new context spans hang under.
    pub parent: u64,
}

/// The ambient context [`ctx_span`] fans out to.
#[derive(Debug)]
struct ActiveContext {
    collector: Arc<TraceCollector>,
    targets: Vec<TraceTarget>,
}

/// Installs an ambient trace context on the current thread for the
/// guard's lifetime: every [`ctx_span`] opened underneath records one
/// span per target (a batch's worth of traced requests). Contexts nest;
/// the previous one is restored on drop. The guard is `!Send` by
/// construction (thread-local state).
pub fn push_context(collector: Arc<TraceCollector>, targets: Vec<TraceTarget>) -> ContextGuard {
    let prev = CONTEXT.with(|cell| {
        cell.borrow_mut()
            .replace(ActiveContext { collector, targets })
    });
    ContextGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// Whether an ambient context is installed on this thread.
pub fn context_active() -> bool {
    CONTEXT.with(|cell| cell.borrow().is_some())
}

/// The trace ids the ambient context currently targets, in target order
/// (empty when no context is installed). This is how non-span telemetry
/// (structured log events) correlates with the request tree for free:
/// anything recorded under a [`push_context`] window can stamp itself
/// with the same trace id the spans carry.
pub fn current_trace_ids() -> Vec<TraceId> {
    CONTEXT.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|ctx| ctx.targets.iter().map(|t| t.trace).collect())
            .unwrap_or_default()
    })
}

/// Restores the previous ambient context on drop (see [`push_context`]).
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<ActiveContext>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CONTEXT.with(|cell| *cell.borrow_mut() = prev);
    }
}

/// Opens a span against the ambient context: one span per context target,
/// each parented under the target's current parent, with the targets'
/// parents re-pointed at this span for its lifetime so nested
/// [`ctx_span`]s build a tree. With no context installed (the common
/// disabled path) this is a thread-local read and an untaken branch.
pub fn ctx_span(name: &'static str) -> CtxSpan {
    CONTEXT.with(|cell| {
        let mut borrowed = cell.borrow_mut();
        let Some(ctx) = borrowed.as_mut() else {
            return CtxSpan { state: None };
        };
        let mut entries = Vec::with_capacity(ctx.targets.len());
        for target in ctx.targets.iter_mut() {
            let span_id = ctx.collector.next_span_id();
            entries.push((target.trace, span_id, target.parent));
            target.parent = span_id;
        }
        CtxSpan {
            state: Some(CtxSpanState {
                collector: Arc::clone(&ctx.collector),
                name,
                start: Instant::now(),
                entries,
                attrs: Vec::new(),
            }),
        }
    })
}

/// A live ambient-context span (see [`ctx_span`]); records one span per
/// context target when dropped. Must be dropped before its enclosing
/// [`ContextGuard`] (the natural nesting).
#[derive(Debug)]
pub struct CtxSpan {
    state: Option<CtxSpanState>,
}

#[derive(Debug)]
struct CtxSpanState {
    collector: Arc<TraceCollector>,
    name: &'static str,
    start: Instant,
    /// `(trace, this span's id for that trace, saved parent to restore)`.
    entries: Vec<(TraceId, u64, u64)>,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl CtxSpan {
    /// Whether the span will actually record.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches an attribute to every fanned-out span (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(state) = self.state.as_mut() {
            state.attrs.push((key, value.into()));
        }
    }
}

impl Drop for CtxSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let end = Instant::now();
        // Restore each target's parent (stack discipline: this span's ids
        // are the current parents).
        CONTEXT.with(|cell| {
            if let Some(ctx) = cell.borrow_mut().as_mut() {
                for (i, target) in ctx.targets.iter_mut().enumerate() {
                    if let Some((trace, span_id, saved)) = state.entries.get(i) {
                        if target.trace == *trace && target.parent == *span_id {
                            target.parent = *saved;
                        }
                    }
                }
            }
        });
        for (trace, span_id, parent) in &state.entries {
            state.collector.record_span_with_id(
                *span_id,
                *trace,
                *parent,
                state.name,
                state.start,
                end,
                state.attrs.clone(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn trace_id_wire_roundtrip() {
        let id = TraceId::from_raw(0xDEAD_BEEF).unwrap();
        assert_eq!(id.to_string(), "00000000deadbeef");
        assert_eq!(TraceId::parse_hex(&id.to_string()), Some(id));
        assert_eq!(TraceId::parse_hex("deadbeef"), Some(id));
        assert_eq!(TraceId::parse_hex("0"), None, "zero is reserved");
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("not-hex"), None);
        assert_eq!(TraceId::parse_hex("11112222333344445"), None, "overlong");
    }

    #[test]
    fn spans_record_and_query_by_trace() {
        let c = Arc::new(TraceCollector::new(64));
        let t1 = c.mint_trace();
        let t2 = c.mint_trace();
        assert_ne!(t1, t2);
        let root = {
            let mut root = c.span(t1, 0, "root");
            let mut child = span!(c, t1, root.id(), "child", { edges: 42usize });
            child.attr("kind", "weighted");
            drop(child);
            root.attr("status", 200u64);
            let id = root.id();
            drop(root);
            id
        };
        drop(span!(c, t2, 0, "other"));

        let spans = c.trace(t1);
        assert_eq!(spans.len(), 2);
        let root_span = spans.iter().find(|s| s.name == "root").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(root_span.span_id, root);
        assert_eq!(root_span.parent_id, 0);
        assert_eq!(child.parent_id, root);
        assert_eq!(child.attr("edges"), Some(&AttrValue::U64(42)));
        assert_eq!(child.attr("kind"), Some(&AttrValue::Str("weighted")));
        assert!(child.start_us >= root_span.start_us);
        assert!(child.end_us() <= root_span.end_us());
        assert_eq!(c.trace(t2).len(), 1);
        assert_eq!(c.spans_recorded(), 3);
        assert_eq!(c.spans_dropped(), 0);
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Arc::new(TraceCollector::new(64));
        c.set_enabled(false);
        let t = c.mint_trace();
        let mut s = c.span(t, 0, "noop");
        assert!(!s.is_recording());
        assert_eq!(s.id(), 0);
        s.attr("k", 1u64);
        drop(s);
        assert_eq!(
            c.record_span(t, 0, "direct", Instant::now(), Instant::now(), Vec::new()),
            0
        );
        assert_eq!(c.spans_recorded(), 0);
        assert!(c.trace(t).is_empty());
    }

    #[test]
    fn ring_eviction_counts_drops_oldest_first() {
        let c = Arc::new(TraceCollector::new(4));
        let t = c.mint_trace();
        let base = Instant::now();
        for i in 0..10u64 {
            c.record_span(
                t,
                0,
                "s",
                base + Duration::from_micros(i),
                base + Duration::from_micros(i + 1),
                vec![("i", AttrValue::U64(i))],
            );
        }
        let spans = c.trace(t);
        assert_eq!(spans.len(), 4, "ring bounded");
        assert_eq!(c.spans_recorded(), 10);
        assert_eq!(c.spans_dropped(), 6);
        // The survivors are the newest.
        assert_eq!(spans[0].attr("i"), Some(&AttrValue::U64(6)));
    }

    #[test]
    fn ctx_spans_fan_out_and_nest_per_target() {
        let c = Arc::new(TraceCollector::new(256));
        let ta = c.mint_trace();
        let tb = c.mint_trace();
        let pa = c.next_span_id();
        let pb = c.next_span_id();
        assert!(!context_active());
        {
            let _guard = push_context(
                Arc::clone(&c),
                vec![
                    TraceTarget {
                        trace: ta,
                        parent: pa,
                    },
                    TraceTarget {
                        trace: tb,
                        parent: pb,
                    },
                ],
            );
            assert!(context_active());
            let mut outer = ctx_span("chunk");
            assert!(outer.is_recording());
            outer.attr("lanes", 2usize);
            let inner = ctx_span("stage.exec");
            drop(inner);
            drop(outer);
            // After the outer span closed, new spans re-attach at the
            // original parents.
            drop(ctx_span("tail"));
        }
        assert!(!context_active());
        let inert = ctx_span("no-context");
        assert!(!inert.is_recording());

        for (trace, parent) in [(ta, pa), (tb, pb)] {
            let spans = c.trace(trace);
            assert_eq!(spans.len(), 3, "chunk + stage + tail per target");
            let chunk = spans.iter().find(|s| s.name == "chunk").unwrap();
            let stage = spans.iter().find(|s| s.name == "stage.exec").unwrap();
            let tail = spans.iter().find(|s| s.name == "tail").unwrap();
            assert_eq!(chunk.parent_id, parent);
            assert_eq!(stage.parent_id, chunk.span_id);
            assert_eq!(tail.parent_id, parent, "parent restored after close");
            assert_eq!(chunk.attr("lanes"), Some(&AttrValue::U64(2)));
            assert!(stage.start_us >= chunk.start_us);
            assert!(stage.end_us() <= chunk.end_us());
        }
    }

    #[test]
    fn concurrent_threads_get_distinct_tracks() {
        let c = Arc::new(TraceCollector::new(4096));
        let mut handles = Vec::new();
        for i in 0..4 {
            let c = Arc::clone(&c);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("trace-test-{i}"))
                    .spawn(move || {
                        let t = c.mint_trace();
                        for _ in 0..50 {
                            drop(c.span(t, 0, "work"));
                        }
                        t
                    })
                    .unwrap(),
            );
        }
        let traces: Vec<TraceId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(c.spans_recorded(), 200);
        for t in traces {
            assert_eq!(c.trace(t).len(), 50, "no cross-thread interleaving");
        }
        let tracks = c.tracks();
        assert_eq!(tracks.len(), 4);
        let labels: Vec<&str> = tracks.iter().map(|(_, l)| l.as_str()).collect();
        for i in 0..4 {
            assert!(labels.contains(&format!("trace-test-{i}").as_str()));
        }
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let c = Arc::new(TraceCollector::new(64));
        let t = c.mint_trace();
        let mut s = c.span(t, 0, "stage.exec");
        s.attr("kind", "weighted");
        s.attr("edges", 1234usize);
        s.attr("share", 0.25f64);
        drop(s);
        let json = c.chrome_trace_json();
        let value: serde::Content = serde_json::from_str(&json).expect("valid JSON");
        let events = serde::field(value.as_map().expect("top-level object"), "traceEvents")
            .ok()
            .and_then(|e| e.as_seq())
            .expect("traceEvents array");
        // One thread_name metadata event + one complete event.
        assert_eq!(events.len(), 2);
        let get = |e: &serde::Content, key: &str| -> Option<serde::Content> {
            e.as_map().and_then(|m| serde::field(m, key).ok()).cloned()
        };
        let complete = events
            .iter()
            .find(|e| get(e, "ph").and_then(|p| p.as_str().map(String::from)) == Some("X".into()))
            .expect("one complete event");
        assert_eq!(
            get(complete, "name").and_then(|n| n.as_str().map(String::from)),
            Some("stage.exec".into())
        );
        assert!(get(complete, "ts").is_some() && get(complete, "dur").is_some());
        let args = get(complete, "args").expect("args object");
        assert_eq!(
            get(&args, "kind").and_then(|v| v.as_str().map(String::from)),
            Some("weighted".into())
        );
        assert_eq!(get(&args, "edges").and_then(|v| v.as_u64()), Some(1234));
        assert_eq!(
            get(&args, "trace").and_then(|v| v.as_str().map(String::from)),
            Some(t.to_string())
        );
    }

    #[test]
    fn clear_resets_retention_and_counters() {
        let c = Arc::new(TraceCollector::new(8));
        let t = c.mint_trace();
        drop(c.span(t, 0, "a"));
        assert_eq!(c.spans_recorded(), 1);
        c.clear();
        assert_eq!(c.spans_recorded(), 0);
        assert_eq!(c.spans_dropped(), 0);
        assert!(c.snapshot().is_empty());
        drop(c.span(t, 0, "b"));
        assert_eq!(c.trace(t).len(), 1);
    }
}
