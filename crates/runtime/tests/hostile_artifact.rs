//! Hostile-artifact coverage for the model registry: truncated files,
//! corrupted checksums, wrong magic, future format versions, oversized
//! declared section lengths, and plain binary garbage. The invariant under
//! test everywhere: **a typed [`ArtifactError`], never a panic** — and
//! after every attack the registry still loads and serves a good model.

use std::fs;
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{
    ArtifactError, BackendHint, ModelArtifact, ModelRegistry, RegistryConfig, RegistryError,
};
use snn_tensor::Tensor;
use ttfs_core::{convert, Base2Kernel};

const DIMS: [usize; 3] = [1, 3, 4];

/// Scratch artifact directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("snn_hostile_artifact_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn dense_artifact(name: &str, version: &str, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    ModelArtifact::build(name, version, model, &DIMS, BackendHint::Csr).unwrap()
}

/// A registry dir seeded with one known-good artifact plus one attack
/// file, and the valid bytes the attack mutates.
fn hostile_registry(tag: &str, attack: impl FnOnce(&mut Vec<u8>)) -> (TempDir, ModelRegistry) {
    let dir = TempDir::new(tag);
    dense_artifact("good", "1", 7)
        .save(dir.path().join("good@1.snna"))
        .unwrap();
    let mut bytes = dense_artifact("bad", "1", 8).to_bytes().unwrap();
    attack(&mut bytes);
    fs::write(dir.path().join("bad@1.snna"), &bytes).unwrap();
    let registry = ModelRegistry::open(dir.path(), RegistryConfig::default()).unwrap();
    (dir, registry)
}

/// The liveness probe: the good model still loads, compiles, and answers
/// an inference end to end.
fn assert_serviceable(registry: &ModelRegistry) {
    let handle = registry
        .get_or_load("good")
        .expect("registry must stay serviceable after an attack");
    let response = handle
        .server()
        .submit(&Tensor::full(&DIMS, 0.5))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(response.logits.dims(), &[3]);
}

/// The typed artifact error a poisoned catalog entry replays to callers.
fn artifact_error(registry: &ModelRegistry, spec: &str) -> ArtifactError {
    match registry.get_or_load(spec) {
        Err(RegistryError::Artifact(e)) => e,
        other => panic!("expected a typed artifact error for {spec}, got {other:?}"),
    }
}

#[test]
fn truncated_artifacts_are_rejected_with_typed_errors() {
    let full_len = dense_artifact("bad", "1", 8).to_bytes().unwrap().len();
    // Cut mid-payload, mid-header, mid-magic, and down to nothing.
    for keep in [full_len / 2, 20, 5, 0] {
        let (_dir, registry) =
            hostile_registry(&format!("trunc{keep}"), |bytes| bytes.truncate(keep));
        match artifact_error(&registry, "bad@1") {
            ArtifactError::Truncated { needed, available } => {
                assert!(
                    needed > available,
                    "needed {needed} vs available {available}"
                );
            }
            other => panic!("expected Truncated for keep={keep}, got {other:?}"),
        }
        assert_serviceable(&registry);
        registry.shutdown();
    }
}

#[test]
fn corrupted_payload_fails_the_checksum() {
    let (_dir, registry) = hostile_registry("bitflip", |bytes| {
        // Flip one bit deep in the weight payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
    });
    match artifact_error(&registry, "bad@1") {
        ArtifactError::ChecksumMismatch { stored, computed } => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn wrong_magic_is_rejected_before_anything_else() {
    let (_dir, registry) = hostile_registry("magic", |bytes| {
        bytes[..8].copy_from_slice(b"GGUFGGUF");
    });
    match artifact_error(&registry, "bad@1") {
        ArtifactError::BadMagic { found } => assert_eq!(found, b"GGUFGGUF".to_vec()),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn future_format_version_is_rejected_without_a_checksum_pass() {
    let (_dir, registry) = hostile_registry("futurever", |bytes| {
        // Version field sits right after the 8-byte magic. The stale
        // checksum must NOT mask the version error: version is checked
        // first so old readers give new formats a clear refusal.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    });
    match artifact_error(&registry, "bad@1") {
        ArtifactError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 99);
            assert_eq!(supported, snn_runtime::ARTIFACT_FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn oversized_declared_header_length_is_rejected() {
    let (_dir, registry) = hostile_registry("bigheader", |bytes| {
        // header_len u32 follows magic + version. Declare ~4 GiB.
        bytes[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    });
    match artifact_error(&registry, "bad@1") {
        ArtifactError::OversizedLength { field, declared } => {
            assert_eq!(field, "header");
            assert_eq!(declared, u64::from(u32::MAX));
        }
        other => panic!("expected OversizedLength, got {other:?}"),
    }
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn oversized_declared_payload_length_is_rejected() {
    let (_dir, registry) = hostile_registry("bigpayload", |bytes| {
        // payload_len u64 follows the header JSON.
        let header_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let at = 16 + header_len;
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    });
    match artifact_error(&registry, "bad@1") {
        ArtifactError::OversizedLength { field, declared } => {
            assert_eq!(field, "payload");
            assert_eq!(declared, u64::MAX);
        }
        other => panic!("expected OversizedLength, got {other:?}"),
    }
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn binary_garbage_with_the_right_extension_never_panics() {
    let (_dir, registry) = hostile_registry("garbage", |bytes| {
        let len = bytes.len();
        bytes.clear();
        // Deterministic pseudo-noise: no valid magic, no valid framing.
        bytes.extend((0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(101)));
    });
    // Any typed error is acceptable; reaching here at all proves no panic.
    let err = artifact_error(&registry, "bad@1");
    assert!(matches!(err, ArtifactError::BadMagic { .. }));
    assert_serviceable(&registry);
    registry.shutdown();
}

#[test]
fn poisoned_entries_are_cataloged_as_unreadable_not_hidden() {
    let (_dir, registry) = hostile_registry("listing", |bytes| bytes.truncate(10));
    let rows = registry.list();
    let bad = rows
        .iter()
        .find(|r| r.name == "bad" || r.name == "bad@1")
        .expect("attack file must appear in the listing");
    assert_eq!(bad.state, "unreadable");
    let good = rows.iter().find(|r| r.name == "good").unwrap();
    assert_eq!(good.state, "cold");
    assert_serviceable(&registry);
    // Now resident.
    assert!(registry.list().iter().any(|r| r.state == "resident"));
    registry.shutdown();
}
