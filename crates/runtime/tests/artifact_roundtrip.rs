//! Property test: artifact save → load → compile round-trips are
//! **bit-exact** end to end. For random models (random layer shapes,
//! random quant bit widths 3–7) and every serving backend (f32 CSR, LUT
//! decode, shift-add decode), an engine compiled from a
//! serialized-then-deserialized artifact produces logits bit-identical to
//! an engine compiled from the in-memory model — the guarantee that lets
//! a serving box load models from disk without re-validating them against
//! a reference process.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snn_nn::{
    ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu, Sequential,
};
use snn_runtime::{BackendHint, DecodeMode, ModelArtifact, QuantConfig};
use snn_tensor::{uniform, Conv2dSpec};
use ttfs_core::{convert, Base2Kernel, SnnModel};

/// A random small model: optionally a conv + pool stage, then one or two
/// dense layers of random widths. Returns the model and its per-sample
/// input dims.
fn random_model(rng: &mut StdRng) -> (SnnModel, Vec<usize>) {
    let classes = rng.gen_range(2..=5);
    let (layers, input_dims) = if rng.gen_bool(0.5) {
        // Conv stage: side 6 or 8, 1 input channel, random out channels.
        let side = if rng.gen_bool(0.5) { 6 } else { 8 };
        let out_c = rng.gen_range(2..=4);
        let hidden = out_c * (side / 2) * (side / 2);
        (
            vec![
                Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, out_c, 3, 1, 1), rng)),
                Layer::Activation(ActivationLayer::new(Box::new(Relu))),
                Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
                Layer::Flatten(Flatten::new()),
                Layer::Dense(DenseLayer::new(hidden, classes, rng)),
            ],
            vec![1, side, side],
        )
    } else {
        // Dense stack: random flat input and hidden widths.
        let h = rng.gen_range(2..=5);
        let w = rng.gen_range(2..=5);
        let hidden = rng.gen_range(4..=12);
        (
            vec![
                Layer::Flatten(Flatten::new()),
                Layer::Dense(DenseLayer::new(h * w, hidden, rng)),
                Layer::Activation(ActivationLayer::new(Box::new(Relu))),
                Layer::Dense(DenseLayer::new(hidden, classes, rng)),
            ],
            vec![1, h, w],
        )
    };
    let model = convert(&Sequential::new(layers), Base2Kernel::paper_default(), 24).unwrap();
    (model, input_dims)
}

/// Runs one backend hint through the full round-trip and asserts logit
/// bit-equality between the in-memory compile and the artifact compile.
fn assert_roundtrip_bit_identical(
    model: &SnnModel,
    input_dims: &[usize],
    hint: BackendHint,
    rng: &mut StdRng,
) {
    let artifact = ModelArtifact::build("prop", "v1", model.clone(), input_dims, hint.clone())
        .expect("artifact builds");
    let bytes = artifact.to_bytes().expect("serializes");
    let restored = ModelArtifact::from_bytes(&bytes).expect("deserializes");
    assert_eq!(restored.info, artifact.info);

    let (from_memory, _) = artifact.compile().expect("in-memory compile");
    let (from_disk, _) = restored.compile().expect("artifact compile");

    let mut batch_dims = vec![3usize];
    batch_dims.extend_from_slice(input_dims);
    let x = uniform(&batch_dims, 0.0, 1.0, rng);
    let (mem_logits, _) = from_memory.run_batch(&x).expect("in-memory run");
    let (disk_logits, _) = from_disk.run_batch(&x).expect("artifact run");
    let mem_bits: Vec<u32> = mem_logits.as_slice().iter().map(|f| f.to_bits()).collect();
    let disk_bits: Vec<u32> = disk_logits.as_slice().iter().map(|f| f.to_bits()).collect();
    assert_eq!(
        mem_bits,
        disk_bits,
        "{} logits must be bit-identical through the artifact round-trip",
        hint.label()
    );
}

#[test]
fn random_models_roundtrip_bit_identical_on_every_backend() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x00A1_1FA0 + seed);
        let (model, input_dims) = random_model(&mut rng);
        // Random quant bit width in the paper's practical 3–7 range.
        let bits = rng.gen_range(3..=7u8);
        let base = QuantConfig::default().base;
        for hint in [
            BackendHint::Csr,
            BackendHint::Quant {
                base,
                bits,
                shift_add: false,
            },
            BackendHint::Quant {
                base,
                bits,
                shift_add: true,
            },
        ] {
            assert_roundtrip_bit_identical(&model, &input_dims, hint, &mut rng);
        }
    }
}

#[test]
fn quant_config_survives_the_trip() {
    let mut rng = StdRng::seed_from_u64(99);
    let (model, input_dims) = random_model(&mut rng);
    for bits in 3..=7u8 {
        let hint = BackendHint::Quant {
            base: QuantConfig::default().base,
            bits,
            shift_add: false,
        };
        let artifact = ModelArtifact::build("cfg", "v1", model.clone(), &input_dims, hint).unwrap();
        let back = ModelArtifact::from_bytes(&artifact.to_bytes().unwrap()).unwrap();
        let config = back.info.backend.quant_config().expect("quant hint");
        assert_eq!(config.bits, bits);
        assert_eq!(config.mode, DecodeMode::Lut);
        // The shipped calibration is the fitted one, bit for bit.
        for (a, b) in artifact.quantizers.iter().zip(&back.quantizers) {
            assert_eq!(a.fsr_log2().to_bits(), b.fsr_log2().to_bits());
            assert_eq!(a.bits(), b.bits());
        }
    }
}
