//! Seeded fault-injection battery: torn artifact writes that must leave
//! the previously committed version loadable, injected read and compile
//! failures surfacing as typed errors, single-flight failure broadcast to
//! every coalesced waiter, and the per-model circuit breaker opening
//! under repeated failures and recovering through its half-open probe.
//!
//! Every test arms the process-global [`FaultInjector`], so they
//! serialize on one mutex — this battery lives in its own integration
//! binary precisely so its global injector cannot leak into any other
//! test process.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{
    BackendHint, FaultConfig, FaultInjector, ModelArtifact, ModelRegistry, RegistryConfig,
    RegistryError, StreamingConfig,
};
use snn_tensor::Tensor;
use ttfs_core::{convert, Base2Kernel};

/// One armed injector per process: tests take this before touching it.
static SERIAL: Mutex<()> = Mutex::new(());

const DIMS: [usize; 3] = [1, 3, 4];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("snn_faults_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn dense_artifact(name: &str, version: &str, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    ModelArtifact::build(name, version, model, &DIMS, BackendHint::Csr).unwrap()
}

/// A deliberately heavyweight artifact whose `load` takes long enough
/// that threads spawned a moment later reliably coalesce onto it.
fn wide_artifact(name: &str, version: &str, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 4096, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(4096, 3, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    ModelArtifact::build(name, version, model, &DIMS, BackendHint::Csr).unwrap()
}

fn registry_config(threshold: u32, backoff: Duration) -> RegistryConfig {
    RegistryConfig {
        byte_budget: 0,
        streaming: StreamingConfig {
            threads: 1,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
        breaker_threshold: threshold,
        breaker_backoff: backoff,
        breaker_backoff_max: backoff * 8,
    }
}

fn probe_bits(artifact: &ModelArtifact) -> Vec<u32> {
    let (engine, _) = artifact.compile().unwrap();
    let mut dims = vec![1usize];
    dims.extend_from_slice(&DIMS);
    let x = Tensor::full(&dims, 0.5);
    let (logits, _) = engine.run_batch(&x).unwrap();
    logits.as_slice().iter().map(|f| f.to_bits()).collect()
}

#[test]
fn torn_write_leaves_the_previous_artifact_loadable() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("torn");
    let path = dir.path().join("alpha@1.snna");
    let v1 = dense_artifact("alpha", "1", 1);
    v1.save(&path).unwrap();
    let committed = fs::read(&path).unwrap();

    // A re-save of different content tears mid-write: the failure must
    // land on the temp sibling, never the committed file.
    let replacement = dense_artifact("alpha", "1", 2);
    FaultInjector::global().arm(
        11,
        FaultConfig {
            artifact_write: 1.0,
            ..FaultConfig::default()
        },
    );
    let err = replacement.save(&path).unwrap_err();
    FaultInjector::global().disarm();
    assert!(
        err.to_string().contains("injected torn write"),
        "typed torn-write error, got: {err}"
    );
    assert_eq!(
        FaultInjector::global().counts().artifact_torn_writes,
        1,
        "exactly one torn write fired"
    );

    // The committed bytes are untouched, still load, and still produce
    // the ORIGINAL version's logits bit-for-bit.
    assert_eq!(
        fs::read(&path).unwrap(),
        committed,
        "torn write reached the committed file"
    );
    let reloaded = ModelArtifact::load(&path).unwrap();
    assert_eq!(probe_bits(&reloaded), probe_bits(&v1));
}

#[test]
fn injected_read_fault_is_a_typed_io_error_and_clears_on_disarm() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("read");
    let path = dir.path().join("alpha@1.snna");
    dense_artifact("alpha", "1", 3).save(&path).unwrap();

    FaultInjector::global().arm(
        13,
        FaultConfig {
            artifact_read: 1.0,
            ..FaultConfig::default()
        },
    );
    let err = ModelArtifact::load(&path).unwrap_err();
    assert!(
        err.to_string().contains("injected read fault"),
        "typed read fault, got: {err}"
    );
    FaultInjector::global().disarm();
    assert!(ModelArtifact::load(&path).is_ok(), "disarmed loads succeed");
}

#[test]
fn injected_compile_failure_surfaces_typed_and_the_registry_recovers() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("compile");
    dense_artifact("alpha", "1", 5)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    // Breaker disabled: this test isolates the typed error itself.
    let registry =
        ModelRegistry::open(dir.path(), registry_config(0, Duration::from_millis(50))).unwrap();

    FaultInjector::global().arm(
        17,
        FaultConfig {
            compile: 1.0,
            ..FaultConfig::default()
        },
    );
    let err = registry.get_or_load("alpha").unwrap_err();
    assert!(
        matches!(&err, RegistryError::Compile(msg) if msg.contains("injected compile failure")),
        "typed compile error, got: {err}"
    );
    FaultInjector::global().disarm();

    // The failure is not negatively cached without a breaker: the next
    // lookup retries and succeeds.
    assert!(registry.get_or_load("alpha").is_ok());
    let metrics = registry.metrics();
    assert_eq!(metrics.load_errors, 1);
    assert_eq!(metrics.cold_loads, 1);
    registry.shutdown();
}

#[test]
fn single_flight_broadcasts_one_failure_to_every_coalesced_waiter() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("broadcast");
    wide_artifact("alpha", "1", 7)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    let registry = Arc::new(
        ModelRegistry::open(dir.path(), registry_config(0, Duration::from_millis(50))).unwrap(),
    );

    FaultInjector::global().arm(
        19,
        FaultConfig {
            compile: 1.0,
            ..FaultConfig::default()
        },
    );
    // Leader enters the (slow, multi-megabyte) artifact load; waiters
    // spawned a moment later must coalesce onto it and all receive its
    // typed failure promptly — not one failure each, and no hangs.
    let leader = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || registry.get_or_load("alpha").map(|_| ()))
    };
    std::thread::sleep(Duration::from_millis(2));
    const WAITERS: usize = 8;
    let start = Instant::now();
    let waiters: Vec<_> = (0..WAITERS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.get_or_load("alpha").map(|_| ()))
        })
        .collect();
    let leader_result = leader.join().unwrap();
    assert!(
        matches!(leader_result, Err(RegistryError::Compile(_))),
        "leader gets the typed compile failure"
    );
    for waiter in waiters {
        let result = waiter.join().unwrap();
        assert!(
            matches!(result, Err(RegistryError::Compile(_))),
            "every waiter gets the broadcast typed failure, got: {result:?}"
        );
    }
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "failure broadcast must be prompt, not a hang"
    );
    // The injector rolled the compile point once per actual attempt:
    // the waiters that coalesced onto the leader's flight replayed its
    // error instead of paying their own load.
    let attempts = FaultInjector::global().counts().compile_failures;
    FaultInjector::global().disarm();
    let metrics = registry.metrics();
    assert_eq!(attempts, 1, "waiters coalesced onto a single load attempt");
    assert_eq!(metrics.load_errors, 1);
    assert_eq!(
        metrics.coalesced_loads, WAITERS as u64,
        "every waiter was counted as coalesced"
    );

    // Repair (disarm) and retry: the failure was broadcast, not sticky.
    assert!(registry.get_or_load("alpha").is_ok());
    registry.shutdown();
}

#[test]
fn breaker_opens_after_threshold_and_recovers_via_half_open_probe() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("breaker");
    dense_artifact("alpha", "1", 9)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    let backoff = Duration::from_millis(50);
    let registry = ModelRegistry::open(dir.path(), registry_config(2, backoff)).unwrap();

    FaultInjector::global().arm(
        23,
        FaultConfig {
            compile: 1.0,
            ..FaultConfig::default()
        },
    );
    // Two consecutive failures reach the threshold and open the breaker.
    for _ in 0..2 {
        assert!(matches!(
            registry.get_or_load("alpha"),
            Err(RegistryError::Compile(_))
        ));
    }
    // Open: rejected with retry advice, WITHOUT another load attempt.
    let err = registry.get_or_load("alpha").unwrap_err();
    match &err {
        RegistryError::BreakerOpen { key, retry_after } => {
            assert_eq!(key, "alpha@1");
            assert!(*retry_after <= backoff, "retry advice within the backoff");
        }
        other => panic!("expected BreakerOpen, got: {other}"),
    }
    assert_eq!(
        FaultInjector::global().counts().compile_failures,
        2,
        "the open breaker short-circuits before the loader"
    );
    assert!(
        registry
            .list()
            .iter()
            .any(|m| m.name == "alpha" && m.state == "breaker-open"),
        "listing surfaces the open breaker"
    );

    // Repair the fault, wait out the backoff: the next lookup is the
    // half-open probe, and its success closes the breaker.
    FaultInjector::global().disarm();
    std::thread::sleep(backoff + Duration::from_millis(20));
    assert!(
        registry.get_or_load("alpha").is_ok(),
        "half-open probe recovers"
    );
    let metrics = registry.metrics();
    assert_eq!(metrics.breaker_opens, 1);
    assert_eq!(metrics.breaker_recoveries, 1);
    assert_eq!(metrics.breaker_rejections, 1);
    assert_eq!(metrics.load_errors, 2);
    // Closed again: warm hits serve normally.
    assert!(registry.get_or_load("alpha").is_ok());
    registry.shutdown();
}

#[test]
fn failed_half_open_probe_doubles_the_backoff() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = TempDir::new("backoff");
    dense_artifact("alpha", "1", 15)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    let backoff = Duration::from_millis(40);
    let registry = ModelRegistry::open(dir.path(), registry_config(1, backoff)).unwrap();

    FaultInjector::global().arm(
        29,
        FaultConfig {
            compile: 1.0,
            ..FaultConfig::default()
        },
    );
    // Threshold 1: the first failure opens the breaker at the base
    // backoff; a failed half-open probe re-opens it with the backoff
    // doubled (negative caching backs off exponentially).
    assert!(registry.get_or_load("alpha").is_err());
    std::thread::sleep(backoff + Duration::from_millis(20));
    assert!(
        matches!(
            registry.get_or_load("alpha"),
            Err(RegistryError::Compile(_))
        ),
        "expired backoff admits exactly one probe, which fails"
    );
    let err = registry.get_or_load("alpha").unwrap_err();
    match &err {
        RegistryError::BreakerOpen { retry_after, .. } => {
            assert!(
                *retry_after > backoff,
                "re-opened backoff must exceed the base {backoff:?}, got {retry_after:?}"
            );
        }
        other => panic!("expected BreakerOpen after the failed probe, got: {other}"),
    }
    FaultInjector::global().disarm();
    let metrics = registry.metrics();
    assert_eq!(metrics.breaker_opens, 2, "initial open plus the re-open");
    assert_eq!(metrics.breaker_recoveries, 0);
    registry.shutdown();
}
