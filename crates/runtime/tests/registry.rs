//! Concurrency battery for [`ModelRegistry`]: single-flight compilation
//! under a thundering herd, LRU eviction that never unloads a model with
//! in-flight work, and atomic hot swap under closed-loop load — every
//! ticket completes with logits bit-matching exactly one of
//! {old version, new version}, never a mix.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{BackendHint, ModelArtifact, ModelRegistry, RegistryConfig, StreamingConfig};
use snn_tensor::Tensor;
use ttfs_core::{convert, Base2Kernel};

const DIMS: [usize; 3] = [1, 3, 4];

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("snn_registry_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&path);
        fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn dense_artifact(name: &str, version: &str, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
    ModelArtifact::build(name, version, model, &DIMS, BackendHint::Csr).unwrap()
}

fn fast_streaming() -> StreamingConfig {
    StreamingConfig {
        threads: 2,
        max_batch: 8,
        max_delay: Duration::from_millis(1),
        max_pending: 0,
        brownout: None,
    }
}

fn sample() -> Tensor {
    Tensor::full(&[1, 3, 4], 0.5)
}

/// Reference logits for an artifact: compile it directly (no registry)
/// and run the probe sample.
fn reference_bits(artifact: &ModelArtifact) -> Vec<u32> {
    let (engine, _) = artifact.compile().unwrap();
    let mut dims = vec![1usize];
    dims.extend_from_slice(&DIMS);
    let x = Tensor::full(&dims, 0.5);
    let (logits, _) = engine.run_batch(&x).unwrap();
    logits.as_slice().iter().map(|f| f.to_bits()).collect()
}

#[test]
fn thundering_herd_on_a_cold_model_compiles_exactly_once() {
    let dir = TempDir::new("herd");
    dense_artifact("alpha", "1", 1)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    let registry = Arc::new(
        ModelRegistry::open(
            dir.path(),
            RegistryConfig {
                byte_budget: 0,
                streaming: fast_streaming(),
                ..RegistryConfig::default()
            },
        )
        .unwrap(),
    );

    const THREADS: usize = 8;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.get_or_load("alpha").unwrap())
        })
        .collect();
    let loaded: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Every thread got the SAME resident entry — one compile, N handles.
    for handle in &loaded[1..] {
        assert!(Arc::ptr_eq(&loaded[0], handle));
    }
    let metrics = registry.metrics();
    assert_eq!(metrics.cold_loads, 1, "single-flight: exactly one compile");
    assert_eq!(
        metrics.warm_hits + metrics.coalesced_loads,
        (THREADS - 1) as u64,
        "the other {} lookups coalesced or hit warm",
        THREADS - 1
    );
    assert_eq!(metrics.load_errors, 0);
    // Cold-start timings are recorded.
    assert!(metrics.load_ms_max >= 0.0);
    assert!(metrics.compile_ms_max > 0.0, "compile wall time recorded");
    registry.shutdown();
}

#[test]
fn lru_never_evicts_a_model_with_in_flight_work() {
    let dir = TempDir::new("lru");
    let a = dense_artifact("alpha", "1", 1);
    let b = dense_artifact("beta", "1", 2);
    let c = dense_artifact("gamma", "1", 3);
    a.save(dir.path().join("alpha@1.snna")).unwrap();
    b.save(dir.path().join("beta@1.snna")).unwrap();
    c.save(dir.path().join("gamma@1.snna")).unwrap();
    let fa = a.compile().unwrap().1.stored_bytes;
    let fb = b.compile().unwrap().1.stored_bytes;

    // Budget admits one model comfortably but not two: the second load
    // must try to evict the first.
    let registry = ModelRegistry::open(
        dir.path(),
        RegistryConfig {
            byte_budget: fa.max(fb) + 1,
            streaming: StreamingConfig {
                threads: 1,
                max_batch: 64,
                // Long flush deadline: a lone submission parks in the
                // batcher, keeping alpha's pending() > 0 for a while.
                max_delay: Duration::from_millis(300),
                max_pending: 0,
                brownout: None,
            },
            ..RegistryConfig::default()
        },
    )
    .unwrap();

    let alpha = registry.get_or_load("alpha").unwrap();
    let ticket = alpha.server().submit(&sample()).unwrap();
    drop(alpha); // only the registry and the parked ticket's server remain

    // Loading beta pushes the registry over budget, but alpha has an
    // in-flight request: it must NOT be evicted mid-ticket.
    let _beta = registry.get_or_load("beta").unwrap();
    let states: Vec<_> = registry
        .list()
        .into_iter()
        .map(|r| (r.name, r.state))
        .collect();
    assert!(
        states.iter().any(|(n, s)| n == "alpha" && s == "resident"),
        "alpha must stay resident while its ticket is in flight: {states:?}"
    );
    assert_eq!(registry.metrics().evictions, 0);

    // The parked ticket completes normally — never dropped by eviction.
    let response = ticket.wait().expect("in-flight ticket must complete");
    assert_eq!(response.logits.dims(), &[3]);

    // With alpha idle again, the next over-budget load may evict it.
    let _gamma = registry.get_or_load("gamma").unwrap();
    let metrics = registry.metrics();
    assert!(
        metrics.evictions >= 1,
        "idle LRU entry is evictable once its work drains: {metrics:?}"
    );
    assert!(!registry
        .list()
        .iter()
        .any(|r| r.name == "alpha" && r.state == "resident"));
    registry.shutdown();
}

#[test]
fn swap_repoints_the_bare_name_and_survives_rescans() {
    let dir = TempDir::new("swap");
    dense_artifact("alpha", "1", 1)
        .save(dir.path().join("alpha@1.snna"))
        .unwrap();
    dense_artifact("alpha", "2", 2)
        .save(dir.path().join("alpha@2.snna"))
        .unwrap();
    let registry = ModelRegistry::open(
        dir.path(),
        RegistryConfig {
            byte_budget: 0,
            streaming: fast_streaming(),
            ..RegistryConfig::default()
        },
    )
    .unwrap();

    // Default active pointer: lexically greatest version.
    assert_eq!(registry.get_or_load("alpha").unwrap().info().version, "2");

    let report = registry.swap("alpha", "1", None).unwrap();
    assert_eq!(report.from.as_deref(), Some("2"));
    assert_eq!(report.to, "1");
    assert!(report.was_resident || report.load_ms >= 0.0);
    assert_eq!(registry.get_or_load("alpha").unwrap().info().version, "1");

    // A rescan must not un-pin the explicit swap.
    registry.refresh().unwrap();
    assert_eq!(registry.get_or_load("alpha").unwrap().info().version, "1");
    assert_eq!(registry.metrics().swaps, 1);

    // Swapping to a version that does not exist is a typed error and
    // leaves the pointer untouched.
    assert!(registry.swap("alpha", "9", None).is_err());
    assert_eq!(registry.get_or_load("alpha").unwrap().info().version, "1");
    registry.shutdown();
}

#[test]
fn hot_swap_under_closed_loop_load_never_mixes_versions() {
    let dir = TempDir::new("hotswap");
    let v1 = dense_artifact("alpha", "1", 10);
    let v2 = dense_artifact("alpha", "2", 20);
    v1.save(dir.path().join("alpha@1.snna")).unwrap();
    v2.save(dir.path().join("alpha@2.snna")).unwrap();
    let expected_v1 = reference_bits(&v1);
    let expected_v2 = reference_bits(&v2);
    assert_ne!(expected_v1, expected_v2, "versions must be distinguishable");

    let registry = Arc::new(
        ModelRegistry::open(
            dir.path(),
            RegistryConfig {
                byte_budget: 0,
                streaming: fast_streaming(),
                ..RegistryConfig::default()
            },
        )
        .unwrap(),
    );
    // Start on v2 (the default), swap to v1 mid-run.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 150;
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let (e1, e2) = (expected_v1.clone(), expected_v2.clone());
            std::thread::spawn(move || {
                let (mut saw_v1, mut saw_v2) = (0u64, 0u64);
                for _ in 0..PER_THREAD {
                    // Resolve the bare name each iteration, like a
                    // gateway request would.
                    let handle = registry.get_or_load("alpha").unwrap();
                    let response = handle
                        .server()
                        .submit(&sample())
                        .unwrap()
                        .wait()
                        .expect("no ticket may be dropped across a swap");
                    let bits: Vec<u32> = response
                        .logits
                        .as_slice()
                        .iter()
                        .map(|f| f.to_bits())
                        .collect();
                    if bits == e1 {
                        saw_v1 += 1;
                    } else if bits == e2 {
                        saw_v2 += 1;
                    } else {
                        panic!("logits match neither version: torn swap");
                    }
                }
                (saw_v1, saw_v2)
            })
        })
        .collect();

    // Let the workers run against v2, then swap to v1 under load.
    std::thread::sleep(Duration::from_millis(50));
    let report = registry.swap("alpha", "1", None).unwrap();
    assert_eq!(report.to, "1");

    let (mut total_v1, mut total_v2) = (0u64, 0u64);
    for worker in workers {
        let (saw_v1, saw_v2) = worker.join().unwrap();
        total_v1 += saw_v1;
        total_v2 += saw_v2;
    }
    assert_eq!(
        total_v1 + total_v2,
        (THREADS * PER_THREAD) as u64,
        "every request completed and matched exactly one version"
    );
    assert!(total_v2 > 0, "pre-swap traffic must have hit v2");
    assert!(total_v1 > 0, "post-swap traffic must have hit v1");
    registry.shutdown();
}
