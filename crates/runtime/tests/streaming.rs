//! Edge-case coverage for the streaming front-end: deadline-only flushes,
//! count flushes with no deadline slack, graceful shutdown with work still
//! queued, submissions after shutdown, and ticket polling.

use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
use snn_runtime::{
    CsrEngine, InferenceBackend, StreamingConfig, StreamingServer, SubmitError, SubmitOptions,
    Ticket,
};
use snn_sim::RunStats;
use snn_tensor::Tensor;
use ttfs_core::{convert, Base2Kernel, ConvertError, SnnModel};

fn dense_model(seed: u64) -> SnnModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = Sequential::new(vec![
        Layer::Flatten(Flatten::new()),
        Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
        Layer::Activation(ActivationLayer::new(Box::new(Relu))),
        Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
    ]);
    convert(&net, Base2Kernel::paper_default(), 24).unwrap()
}

fn engine(seed: u64) -> Arc<CsrEngine> {
    Arc::new(CsrEngine::compile(&dense_model(seed), &[1, 3, 4]).unwrap())
}

fn sample(value: f32) -> Tensor {
    Tensor::full(&[1, 3, 4], value)
}

/// A backend that sleeps before delegating, so shutdown reliably finds
/// requests still queued behind a busy worker.
struct SlowBackend {
    inner: CsrEngine,
    delay: Duration,
}

impl InferenceBackend for SlowBackend {
    fn name(&self) -> &'static str {
        "slow"
    }
    fn model(&self) -> &SnnModel {
        InferenceBackend::model(&self.inner)
    }
    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        std::thread::sleep(self.delay);
        self.inner.run_batch(images)
    }
}

#[test]
fn single_request_flushes_on_deadline_alone() {
    // max_batch is far from reached: only the deadline can flush.
    let server = StreamingServer::new(
        engine(1),
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_millis(5),
            max_pending: 0,
            brownout: None,
        },
    );
    let response = server.submit(&sample(0.5)).unwrap().wait().unwrap();
    assert_eq!(response.batch_size, 1, "flushed alone, by deadline");
    assert_eq!(response.logits.dims(), &[3]);
    // The request waited out (at least) its deadline before executing.
    assert!(response.queue_wait >= Duration::from_millis(5));
    let metrics = server.shutdown();
    assert_eq!(metrics.requests, 1);
    assert_eq!(metrics.batches, 1);
    assert_eq!(metrics.max_batch_occupancy, 1);
}

#[test]
fn count_flush_fills_to_max_batch_before_deadline() {
    // Deadline is far away: only the count flush can trigger, so every
    // batch holds exactly max_batch requests.
    let server = StreamingServer::new(
        engine(2),
        StreamingConfig {
            threads: 2,
            max_batch: 4,
            max_delay: Duration::from_secs(30),
            max_pending: 0,
            brownout: None,
        },
    );
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| server.submit(&sample(i as f32 / 8.0)).unwrap())
        .collect();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        assert_eq!(response.batch_size, 4, "count flush at max_batch");
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.requests, 8);
    assert_eq!(metrics.batches, 2);
    assert!((metrics.mean_batch_occupancy - 4.0).abs() < 1e-9);
}

#[test]
fn max_batch_flush_with_zero_remaining_deadline() {
    // max_delay == 0: every pending window is already expired the moment
    // it forms. Count and deadline flushes race; every request must still
    // be answered exactly once and no batch may exceed max_batch.
    let server = StreamingServer::new(
        engine(3),
        StreamingConfig {
            threads: 2,
            max_batch: 4,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let tickets: Vec<Ticket> = (0..16)
        .map(|i| server.submit(&sample(i as f32 / 16.0)).unwrap())
        .collect();
    for ticket in tickets {
        let response = ticket.wait().unwrap();
        assert!(response.batch_size >= 1 && response.batch_size <= 4);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.requests, 16);
    let histogram_total: u64 = metrics
        .occupancy_histogram
        .iter()
        .map(|bucket| bucket.size * bucket.batches)
        .sum();
    assert_eq!(histogram_total, 16, "histogram accounts for every request");
}

#[test]
fn shutdown_drains_queued_requests() {
    // One slow worker, per-request batches: most submissions are still on
    // the worker queue when shutdown starts. Every ticket must resolve.
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(4), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(20),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let tickets: Vec<Ticket> = (0..5)
        .map(|i| server.submit(&sample(i as f32 / 5.0)).unwrap())
        .collect();
    let metrics = server.shutdown();
    assert_eq!(metrics.requests, 5, "shutdown drained every request");
    for ticket in tickets {
        let response = ticket.wait().expect("drained, not dropped");
        assert_eq!(response.batch_size, 1);
    }
}

#[test]
fn submit_after_shutdown_returns_error() {
    let server = StreamingServer::new(
        engine(5),
        StreamingConfig {
            threads: 1,
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
    );
    server.submit(&sample(0.3)).unwrap().wait().unwrap();
    server.shutdown();
    let err = server.submit(&sample(0.3)).unwrap_err();
    assert!(
        err.to_string().contains("shut down"),
        "structured shutdown error, got: {err}"
    );
    // Shutdown stays idempotent and keeps reporting the drained state.
    assert_eq!(server.shutdown().requests, 1);
}

#[test]
fn try_wait_polls_until_the_result_lands() {
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(6), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(30),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let mut ticket = server.submit(&sample(0.7)).unwrap();
    // The backend sleeps 30 ms, so early polls come back `Ok(None)`; no
    // assertion on the first poll, since a descheduled test thread could
    // legitimately see the result already landed.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let response = loop {
        if let Some(response) = ticket.try_wait().unwrap() {
            break response;
        }
        assert!(std::time::Instant::now() < deadline, "result never landed");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(response.logits.dims(), &[3]);
}

#[test]
fn wait_timeout_returns_none_then_the_result() {
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(12), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(100),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let mut ticket = server.submit(&sample(0.4)).unwrap();
    // The backend sleeps 100 ms: a 5 ms wait must time out cleanly and
    // leave the ticket usable.
    assert!(
        ticket
            .wait_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none(),
        "result cannot be ready yet"
    );
    let response = ticket
        .wait_timeout(Duration::from_secs(10))
        .unwrap()
        .expect("result lands within the bound");
    assert_eq!(response.logits.dims(), &[3]);
    // A consumed ticket's channel is empty but alive semantics are moot —
    // the server keeps serving.
    server.submit(&sample(0.5)).unwrap().wait().unwrap();
    server.shutdown();
}

#[test]
fn wait_timeout_surfaces_backend_panic_as_error() {
    let server = StreamingServer::new(
        Arc::new(PanickingBackend(dense_model(13))),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let mut ticket = server.submit(&sample(0.5)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    // Depending on timing we see Ok(None) ticks first, then the error.
    loop {
        match ticket.wait_timeout(Duration::from_millis(5)) {
            Ok(None) => assert!(std::time::Instant::now() < deadline, "never resolved"),
            Ok(Some(_)) => panic!("panicking backend cannot produce a response"),
            Err(e) => {
                // The panic is isolated: a solo retry panics again, so the
                // request is quarantined with a typed error — not a
                // dropped channel.
                assert!(e.to_string().contains("quarantined"), "got: {e}");
                break;
            }
        }
    }
    server.shutdown();
}

#[test]
fn shed_requests_metric_counts_queue_full_rejections() {
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(14), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(60),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 1,
            brownout: None,
        },
    );
    let admitted = server.submit(&sample(0.1)).expect("first admitted");
    for _ in 0..3 {
        assert!(matches!(
            server.submit(&sample(0.2)),
            Err(SubmitError::QueueFull { .. })
        ));
    }
    admitted.wait().unwrap();
    let metrics = server.shutdown();
    assert_eq!(metrics.shed_requests, 3, "every QueueFull counted");
    assert_eq!(metrics.requests, 1, "sheds are not completions");
}

#[test]
fn submit_with_zero_deadline_flushes_a_long_window() {
    // max_delay is 30 s and max_batch unreachable: only the per-request
    // EDF deadline can flush. If submit_with dropped the deadline, this
    // would hang until the test harness killed it.
    let server = StreamingServer::new(
        engine(15),
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_secs(30),
            max_pending: 0,
            brownout: None,
        },
    );
    let mut ticket = server
        .submit_with(&sample(0.5), SubmitOptions::with_deadline(Duration::ZERO))
        .unwrap();
    let response = ticket
        .wait_timeout(Duration::from_secs(10))
        .unwrap()
        .expect("zero deadline flushes immediately");
    assert_eq!(response.batch_size, 1);
    server.shutdown();
}

#[test]
fn tight_deadline_flushes_requests_that_arrived_relaxed() {
    // A relaxed request parks in the window; an urgent one arriving later
    // pulls the earliest deadline forward and both ride one batch.
    let server = StreamingServer::new(
        engine(16),
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_secs(30),
            max_pending: 0,
            brownout: None,
        },
    );
    let relaxed = server
        .submit_with(
            &sample(0.3),
            SubmitOptions::with_deadline(Duration::from_secs(20)),
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let urgent = server
        .submit_with(
            &sample(0.7),
            SubmitOptions::with_deadline(Duration::from_millis(1)).priority(5),
        )
        .unwrap();
    let urgent_response = urgent.wait().unwrap();
    let relaxed_response = relaxed.wait().unwrap();
    assert_eq!(urgent_response.batch_size, 2, "one EDF-flushed batch");
    assert_eq!(relaxed_response.batch_size, 2);
    let metrics = server.shutdown();
    assert_eq!(metrics.batches, 1);
    assert_eq!(metrics.shed_requests, 0);
}

#[test]
fn mismatched_sample_dims_are_rejected() {
    let server = StreamingServer::new(engine(7), StreamingConfig::default());
    server.submit(&sample(0.5)).unwrap();
    let err = server.submit(&Tensor::full(&[1, 4, 4], 0.5)).unwrap_err();
    assert!(err.to_string().contains("do not match"), "got: {err}");
    let err = server
        .submit(&Tensor::from_vec(vec![], &[0]).unwrap())
        .unwrap_err();
    assert!(err.to_string().contains("non-empty"), "got: {err}");
}

#[test]
fn bounded_queue_rejects_with_queue_full_and_recovers() {
    // One slow worker, per-request batches, a bound of 2: the first two
    // submissions are admitted (one executing, one queued), the third must
    // be shed with QueueFull instead of growing the queue. Once the
    // admitted work resolves, capacity frees and submission succeeds again.
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(9), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(100),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 2,
            brownout: None,
        },
    );
    assert_eq!(server.max_pending(), 2);
    let first = server.submit(&sample(0.1)).expect("slot 1 admitted");
    let second = server.submit(&sample(0.2)).expect("slot 2 admitted");
    let err = server.submit(&sample(0.3)).expect_err("bound reached");
    assert_eq!(err, SubmitError::QueueFull { max_pending: 2 });
    assert!(err.to_string().contains("full"), "got: {err}");
    assert_eq!(server.pending(), 2);

    // Resolving the admitted requests releases their slots.
    first.wait().expect("admitted request resolves");
    second.wait().expect("admitted request resolves");
    let third = server
        .submit(&sample(0.3))
        .expect("capacity freed after completion");
    third.wait().expect("recovered request resolves");
    let metrics = server.shutdown();
    assert_eq!(metrics.requests, 3, "the shed request never counted");
}

#[test]
fn unbounded_queue_still_tracks_pending() {
    let server = StreamingServer::new(
        engine(10),
        StreamingConfig {
            threads: 1,
            max_batch: 4,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
    );
    assert_eq!(server.max_pending(), 0);
    let tickets: Vec<Ticket> = (0..6)
        .map(|i| server.submit(&sample(i as f32 / 6.0)).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    // Shutdown joins the workers, so every batch's slot release has run.
    server.shutdown();
    assert_eq!(server.pending(), 0, "all resolved requests released");
}

struct PanickingBackend(SnnModel);

impl InferenceBackend for PanickingBackend {
    fn name(&self) -> &'static str {
        "panic"
    }
    fn model(&self) -> &SnnModel {
        &self.0
    }
    fn run_batch(&self, _images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        panic!("backend exploded mid-batch");
    }
}

#[test]
fn backend_panic_releases_backpressure_slots() {
    // A panicking backend must not wedge a bounded server: the batch's
    // admission slots are released on unwind (drop guard), so once the
    // failure surfaces, new submissions are admitted — not QueueFull.
    let server = StreamingServer::new(
        Arc::new(PanickingBackend(dense_model(11))),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 1,
            brownout: None,
        },
    );
    for round in 0..3 {
        // The quarantine error reaches the ticket just before the worker's
        // drop guard releases the slot, so admission may lag the error by
        // one scheduling tick — retry briefly, but a leaked slot stays
        // QueueFull forever and still fails here.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let ticket = loop {
            match server.submit(&sample(0.5)) {
                Ok(ticket) => break ticket,
                Err(e) if std::time::Instant::now() < deadline => {
                    assert!(
                        matches!(e, SubmitError::QueueFull { .. }),
                        "round {round}: {e}"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("round {round} must be admitted, got {e}"),
            }
        };
        assert!(ticket.wait().is_err(), "backend always panics");
    }
    server.shutdown();
    assert_eq!(server.pending(), 0, "no leaked admissions");
}

#[test]
fn flush_reason_counters_split_deadline_count_and_drain() {
    // Count flushes: max_batch 4, deadline unreachable — 8 requests make
    // exactly two max_batch flushes.
    let server = StreamingServer::new(
        engine(20),
        StreamingConfig {
            threads: 2,
            max_batch: 4,
            max_delay: Duration::from_secs(30),
            max_pending: 0,
            brownout: None,
        },
    );
    let tickets: Vec<Ticket> = (0..8)
        .map(|i| server.submit(&sample(i as f32 / 8.0)).unwrap())
        .collect();
    for ticket in tickets {
        ticket.wait().unwrap();
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.flushes_max_batch, 2);
    assert_eq!(metrics.flushes_edf_deadline, 0);
    assert_eq!(metrics.flushes_drain, 0);
    assert_eq!(
        metrics.flushes_max_batch + metrics.flushes_edf_deadline + metrics.flushes_drain,
        metrics.batches,
        "every batch is attributed to exactly one flush reason"
    );

    // Deadline flush: max_batch unreachable, only EDF expiry can fire.
    let server = StreamingServer::new(
        engine(21),
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            max_pending: 0,
            brownout: None,
        },
    );
    server.submit(&sample(0.5)).unwrap().wait().unwrap();
    let metrics = server.shutdown();
    assert_eq!(metrics.flushes_edf_deadline, 1);
    assert_eq!(metrics.flushes_max_batch, 0);

    // Drain flush: requests still parked in the window when shutdown runs.
    let server = StreamingServer::new(
        engine(22),
        StreamingConfig {
            threads: 1,
            max_batch: 64,
            max_delay: Duration::from_secs(30),
            max_pending: 0,
            brownout: None,
        },
    );
    let tickets: Vec<Ticket> = (0..3)
        .map(|i| server.submit(&sample(i as f32 / 3.0)).unwrap())
        .collect();
    let metrics = server.shutdown();
    assert_eq!(metrics.flushes_drain, 1, "shutdown drained the open window");
    assert_eq!(metrics.requests, 3);
    for ticket in tickets {
        ticket.wait().unwrap();
    }
}

#[test]
fn wait_timeouts_metric_counts_ticket_expiries() {
    let server = StreamingServer::new(
        Arc::new(SlowBackend {
            inner: CsrEngine::compile(&dense_model(23), &[1, 3, 4]).unwrap(),
            delay: Duration::from_millis(80),
        }),
        StreamingConfig {
            threads: 1,
            max_batch: 1,
            max_delay: Duration::ZERO,
            max_pending: 0,
            brownout: None,
        },
    );
    let mut ticket = server.submit(&sample(0.4)).unwrap();
    // Two early polls expire against the 80 ms backend; both must count.
    for _ in 0..2 {
        assert!(ticket
            .wait_timeout(Duration::from_millis(5))
            .unwrap()
            .is_none());
    }
    ticket
        .wait_timeout(Duration::from_secs(10))
        .unwrap()
        .expect("result lands within the bound");
    let metrics = server.shutdown();
    assert_eq!(metrics.wait_timeouts, 2, "only the expired polls count");
}

#[test]
fn traced_server_records_runtime_spans_with_identical_logits() {
    use snn_runtime::BackendChoice;
    use snn_trace::{AttrValue, TraceCollector, TraceTarget};

    let model = Arc::new(dense_model(24));
    let x = sample(0.6);

    // Tracing off: the plain server's logits are the reference.
    let plain = StreamingServer::new(
        Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap()),
        StreamingConfig::default(),
    );
    let expected = plain.submit(&x).unwrap().wait().unwrap().logits;
    plain.shutdown();

    let collector = Arc::new(TraceCollector::new(0));
    let server = BackendChoice::Csr
        .serve_streaming_traced(
            Arc::clone(&model),
            &[1, 3, 4],
            StreamingConfig::default(),
            Arc::clone(&collector),
        )
        .unwrap();
    let trace = collector.mint_trace();
    let target = TraceTarget { trace, parent: 0 };
    let response = server
        .submit_with(&x, SubmitOptions::default().traced(target))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(
        response.logits.as_slice(),
        expected.as_slice(),
        "tracing must not perturb logits"
    );
    // All runtime spans are recorded before the ticket reply is sent, so
    // the tree is complete the moment `wait` returns.
    let spans = collector.trace(trace);
    let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
    for required in [
        "queue.wait",
        "batch.flush",
        "batch.exec",
        "csr.chunk",
        "encode",
        "stage.exec",
    ] {
        assert!(names.contains(&required), "missing {required} in {names:?}");
    }
    let flush = spans.iter().find(|s| s.name == "batch.flush").unwrap();
    assert!(
        matches!(flush.attr("reason"), Some(AttrValue::Str(_))),
        "flush span carries its reason"
    );
    let exec = spans.iter().find(|s| s.name == "batch.exec").unwrap();
    assert_eq!(exec.attr("backend"), Some(&AttrValue::Str("csr")));
    // Engine spans parent under the batch execution span.
    let chunk = spans.iter().find(|s| s.name == "csr.chunk").unwrap();
    assert_eq!(chunk.parent_id, exec.span_id);
    assert!(chunk.attr("lanes").is_some() && chunk.attr("scratch").is_some());
    // Every non-root parent exists in the tree.
    let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
    for span in &spans {
        assert!(
            span.parent_id == 0 || ids.contains(&span.parent_id),
            "orphan span {span:?}"
        );
    }
    server.shutdown();
}

#[test]
fn untraced_submissions_on_a_traced_server_record_nothing() {
    use snn_trace::TraceCollector;

    let collector = Arc::new(TraceCollector::new(0));
    let server = StreamingServer::new_traced(
        engine(25),
        StreamingConfig::default(),
        Arc::clone(&collector),
    );
    server.submit(&sample(0.5)).unwrap().wait().unwrap();
    server.shutdown();
    assert_eq!(collector.spans_recorded(), 0, "no target, no spans");
}

#[test]
fn worker_panic_surfaces_as_ticket_error() {
    let server = StreamingServer::new(
        Arc::new(PanickingBackend(dense_model(8))),
        StreamingConfig {
            threads: 1,
            max_batch: 2,
            max_delay: Duration::from_millis(1),
            max_pending: 0,
            brownout: None,
        },
    );
    let ticket = server.submit(&sample(0.5)).unwrap();
    // Blast-radius isolation retries the panicked request solo; it
    // panics again and is quarantined with a typed error, so the ticket
    // resolves instead of observing a dropped channel.
    let err = ticket.wait().unwrap_err();
    assert!(err.to_string().contains("quarantined"), "got: {err}");
    // The server survives the panic for later (failing) traffic.
    let err2 = server.submit(&sample(0.5)).unwrap().wait().unwrap_err();
    assert!(err2.to_string().contains("quarantined"), "got: {err2}");
}
