//! # snn-runtime — batched, multi-threaded sparse inference engine
//!
//! The paper (Lew, Lee, Park — DAC 2022) is about inference *throughput
//! and energy*; this crate turns the workspace's reproduction into a
//! serving-shaped runtime:
//!
//! * [`InferenceBackend`] — the pluggable engine abstraction. Three
//!   implementations ship: the reference event simulator
//!   ([`snn_sim::EventSnn`]), the [`CsrEngine`] f32 fast path, and the
//!   [`QuantEngine`] packed-log-code path; [`BackendChoice`] is the
//!   factory that builds any of them from one shared `Arc`'d model.
//! * [`CsrModel`] / [`CsrEngine`] — ahead-of-time compilation of a
//!   converted [`ttfs_core::SnnModel`] into synapse tables (conv layers
//!   pattern-deduplicated per `(channel, border-class)` — roughly
//!   `H·W`-fold less edge storage; dense layers flat CSR) plus the
//!   [`BatchWheel`] multi-lane O(1) spike queue. Integration is **batched
//!   and edge-major**: a chunk of samples is walked together in ascending
//!   `(t, neuron)` order and each synapse row is streamed once per spike
//!   group, scattering into a `[lanes, out]` membrane matrix. Logits match
//!   the reference backend bit-for-bit for every chunk width (same
//!   per-cell float accumulation order) and `reference_forward` within
//!   tolerance. Model and compiled tables sit behind `Arc`, so engine
//!   clones and server workers share one read-only copy of the weights.
//! * [`QuantCsrModel`] / [`QuantEngine`] — the quantized serving
//!   subsystem: one [`snn_logquant::LogQuantizer`] calibrated per weighted
//!   layer, packed 5-bit log codes stored in place of the repacked f32
//!   weight copy (4× smaller stored weights), and the same edge-major
//!   inner loop resolving each code through a per-layer decode LUT — or
//!   the `LogPe`-style shift-add datapath with reported mantissa-error
//!   bounds. In LUT mode, logits are **bit-identical** to the reference
//!   simulator over [`snn_logquant::LogQuantizer::quantize_tensor`]'d
//!   weights.
//! * [`InferenceServer`] / [`WorkerPool`] — batch requests fan out over a
//!   `std::thread` pool with a submission queue; per-request latency is
//!   recorded and summarized as p50/p99 + images/sec
//!   ([`ThroughputMetrics`]).
//! * [`StreamingServer`] / [`DeadlineBatcher`] — the open-traffic path:
//!   requests arrive one at a time (`submit(image) -> Ticket`, or
//!   `submit_with` carrying per-request [`SubmitOptions`]), an EDF
//!   batcher flushes the pending window at `max_batch` or when the
//!   **earliest admitted deadline** expires (plain submissions inherit
//!   `max_delay`), and [`StreamingMetrics`] splits queue-wait from
//!   execution time, histograms batch occupancy and counts backpressure
//!   sheds. Streamed logits are bit-identical to a closed
//!   [`InferenceServer::run`] over the same images regardless of arrival
//!   interleaving, deadlines or priorities. The `snn-gateway` crate
//!   fronts this server with a dependency-free HTTP/1.1 edge.
//! * [`ModelArtifact`] / [`ModelRegistry`] — the many-models layer: a
//!   versioned on-disk artifact format (magic + format version + checksum,
//!   bit-exact f32 round-trip of weights **and** per-layer quantizer
//!   calibration) and a registry that resolves `name@version` to lazily
//!   loaded, single-flight-compiled serving entries with LRU eviction
//!   under a byte budget ([`CsrFootprint`] accounting) and atomic version
//!   swap under live traffic.
//! * [`energy`] — feeds measured event counts into the
//!   [`snn_hw::Processor`] cycle/energy model, so hardware reports work
//!   unchanged on the fast path.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use rand::SeedableRng;
//! use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
//! use snn_runtime::{CsrEngine, InferenceServer, ServerConfig};
//! use snn_tensor::Tensor;
//! use ttfs_core::{convert, Base2Kernel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let net = Sequential::new(vec![
//!     Layer::Flatten(Flatten::new()),
//!     Layer::Dense(DenseLayer::new(16, 8, &mut rng)),
//!     Layer::Activation(ActivationLayer::new(Box::new(Relu))),
//!     Layer::Dense(DenseLayer::new(8, 2, &mut rng)),
//! ]);
//! let model = convert(&net, Base2Kernel::paper_default(), 24)?;
//! let engine = Arc::new(CsrEngine::compile(&model, &[1, 4, 4])?);
//! let server = InferenceServer::new(engine, ServerConfig { threads: 2, chunk_size: 4 });
//! let report = server.run(&Tensor::full(&[8, 1, 4, 4], 0.5))?;
//! assert_eq!(report.logits.dims(), &[8, 2]);
//! assert!(report.metrics.images_per_sec > 0.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod artifact;
mod backend;
mod batcher;
mod csr;
pub mod energy;
mod engine;
mod faults;
mod metrics;
mod quant;
mod registry;
mod server;
mod wheel;
mod workers;

pub use artifact::{
    fnv1a64, ArtifactError, ArtifactInfo, BackendHint, ModelArtifact, ARTIFACT_EXTENSION,
    ARTIFACT_FORMAT_VERSION, ARTIFACT_MAGIC, MAX_SECTION_BYTES,
};
pub use backend::{BackendChoice, InferenceBackend};
pub use batcher::{
    BrownoutConfig, DeadlineBatcher, FlushReason, StreamedResponse, StreamingConfig, SubmitError,
    SubmitOptions, Ticket,
};
pub use csr::{
    ConvPatterns, CsrFootprint, CsrModel, CsrStage, CsrSynapses, EdgeIter, PatternRow, SynapseTable,
};
pub use engine::{CsrEngine, DEFAULT_MAX_LANES};
pub use faults::{FaultConfig, FaultCounts, FaultInjector, FaultPoint};
pub use metrics::{
    HistogramBucket, HistogramSnapshot, LatencyRecorder, LogHistogram, LogSink, OccupancyBucket,
    StreamingMetrics, StreamingRecorder, ThroughputMetrics,
};
pub use quant::{
    fit_layer_quantizers, quantize_model, DecodeMode, QuantConfig, QuantCsrModel, QuantEngine,
    QuantLayer,
};
pub use registry::{
    ModelHandle, ModelRegistry, ModelStatus, RegistryConfig, RegistryError, RegistryMetrics,
    SwapReport,
};
pub use server::{
    BatchReport, InferenceServer, ServerConfig, StreamingServer, DEADLINE_MISS_GRACE,
};
pub use wheel::{BatchWheel, LaneSpike, TimeWheel, WheelSpike};
pub use workers::{PoolClosed, WorkerPool};
