//! Per-request latency and throughput accounting, for both serving paths:
//! the closed-batch [`crate::InferenceServer`] ([`ThroughputMetrics`]) and
//! the streaming [`crate::StreamingServer`] ([`StreamingMetrics`], which
//! additionally splits queue-wait from execution time and histograms the
//! sizes of the batches the deadline batcher formed).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use snn_log::{IncidentRecorder, LogCollector, TraceId};
use snn_sim::RunStats;
use snn_telemetry::{families, Labels, TelemetryHub, WindowCounter, WindowHistogram};

use crate::batcher::FlushReason;
use crate::energy::EnergyPricer;

/// Reservoir capacity of a [`LatencyRecorder`]: counts, totals and means
/// stay exact forever, while quantile queries past this many samples are
/// computed over a uniform reservoir — a recorder feeding a long-running
/// metrics endpoint must stay bounded in memory and scrape-time sort cost.
const RESERVOIR_CAPACITY: usize = 65_536;

/// Collects per-request latencies and computes order statistics.
///
/// Samples are kept unsorted while recording; the first quantile query
/// after a record sorts **in place, once** — repeated queries (and
/// [`summarize`](Self::summarize), which asks for several quantiles) reuse
/// the sorted order instead of cloning and re-sorting per call.
///
/// Memory is bounded: the first 65,536 samples are kept exactly; beyond
/// that, reservoir sampling (deterministic LCG, uniform over the whole
/// stream) keeps quantiles representative while
/// [`len`](Self::len), [`total_us`](Self::total_us) and
/// [`mean_us`](Self::mean_us) remain exact over every recorded sample.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
    sorted: bool,
    /// Total samples ever recorded (exact; ≥ `samples_us.len()`).
    count: u64,
    /// Exact running sum over every recorded sample, microseconds.
    total_us: f64,
    /// LCG state for reservoir replacement decisions.
    rng: u64,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn next_rng(&mut self) -> u64 {
        self.rng = self
            .rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_secs_f64() * 1e6;
        self.count += 1;
        self.total_us += us;
        if self.samples_us.len() < RESERVOIR_CAPACITY {
            self.samples_us.push(us);
            self.sorted = false;
        } else {
            // Classic reservoir step: keep each of the `count` samples
            // with equal probability capacity/count.
            let slot = (self.next_rng() % self.count) as usize;
            if slot < RESERVOIR_CAPACITY {
                self.samples_us[slot] = us;
                self.sorted = false;
            }
        }
    }

    /// Number of recorded requests (exact, even past the reservoir
    /// capacity).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Total recorded time in microseconds (exact running sum).
    pub fn total_us(&self) -> f64 {
        self.total_us
    }

    /// Absorbs every sample of `other` (e.g. merging per-thread recorders
    /// into one summary). Counts and totals merge exactly; if the merged
    /// samples exceed the reservoir capacity, the surplus re-enters
    /// through the reservoir.
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.count += other.count;
        self.total_us += other.total_us;
        for &us in &other.samples_us {
            if self.samples_us.len() < RESERVOIR_CAPACITY {
                self.samples_us.push(us);
                self.sorted = false;
            } else {
                let slot = (self.next_rng() % self.count.max(1)) as usize;
                if slot < RESERVOIR_CAPACITY {
                    self.samples_us[slot] = us;
                    self.sorted = false;
                }
            }
        }
    }

    fn sorted_samples(&mut self) -> &[f64] {
        if !self.sorted {
            self.samples_us.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        &self.samples_us
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in microseconds, by nearest-rank on the
    /// sorted (reservoir) samples; 0 when empty.
    pub fn quantile_us(&mut self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        quantile_from_sorted(self.sorted_samples(), q)
    }

    /// Mean latency in microseconds; 0 when empty. Exact over every
    /// recorded sample.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.total_us / self.count as f64
    }

    /// Snapshots the recorder into a serializable summary.
    ///
    /// Sorts the samples at most once no matter how many quantiles the
    /// summary contains.
    pub fn summarize(&mut self, images: usize, wall: Duration) -> ThroughputMetrics {
        let wall_s = wall.as_secs_f64();
        ThroughputMetrics {
            requests: self.len() as u64,
            images: images as u64,
            wall_ms: wall_s * 1e3,
            images_per_sec: if wall_s > 0.0 {
                images as f64 / wall_s
            } else {
                0.0
            },
            latency_mean_us: self.mean_us(),
            latency_p50_us: self.quantile_us(0.50),
            latency_p99_us: self.quantile_us(0.99),
        }
    }
}

/// Finite buckets of a [`LogHistogram`]: upper bounds 2^0 .. 2^25 µs
/// (1 µs to ~33.5 s); anything slower lands in the implicit `+Inf`
/// bucket. Power-of-2 bounds keep recording branch-free (a leading-zeros
/// count) and give Prometheus `le` bounds that are exact in binary.
const LOG_HISTOGRAM_BUCKETS: usize = 26;

/// Bounded-memory log-bucket latency histogram (the Prometheus-histogram
/// companion to [`LatencyRecorder`]'s quantiles): 26 power-of-2 µs
/// buckets plus overflow, with exact count and sum. Recording is O(1)
/// with no allocation, so it can sit on the streaming hot path.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// Per-bucket (non-cumulative) counts; index i covers
    /// `(2^(i-1), 2^i]` µs, index 0 covers `[0, 1]` µs, and the final
    /// slot is the `+Inf` overflow.
    counts: [u64; LOG_HISTOGRAM_BUCKETS + 1],
    count: u64,
    sum_us: f64,
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; LOG_HISTOGRAM_BUCKETS + 1],
            count: 0,
            sum_us: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros() as u64;
        // Smallest i with us <= 2^i, i.e. ceil(log2(us)).
        let idx = if us <= 1 {
            0
        } else {
            (u64::BITS - (us - 1).leading_zeros()) as usize
        };
        self.counts[idx.min(LOG_HISTOGRAM_BUCKETS)] += 1;
        self.count += 1;
        self.sum_us += latency.as_secs_f64() * 1e6;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, microseconds.
    pub fn sum_us(&self) -> f64 {
        self.sum_us
    }

    /// Serializable snapshot with **cumulative** bucket counts
    /// (Prometheus `le` semantics). Finite buckets are emitted up to the
    /// highest non-empty one; observations above it are only in the
    /// implicit `+Inf` bucket, whose cumulative count is
    /// [`count`](HistogramSnapshot::count).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let last_nonzero = self.counts[..LOG_HISTOGRAM_BUCKETS]
            .iter()
            .rposition(|&c| c != 0);
        let mut cumulative = 0;
        let buckets = match last_nonzero {
            None => Vec::new(),
            Some(last) => (0..=last)
                .map(|i| {
                    cumulative += self.counts[i];
                    HistogramBucket {
                        le_us: 1u64 << i,
                        count: cumulative,
                    }
                })
                .collect(),
        };
        HistogramSnapshot {
            buckets,
            count: self.count,
            sum_us: self.sum_us,
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// One cumulative bucket of a [`HistogramSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket, microseconds (a power of 2).
    pub le_us: u64,
    /// Observations at or below `le_us` (cumulative, Prometheus-style).
    pub count: u64,
}

/// Serializable log-bucket histogram snapshot (see
/// [`LogHistogram::snapshot`]); renders directly as a Prometheus
/// histogram: one `_bucket{le=...}` series per entry plus `+Inf`,
/// `_sum`, `_count`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Cumulative finite buckets, ascending by bound (may be empty).
    pub buckets: Vec<HistogramBucket>,
    /// Total observations (the `+Inf` cumulative count).
    pub count: u64,
    /// Sum of all observations, microseconds.
    pub sum_us: f64,
}

/// Nearest-rank quantile over an already-sorted slice; 0 when empty.
fn quantile_from_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Serializable throughput/latency summary of one batched run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMetrics {
    /// Requests (batch chunks) executed.
    pub requests: u64,
    /// Images inferred.
    pub images: u64,
    /// End-to-end wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Sustained throughput, images per second.
    pub images_per_sec: f64,
    /// Mean per-request latency, microseconds.
    pub latency_mean_us: f64,
    /// Median per-request latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub latency_p99_us: f64,
}

/// One bucket of the batch-occupancy histogram: how many formed batches
/// flushed holding exactly `size` requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancyBucket {
    /// Images in the formed batch.
    pub size: u64,
    /// Batches that flushed at this size.
    pub batches: u64,
}

/// Serializable summary of a streaming-serving window: per-request
/// end-to-end latency percentiles, the queue-wait versus execution-time
/// split, and the batch-occupancy distribution the adaptive batcher
/// produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingMetrics {
    /// Streamed requests completed (one image each).
    pub requests: u64,
    /// Submissions rejected with [`SubmitError::QueueFull`]
    /// (backpressure sheds). Shed requests never enter the pending window,
    /// so they appear in no other counter or latency sample.
    ///
    /// [`SubmitError::QueueFull`]: crate::SubmitError::QueueFull
    pub shed_requests: u64,
    /// Submissions shed by priority brownout
    /// ([`SubmitError::Brownout`](crate::SubmitError::Brownout)): the
    /// server was above its high-water mark and the request's priority was
    /// below the shed threshold. Disjoint from
    /// [`shed_requests`](Self::shed_requests).
    pub brownout_shed_requests: u64,
    /// Batches the deadline batcher formed and executed.
    pub batches: u64,
    /// Wall-clock time from recorder creation to this summary, ms.
    pub wall_ms: f64,
    /// Completed requests per second of wall-clock time.
    pub images_per_sec: f64,
    /// Mean end-to-end (submit → result) latency, microseconds.
    pub e2e_mean_us: f64,
    /// Median end-to-end latency, microseconds.
    pub e2e_p50_us: f64,
    /// 99th-percentile end-to-end latency, microseconds.
    pub e2e_p99_us: f64,
    /// Mean time a request waited before its batch started executing, µs.
    pub queue_wait_mean_us: f64,
    /// Median queue wait, microseconds.
    pub queue_wait_p50_us: f64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_wait_p99_us: f64,
    /// Mean backend execution time of a formed batch, microseconds.
    pub exec_mean_us: f64,
    /// Median batch execution time, microseconds.
    pub exec_p50_us: f64,
    /// 99th-percentile batch execution time, microseconds.
    pub exec_p99_us: f64,
    /// Fraction of total end-to-end time spent queue-waiting (0..=1);
    /// high values mean batching delay, not inference, dominates latency.
    pub queue_wait_share: f64,
    /// Mean images per formed batch.
    pub mean_batch_occupancy: f64,
    /// Largest formed batch.
    pub max_batch_occupancy: u64,
    /// Distribution of formed-batch sizes, ascending by size.
    pub occupancy_histogram: Vec<OccupancyBucket>,
    /// Batches flushed because their earliest admitted deadline expired
    /// ([`FlushReason::EdfDeadline`]) — the latency-pressure signal.
    pub flushes_edf_deadline: u64,
    /// Batches flushed by filling to `max_batch`
    /// ([`FlushReason::MaxBatch`]) — the well-batched signal.
    pub flushes_max_batch: u64,
    /// Batches flushed by shutdown drain ([`FlushReason::Drain`]).
    pub flushes_drain: u64,
    /// [`Ticket::wait_timeout`](crate::Ticket::wait_timeout) expiries —
    /// callers that gave up waiting (the server-side view of gateway
    /// 504s). The request itself still executes and lands in the other
    /// counters when its batch completes.
    pub wait_timeouts: u64,
    /// Batches whose worker panicked mid-execution and were re-run
    /// request-by-request to isolate the blast radius — co-batched
    /// innocents get a second chance instead of inheriting the panic.
    pub batch_retries: u64,
    /// Requests quarantined after panicking *solo* on the isolation
    /// retry — the poison request itself, failed with a typed error.
    pub quarantined: u64,
    /// Requests whose formed batch began executing after their batching
    /// deadline had already expired — the cumulative companion of the
    /// per-model windowed deadline-miss SLO ratio.
    pub deadline_misses: u64,
    /// Log-bucket histogram of end-to-end (submit → result) latency.
    pub e2e_histogram: HistogramSnapshot,
    /// Log-bucket histogram of queue wait (submit → batch exec start).
    pub queue_wait_histogram: HistogramSnapshot,
    /// Log-bucket histogram of formed-batch backend execution time.
    pub exec_histogram: HistogramSnapshot,
}

/// Labeled windowed-telemetry fan-out for one [`StreamingRecorder`]:
/// an [`Arc<TelemetryHub>`] plus this server's label set (`model`,
/// `version`, `backend`) with the per-request series handles cached so
/// the hot path never touches the hub's family map. Optionally carries
/// an [`EnergyPricer`], in which case every executed batch is priced on
/// the `snn-hw` processor model and the per-model `energy_uj` series
/// fills in.
///
/// Attach one with
/// [`StreamingServer::attach_telemetry`](crate::StreamingServer::attach_telemetry);
/// recorders without a sink behave exactly as before (the cumulative
/// recorders are always fed — telemetry is additive, never a
/// replacement).
#[derive(Clone)]
pub struct TelemetrySink {
    hub: Arc<TelemetryHub>,
    labels: Labels,
    requests: Arc<WindowCounter>,
    deadline_misses: Arc<WindowCounter>,
    energy: Arc<WindowCounter>,
    e2e: Arc<WindowHistogram>,
    queue_wait: Arc<WindowHistogram>,
    exec: Arc<WindowHistogram>,
    wait_timeouts: Arc<WindowCounter>,
    pricer: Option<EnergyPricer>,
}

impl TelemetrySink {
    /// Builds a sink recording into `hub` under `labels`, pre-resolving
    /// the per-request series. `pricer` enables per-batch energy
    /// attribution (pass `None` for backends without fixed geometry).
    pub fn new(hub: Arc<TelemetryHub>, labels: Labels, pricer: Option<EnergyPricer>) -> Self {
        Self {
            requests: hub.counter(families::REQUESTS, &labels),
            deadline_misses: hub.counter(families::DEADLINE_MISSES, &labels),
            energy: hub.counter(families::ENERGY_UJ, &labels),
            e2e: hub.histogram(families::E2E_US, &labels),
            queue_wait: hub.histogram(families::QUEUE_WAIT_US, &labels),
            exec: hub.histogram(families::EXEC_US, &labels),
            wait_timeouts: hub.counter(families::WAIT_TIMEOUTS, &labels),
            hub,
            labels,
            pricer,
        }
    }

    /// The label value for a shed priority: `0`..`7` verbatim, anything
    /// higher collapses into `8+` so the `priority` label stays
    /// cardinality-bounded no matter what clients send.
    fn priority_label(priority: u8) -> String {
        if priority <= 7 {
            priority.to_string()
        } else {
            "8+".to_string()
        }
    }

    fn record_labeled(&self, family: &str, key: &'static str, value: String) {
        let labels = self.labels.clone().with(key, value);
        self.hub.counter(family, &labels).add(self.hub.now_s(), 1.0);
    }
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink")
            .field("labels", &self.labels)
            .field("pricer", &self.pricer.is_some())
            .finish_non_exhaustive()
    }
}

/// Structured-logging fan-out for one serving component: the shared
/// flight-recorder [`LogCollector`] plus, optionally, the
/// [`IncidentRecorder`] the failure sites trigger post-mortem snapshots
/// on. Attach one with
/// [`StreamingServer::attach_logging`](crate::StreamingServer::attach_logging)
/// or [`ModelRegistry::attach_logging`](crate::ModelRegistry::attach_logging);
/// components without a sink behave exactly as before (logging is
/// additive, never a replacement).
#[derive(Debug, Clone)]
pub struct LogSink {
    log: Arc<LogCollector>,
    incidents: Option<Arc<IncidentRecorder>>,
}

impl LogSink {
    /// Builds a sink recording into `log`, triggering incident reports
    /// on `incidents` when present.
    pub fn new(log: Arc<LogCollector>, incidents: Option<Arc<IncidentRecorder>>) -> Self {
        Self { log, incidents }
    }

    /// The shared flight-recorder collector.
    pub fn collector(&self) -> &Arc<LogCollector> {
        &self.log
    }

    /// The incident recorder, when post-mortem snapshots are configured.
    pub fn incidents(&self) -> Option<&Arc<IncidentRecorder>> {
        self.incidents.as_ref()
    }

    /// Triggers an incident report (no-op without a recorder).
    ///
    /// Callers must NOT hold any lock an incident snapshot provider may
    /// take (the streaming recorder, registry state, telemetry hub) —
    /// the provider renders a live stats snapshot.
    pub fn incident(&self, kind: &str, detail: &str, trace: Option<TraceId>) -> Option<String> {
        self.incidents
            .as_ref()
            .and_then(|recorder| recorder.record(kind, detail, trace))
    }
}

/// Accumulates streaming measurements: one [`record_batch`] per formed
/// batch plus one [`record_request`] per request that rode in it.
///
/// [`record_batch`]: Self::record_batch
/// [`record_request`]: Self::record_request
#[derive(Debug, Clone)]
pub struct StreamingRecorder {
    started: Instant,
    e2e: LatencyRecorder,
    queue_wait: LatencyRecorder,
    exec: LatencyRecorder,
    e2e_hist: LogHistogram,
    queue_wait_hist: LogHistogram,
    exec_hist: LogHistogram,
    batch_sizes: BTreeMap<u64, u64>,
    sheds: u64,
    brownout_sheds: u64,
    flushes: [u64; 3],
    wait_timeouts: u64,
    batch_retries: u64,
    quarantined: u64,
    deadline_misses: u64,
    /// Windowed-telemetry fan-out; `None` keeps the recorder purely
    /// cumulative (the pre-telemetry behavior, and the disabled path the
    /// bench noise-gates against).
    sink: Option<TelemetrySink>,
    /// Structured-logging fan-out; `None` keeps the recorder silent (the
    /// pre-logging behavior the bench noise-gates against).
    log: Option<LogSink>,
}

impl StreamingRecorder {
    /// Creates a recorder; the wall clock starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            e2e: LatencyRecorder::new(),
            queue_wait: LatencyRecorder::new(),
            exec: LatencyRecorder::new(),
            e2e_hist: LogHistogram::new(),
            queue_wait_hist: LogHistogram::new(),
            exec_hist: LogHistogram::new(),
            batch_sizes: BTreeMap::new(),
            sheds: 0,
            brownout_sheds: 0,
            flushes: [0; 3],
            wait_timeouts: 0,
            batch_retries: 0,
            quarantined: 0,
            deadline_misses: 0,
            sink: None,
            log: None,
        }
    }

    /// Attaches a windowed-telemetry sink; every subsequent recording
    /// additionally feeds the hub's labeled series.
    pub fn set_sink(&mut self, sink: TelemetrySink) {
        self.sink = Some(sink);
    }

    /// Whether a telemetry sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Attaches a structured-logging sink; the batcher's flush and
    /// failure-isolation decisions start emitting log events (and
    /// incident triggers, when the sink carries a recorder).
    pub fn set_log_sink(&mut self, sink: LogSink) {
        self.log = Some(sink);
    }

    /// The attached structured-logging sink, if any.
    pub fn log_sink(&self) -> Option<&LogSink> {
        self.log.as_ref()
    }

    /// Records one executed batch: its size, backend execution time and
    /// why the batcher flushed it.
    pub fn record_batch(&mut self, size: usize, exec: Duration, reason: FlushReason) {
        *self.batch_sizes.entry(size as u64).or_insert(0) += 1;
        self.exec.record(exec);
        self.exec_hist.record(exec);
        self.flushes[match reason {
            FlushReason::EdfDeadline => 0,
            FlushReason::MaxBatch => 1,
            FlushReason::Drain => 2,
        }] += 1;
        if let Some(sink) = &self.sink {
            let now = sink.hub.now_s();
            sink.exec
                .record_us(now, exec.as_micros().min(u64::MAX as u128) as u64);
            sink.record_labeled(
                families::FLUSHES,
                "flush_reason",
                reason.as_str().to_string(),
            );
        }
        if let Some(log) = &self.log {
            snn_log::debug!(
                log.collector(),
                "runtime.batcher",
                {
                    "reason": reason.as_str(),
                    "batch_size": size,
                    "exec_us": exec.as_micros().min(u64::MAX as u128) as u64,
                },
                "flushed batch of {size} ({})",
                reason.as_str()
            );
        }
    }

    /// Prices one executed batch's measured event counters on the
    /// attached sink's `snn-hw` [`EnergyPricer`], accumulating
    /// `size × per-image µJ` into the per-model windowed `energy_uj`
    /// series. Returns the **per-image** figure for response
    /// attribution; `0.0` when no sink or no pricer is attached.
    pub fn record_batch_energy(&mut self, stats: &RunStats, size: usize) -> f64 {
        let Some(sink) = &self.sink else {
            return 0.0;
        };
        let Some(pricer) = &sink.pricer else {
            return 0.0;
        };
        let per_image_uj = pricer.price_per_image_uj(stats);
        sink.energy
            .add(sink.hub.now_s(), per_image_uj * size as f64);
        per_image_uj
    }

    /// Records one submission shed by backpressure (`QueueFull`), with
    /// the shed request's priority (labels the windowed series; the
    /// cumulative counter stays priority-blind).
    pub fn record_shed(&mut self, priority: u8) {
        self.sheds += 1;
        if let Some(sink) = &self.sink {
            sink.record_labeled(
                families::SHEDS,
                "priority",
                TelemetrySink::priority_label(priority),
            );
        }
    }

    /// Submissions shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Records one submission shed by priority brownout, with the shed
    /// request's priority.
    pub fn record_brownout_shed(&mut self, priority: u8) {
        self.brownout_sheds += 1;
        if let Some(sink) = &self.sink {
            sink.record_labeled(
                families::BROWNOUT_SHEDS,
                "priority",
                TelemetrySink::priority_label(priority),
            );
        }
    }

    /// Brownout sheds so far.
    pub fn brownout_sheds(&self) -> u64 {
        self.brownout_sheds
    }

    /// Records one batch that panicked and was re-run request-by-request
    /// to isolate the poison request.
    pub fn record_batch_retry(&mut self) {
        self.batch_retries += 1;
        if let Some(log) = &self.log {
            snn_log::warn!(
                log.collector(),
                "runtime.batcher",
                { "batch_retries": self.batch_retries },
                "batch panicked in a worker; re-running request-by-request to isolate the poison"
            );
        }
    }

    /// Records one request quarantined after panicking solo. The caller
    /// (the dispatch path) triggers the incident separately, outside
    /// this recorder's lock.
    pub fn record_quarantined(&mut self) {
        self.quarantined += 1;
        if let Some(log) = &self.log {
            snn_log::error!(
                log.collector(),
                "runtime.batcher",
                { "quarantined": self.quarantined },
                "request quarantined: the backend panicked while executing it solo"
            );
        }
    }

    /// Quarantined requests so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Records one [`Ticket::wait_timeout`](crate::Ticket::wait_timeout)
    /// expiry (the caller gave up before the batch completed).
    pub fn record_wait_timeout(&mut self) {
        self.wait_timeouts += 1;
        if let Some(sink) = &self.sink {
            sink.wait_timeouts.add(sink.hub.now_s(), 1.0);
        }
    }

    /// Wait-timeout expiries so far.
    pub fn wait_timeouts(&self) -> u64 {
        self.wait_timeouts
    }

    /// Records one completed request: end-to-end latency, the share of
    /// it spent waiting for the batch to form and reach a worker, and
    /// whether the request's batching deadline was missed (its batch
    /// began executing after the EDF deadline expired — the SLO
    /// deadline-miss signal).
    pub fn record_request(&mut self, e2e: Duration, queue_wait: Duration, deadline_missed: bool) {
        self.e2e.record(e2e);
        self.queue_wait.record(queue_wait);
        self.e2e_hist.record(e2e);
        self.queue_wait_hist.record(queue_wait);
        if deadline_missed {
            self.deadline_misses += 1;
        }
        if let Some(sink) = &self.sink {
            let now = sink.hub.now_s();
            sink.requests.add(now, 1.0);
            sink.e2e
                .record_us(now, e2e.as_micros().min(u64::MAX as u128) as u64);
            sink.queue_wait
                .record_us(now, queue_wait.as_micros().min(u64::MAX as u128) as u64);
            if deadline_missed {
                sink.deadline_misses.add(now, 1.0);
            }
        }
    }

    /// Completed requests so far.
    pub fn requests(&self) -> u64 {
        self.e2e.len() as u64
    }

    /// Snapshots everything recorded so far into a [`StreamingMetrics`].
    pub fn summarize(&mut self) -> StreamingMetrics {
        let wall_s = self.started.elapsed().as_secs_f64();
        let requests = self.e2e.len() as u64;
        let batches: u64 = self.batch_sizes.values().sum();
        let images: u64 = self.batch_sizes.iter().map(|(size, n)| size * n).sum();
        let e2e_total = self.e2e.total_us();
        StreamingMetrics {
            requests,
            shed_requests: self.sheds,
            brownout_shed_requests: self.brownout_sheds,
            batches,
            wall_ms: wall_s * 1e3,
            images_per_sec: if wall_s > 0.0 {
                requests as f64 / wall_s
            } else {
                0.0
            },
            e2e_mean_us: self.e2e.mean_us(),
            e2e_p50_us: self.e2e.quantile_us(0.50),
            e2e_p99_us: self.e2e.quantile_us(0.99),
            queue_wait_mean_us: self.queue_wait.mean_us(),
            queue_wait_p50_us: self.queue_wait.quantile_us(0.50),
            queue_wait_p99_us: self.queue_wait.quantile_us(0.99),
            exec_mean_us: self.exec.mean_us(),
            exec_p50_us: self.exec.quantile_us(0.50),
            exec_p99_us: self.exec.quantile_us(0.99),
            queue_wait_share: if e2e_total > 0.0 {
                self.queue_wait.total_us() / e2e_total
            } else {
                0.0
            },
            mean_batch_occupancy: if batches > 0 {
                images as f64 / batches as f64
            } else {
                0.0
            },
            max_batch_occupancy: self.batch_sizes.keys().next_back().copied().unwrap_or(0),
            occupancy_histogram: self
                .batch_sizes
                .iter()
                .map(|(&size, &batches)| OccupancyBucket { size, batches })
                .collect(),
            flushes_edf_deadline: self.flushes[0],
            flushes_max_batch: self.flushes[1],
            flushes_drain: self.flushes[2],
            wait_timeouts: self.wait_timeouts,
            batch_retries: self.batch_retries,
            quarantined: self.quarantined,
            deadline_misses: self.deadline_misses,
            e2e_histogram: self.e2e_hist.snapshot(),
            queue_wait_histogram: self.queue_wait_hist.snapshot(),
            exec_histogram: self.exec_hist.snapshot(),
        }
    }
}

impl Default for StreamingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let mut r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        assert_eq!(r.len(), 100);
        assert!((r.quantile_us(0.50) - 50_000.0).abs() < 1.0);
        assert!((r.quantile_us(0.99) - 99_000.0).abs() < 1.0);
        assert!((r.quantile_us(1.0) - 100_000.0).abs() < 1.0);
        assert!((r.mean_us() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn quantiles_stay_correct_across_interleaved_records() {
        // The sort-once cache must invalidate when new samples arrive.
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_millis(30));
        r.record(Duration::from_millis(10));
        assert!((r.quantile_us(1.0) - 30_000.0).abs() < 1.0);
        r.record(Duration::from_millis(50));
        r.record(Duration::from_millis(20));
        assert!((r.quantile_us(1.0) - 50_000.0).abs() < 1.0);
        assert!((r.quantile_us(0.5) - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn reservoir_bounds_memory_but_keeps_counts_exact() {
        let mut r = LatencyRecorder::new();
        let n = RESERVOIR_CAPACITY + 10_000;
        for _ in 0..n {
            r.record(Duration::from_millis(5));
        }
        assert_eq!(r.len(), n, "count stays exact past the reservoir");
        assert!(r.samples_us.len() <= RESERVOIR_CAPACITY, "memory bounded");
        assert!((r.mean_us() - 5_000.0).abs() < 1e-6, "mean stays exact");
        assert!((r.total_us() - n as f64 * 5_000.0).abs() < 1.0);
        // All samples identical, so quantiles are exact regardless of
        // which ones the reservoir kept.
        assert!((r.quantile_us(0.99) - 5_000.0).abs() < 1e-6);
        let m = r.summarize(n, Duration::from_secs(1));
        assert_eq!(m.requests, n as u64);
    }

    #[test]
    fn merge_combines_counts_totals_and_samples() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        a.record(Duration::from_millis(10));
        b.record(Duration::from_millis(20));
        b.record(Duration::from_millis(30));
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!((a.mean_us() - 20_000.0).abs() < 1e-6);
        assert!((a.quantile_us(1.0) - 30_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_recorder_is_zero() {
        let mut r = LatencyRecorder::new();
        assert_eq!(r.quantile_us(0.5), 0.0);
        assert_eq!(r.mean_us(), 0.0);
        let m = r.summarize(0, Duration::ZERO);
        assert_eq!(m.images_per_sec, 0.0);
        assert_eq!(m.requests, 0);
    }

    #[test]
    fn summary_computes_throughput() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        let m = r.summarize(200, Duration::from_secs(2));
        assert!((m.images_per_sec - 100.0).abs() < 1e-9);
        assert!((m.wall_ms - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_micros(1500));
        let m = r.summarize(4, Duration::from_millis(3));
        let json = serde_json::to_string(&m).unwrap();
        let back: ThroughputMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn log_histogram_buckets_by_power_of_two() {
        let mut h = LogHistogram::new();
        h.record(Duration::from_micros(1)); // bucket le=1
        h.record(Duration::from_micros(2)); // bucket le=2
        h.record(Duration::from_micros(3)); // bucket le=4
        h.record(Duration::from_micros(900)); // bucket le=1024
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert!((s.sum_us - 906.0).abs() < 1.0);
        let bucket = |le: u64| s.buckets.iter().find(|b| b.le_us == le).map(|b| b.count);
        assert_eq!(bucket(1), Some(1));
        assert_eq!(bucket(2), Some(2), "cumulative at le=2");
        assert_eq!(bucket(4), Some(3), "3µs rounds up into le=4");
        assert_eq!(bucket(512), Some(3), "cumulative carries through");
        assert_eq!(bucket(1024), Some(4));
        assert_eq!(
            s.buckets.last().map(|b| b.le_us),
            Some(1024),
            "trailing empty buckets trimmed"
        );
        // Cumulative counts are monotone non-decreasing.
        assert!(s.buckets.windows(2).all(|w| w[0].count <= w[1].count));
    }

    #[test]
    fn log_histogram_overflow_lands_in_inf_only() {
        let mut h = LogHistogram::new();
        h.record(Duration::from_secs(60)); // past the largest finite bucket
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.buckets.is_empty(), "no finite bucket holds it");
    }

    #[test]
    fn streaming_recorder_counts_flush_reasons_and_timeouts() {
        let mut r = StreamingRecorder::new();
        r.record_batch(4, Duration::from_millis(1), FlushReason::MaxBatch);
        r.record_batch(2, Duration::from_millis(1), FlushReason::EdfDeadline);
        r.record_batch(2, Duration::from_millis(1), FlushReason::EdfDeadline);
        r.record_batch(1, Duration::from_millis(1), FlushReason::Drain);
        r.record_wait_timeout();
        assert_eq!(r.wait_timeouts(), 1);
        let m = r.summarize();
        assert_eq!(m.flushes_max_batch, 1);
        assert_eq!(m.flushes_edf_deadline, 2);
        assert_eq!(m.flushes_drain, 1);
        assert_eq!(
            m.flushes_edf_deadline + m.flushes_max_batch + m.flushes_drain,
            m.batches,
            "every batch has exactly one flush reason"
        );
        assert_eq!(m.wait_timeouts, 1);
    }

    #[test]
    fn streaming_recorder_splits_queue_and_exec() {
        let mut r = StreamingRecorder::new();
        // Two batches: sizes 3 and 1.
        r.record_batch(3, Duration::from_millis(6), FlushReason::MaxBatch);
        r.record_batch(1, Duration::from_millis(2), FlushReason::EdfDeadline);
        for _ in 0..3 {
            r.record_request(Duration::from_millis(10), Duration::from_millis(4), false);
        }
        r.record_request(Duration::from_millis(3), Duration::from_millis(1), true);
        let m = r.summarize();
        assert_eq!(m.requests, 4);
        assert_eq!(m.batches, 2);
        assert!((m.mean_batch_occupancy - 2.0).abs() < 1e-9);
        assert_eq!(m.max_batch_occupancy, 3);
        assert_eq!(
            m.occupancy_histogram,
            vec![
                OccupancyBucket {
                    size: 1,
                    batches: 1
                },
                OccupancyBucket {
                    size: 3,
                    batches: 1
                },
            ]
        );
        // queue share = (3*4 + 1) / (3*10 + 3) = 13/33.
        assert!((m.queue_wait_share - 13.0 / 33.0).abs() < 1e-9);
        assert!((m.e2e_p99_us - 10_000.0).abs() < 1.0);
        assert!((m.exec_p50_us - 2_000.0).abs() < 1.0);
        // The histograms see the same observations as the recorders.
        assert_eq!(m.e2e_histogram.count, 4);
        assert_eq!(m.queue_wait_histogram.count, 4);
        assert_eq!(m.exec_histogram.count, 2);
        assert!((m.e2e_histogram.sum_us - 33_000.0).abs() < 1.0);
    }

    #[test]
    fn shed_counter_accumulates_and_summarizes() {
        let mut r = StreamingRecorder::new();
        r.record_shed(0);
        r.record_shed(9);
        r.record_batch(1, Duration::from_millis(1), FlushReason::EdfDeadline);
        r.record_request(Duration::from_millis(2), Duration::from_millis(1), false);
        assert_eq!(r.sheds(), 2);
        let m = r.summarize();
        assert_eq!(m.shed_requests, 2);
        assert_eq!(m.requests, 1, "sheds never count as completed requests");
    }

    #[test]
    fn empty_streaming_recorder_summarizes_to_zeros() {
        let mut r = StreamingRecorder::new();
        let m = r.summarize();
        assert_eq!(m.requests, 0);
        assert_eq!(m.shed_requests, 0);
        assert_eq!(m.batches, 0);
        assert_eq!(m.queue_wait_share, 0.0);
        assert_eq!(m.mean_batch_occupancy, 0.0);
        assert!(m.occupancy_histogram.is_empty());
    }

    #[test]
    fn streaming_metrics_roundtrip_json() {
        let mut r = StreamingRecorder::new();
        r.record_batch(2, Duration::from_millis(1), FlushReason::MaxBatch);
        r.record_request(Duration::from_millis(2), Duration::from_millis(1), false);
        r.record_request(Duration::from_millis(2), Duration::from_millis(1), false);
        let m = r.summarize();
        let json = serde_json::to_string(&m).unwrap();
        let back: StreamingMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
