//! Per-request latency and throughput accounting.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Collects per-request latencies and computes order statistics.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_us: Vec<f64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_us.push(latency.as_secs_f64() * 1e6);
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) in microseconds, by nearest-rank on the
    /// sorted samples; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(f64::total_cmp);
        let rank =
            ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Mean latency in microseconds; 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }

    /// Snapshots the recorder into a serializable summary.
    pub fn summarize(&self, images: usize, wall: Duration) -> ThroughputMetrics {
        let wall_s = wall.as_secs_f64();
        ThroughputMetrics {
            requests: self.len() as u64,
            images: images as u64,
            wall_ms: wall_s * 1e3,
            images_per_sec: if wall_s > 0.0 {
                images as f64 / wall_s
            } else {
                0.0
            },
            latency_mean_us: self.mean_us(),
            latency_p50_us: self.quantile_us(0.50),
            latency_p99_us: self.quantile_us(0.99),
        }
    }
}

/// Serializable throughput/latency summary of one batched run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputMetrics {
    /// Requests (batch chunks) executed.
    pub requests: u64,
    /// Images inferred.
    pub images: u64,
    /// End-to-end wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Sustained throughput, images per second.
    pub images_per_sec: f64,
    /// Mean per-request latency, microseconds.
    pub latency_mean_us: f64,
    /// Median per-request latency, microseconds.
    pub latency_p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub latency_p99_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let mut r = LatencyRecorder::new();
        for ms in 1..=100u64 {
            r.record(Duration::from_millis(ms));
        }
        assert_eq!(r.len(), 100);
        assert!((r.quantile_us(0.50) - 50_000.0).abs() < 1.0);
        assert!((r.quantile_us(0.99) - 99_000.0).abs() < 1.0);
        assert!((r.quantile_us(1.0) - 100_000.0).abs() < 1.0);
        assert!((r.mean_us() - 50_500.0).abs() < 1.0);
    }

    #[test]
    fn empty_recorder_is_zero() {
        let r = LatencyRecorder::new();
        assert_eq!(r.quantile_us(0.5), 0.0);
        assert_eq!(r.mean_us(), 0.0);
        let m = r.summarize(0, Duration::ZERO);
        assert_eq!(m.images_per_sec, 0.0);
        assert_eq!(m.requests, 0);
    }

    #[test]
    fn summary_computes_throughput() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_millis(10));
        let m = r.summarize(200, Duration::from_secs(2));
        assert!((m.images_per_sec - 100.0).abs() < 1e-9);
        assert!((m.wall_ms - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_serialize_to_json() {
        let mut r = LatencyRecorder::new();
        r.record(Duration::from_micros(1500));
        let m = r.summarize(4, Duration::from_millis(3));
        let json = serde_json::to_string(&m).unwrap();
        let back: ThroughputMetrics = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
