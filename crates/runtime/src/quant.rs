//! The quantized serving subsystem: 5-bit log-code CSR storage with LUT
//! (or shift-add) weight resolution in the batched edge-major inner loop.
//!
//! The paper's processor never multiplies: weights are stored as 5-bit
//! logarithmic codes (sign + magnitude exponent, eq. 15) and each synaptic
//! op resolves `w · κ(t)` through a tiny LUT plus a shift (eq. 17). The
//! workspace has modelled that arithmetic in `snn-logquant` since the
//! reproduction's early PRs — but the serving runtime still streamed full
//! f32 weights. This module closes the gap end-to-end:
//!
//! * [`QuantCsrModel`] — the quantized twin of [`CsrModel`]: one
//!   [`LogQuantizer`] is **calibrated per weighted layer** (FSR anchored at
//!   the layer's largest magnitude, the deployment-time calibration of the
//!   paper), and the compiled synapse tables store one **packed code byte**
//!   per edge in place of the repacked f32 weight copy. The pattern
//!   deduplication, per-pixel maps and traversal order of the f32 compiler
//!   are reused verbatim ([`SynapseTable::map_weights`]) — only the
//!   per-edge payload shrinks, 4× for the stored weight array.
//! * [`QuantEngine`] — an [`InferenceBackend`] whose integration loop is
//!   the *same* batched edge-major walk as [`crate::CsrEngine`]'s
//!   ([`run_chunk_stages`] is shared), with the per-edge weight resolved by
//!   one indexed load from the layer's decode LUT. In
//!   [`DecodeMode::Lut`] the LUT holds the quantizer's exact decoded
//!   values, so the engine's logits (and event statistics) are
//!   **bit-identical** to [`snn_sim::EventSnn`] run over a model whose
//!   weights went through [`LogQuantizer::quantize_tensor`] — the serving
//!   path and the reference quantization analysis can never drift apart.
//!   [`DecodeMode::ShiftAdd`] instead populates the LUT through the
//!   [`LogPe`] fixed-point datapath (Q16 mantissa LUT + shift, the actual
//!   hardware arithmetic) and reports its mantissa-rounding error bound.
//!
//! Accuracy/energy/bytes trade-off reporting rides on the existing
//! bridges: the engine emits the shared [`RunStats`] counters (fed to
//! [`snn_hw::Processor`] via [`crate::energy`]) and
//! [`QuantCsrModel::footprint`] accounts packed-code bytes against the f32
//! copy.

use std::sync::Arc;

use snn_logquant::{LogBase, LogPe, LogQuantizer, QuantError};
use snn_sim::RunStats;
use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnLayer, SnnModel};

use crate::csr::{footprint_of, CsrFootprint, CsrModel, CsrStage};
use crate::engine::{default_lanes, run_batch_chunked, run_chunk_stages, EdgeWeight, ScratchPool};
use crate::InferenceBackend;

#[cfg(doc)]
use crate::csr::SynapseTable;
#[cfg(doc)]
use crate::engine::CsrEngine;

/// A packed log code resolves through the layer's decode LUT: one indexed
/// load per edge — the software shape of the paper's multiplier-free PE.
impl EdgeWeight for u8 {
    type Ctx<'a> = &'a [f32];

    #[inline(always)]
    fn resolve(self, lut: &[f32]) -> f32 {
        lut[self as usize]
    }
}

/// How [`QuantEngine`] resolves packed codes to synaptic weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodeMode {
    /// Exact decode table: `lut[code] == LogQuantizer::decode(code)`
    /// bit-for-bit, so quantized serving is bit-identical to the reference
    /// event simulator over [`LogQuantizer::quantize_tensor`]'d weights.
    #[default]
    Lut,
    /// The [`LogPe`] fixed-point datapath: each table entry is
    /// reconstructed as `sign · (Q16 mantissa LUT << shift)` — the
    /// hardware's actual arithmetic — with the mantissa-rounding error
    /// bound reported per layer ([`QuantLayer::mantissa_error_bound`]).
    /// Requires the model kernel to satisfy the eq. 18 co-design
    /// constraint (`log₂ τ` a power of two).
    ShiftAdd,
}

/// Configuration of the quantized serving path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Logarithmic quantization base (eq. 16); the paper serves
    /// `a_w = 2^(−1/2)`.
    pub base: LogBase,
    /// Code width in bits, sign included (the paper serves 5). Packing
    /// needs `2 ≤ bits ≤ 8`.
    pub bits: u8,
    /// Weight-resolution datapath.
    pub mode: DecodeMode,
}

impl Default for QuantConfig {
    /// The paper's serving configuration: 5-bit codes, base `2^(−1/2)`,
    /// exact-LUT decode.
    fn default() -> Self {
        Self {
            base: LogBase::inv_sqrt2(),
            bits: 5,
            mode: DecodeMode::Lut,
        }
    }
}

/// Per-weighted-layer quantization artifacts of a compiled
/// [`QuantCsrModel`].
#[derive(Debug, Clone)]
pub struct QuantLayer {
    /// The layer's calibrated quantizer (FSR = layer's max |w|).
    pub quantizer: LogQuantizer,
    /// Exact signed decode table indexed by packed code
    /// ([`LogQuantizer::decode_lut`]).
    pub lut: Vec<f32>,
    /// The same table reconstructed through the [`LogPe`] Q16
    /// mantissa-LUT + shift datapath; `None` when the model kernel
    /// violates the eq. 18 constraint (no shift-add hardware exists for
    /// such a kernel).
    pub shift_add_lut: Option<Vec<f32>>,
    /// Worst-case relative error of the shift-add mantissa (Q-format
    /// rounding bound from [`LogPe::mantissa_relative_error_bound`]);
    /// `0.0` when no shift-add table exists.
    pub mantissa_error_bound: f32,
    /// Measured max relative deviation of the shift-add table from the
    /// exact decode table over every nonzero code (always ≤ the bound).
    pub shift_add_max_rel_error: f32,
}

/// The quantized twin of [`CsrModel`]: identical pattern-deduplicated
/// structure, packed log codes as the per-edge payload, plus each layer's
/// quantizer and decode tables.
#[derive(Debug, Clone)]
pub struct QuantCsrModel {
    stages: Vec<CsrStage<u8>>,
    layers: Vec<QuantLayer>,
    config: QuantConfig,
    input_dims: Vec<usize>,
    total_edges: usize,
}

/// Maps a quantization failure into the runtime's error type.
fn quant_err(e: QuantError) -> ConvertError {
    ConvertError::Structure(format!("quantized compile: {e}"))
}

/// Calibrates one [`LogQuantizer`] per weighted layer of `model`, in stage
/// order — the per-layer calibration both [`QuantCsrModel::compile`] and
/// [`quantize_model`] share, so the serving tables and the reference
/// quantized model can never disagree on a code.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] for an unpackable bit width or a
/// layer whose weights are all zero (no full-scale range exists).
pub fn fit_layer_quantizers(
    model: &SnnModel,
    base: LogBase,
    bits: u8,
) -> Result<Vec<LogQuantizer>, ConvertError> {
    if !(2..=8).contains(&bits) {
        return Err(ConvertError::Structure(format!(
            "quantized compile: packed codes need 2 <= bits <= 8, got {bits}"
        )));
    }
    model
        .layers()
        .iter()
        .filter_map(SnnLayer::weight)
        .map(|w| LogQuantizer::fit_tensor(base, bits, w).map_err(quant_err))
        .collect()
}

/// Quantizes every weighted layer of `model` through its per-layer
/// calibrated quantizer ([`LogQuantizer::quantize_tensor`]; biases stay
/// f32), returning the quantized model and the quantizers used. Running
/// the reference event simulator over this model is the ground truth
/// [`QuantEngine`] reproduces bit-for-bit in [`DecodeMode::Lut`].
///
/// # Errors
///
/// Same conditions as [`fit_layer_quantizers`].
pub fn quantize_model(
    model: &SnnModel,
    base: LogBase,
    bits: u8,
) -> Result<(SnnModel, Vec<LogQuantizer>), ConvertError> {
    let quantizers = fit_layer_quantizers(model, base, bits)?;
    let mut quantized = model.clone();
    let mut qi = quantizers.iter();
    for layer in quantized.layers_mut() {
        let (SnnLayer::Conv { weight, .. } | SnnLayer::Dense { weight, .. }) = layer else {
            continue;
        };
        let q = qi.next().expect("one quantizer per weighted layer");
        *weight = q.quantize_tensor(weight);
    }
    Ok((quantized, quantizers))
}

/// Builds one layer's decode tables: the exact LUT, and — when the model
/// kernel admits the eq. 18 co-design — the shift-add reconstruction with
/// its error bound.
fn build_layer(model: &SnnModel, base: LogBase, quantizer: LogQuantizer) -> QuantLayer {
    let lut = quantizer.decode_lut();
    let tau = model.kernel().tau();
    let pe = if model.kernel().satisfies_log_constraint() {
        LogPe::for_kernel(tau, base).ok()
    } else {
        None
    };
    let (shift_add_lut, mantissa_error_bound, shift_add_max_rel_error) = match pe {
        Some(pe) => {
            let pe = pe.with_fsr_log2(quantizer.fsr_log2());
            // t = 0 strips the kernel factor: what remains is the PE's
            // fixed-point reconstruction of the decoded weight itself.
            let sa: Vec<f32> = (0..lut.len())
                .map(|p| {
                    pe.multiply(quantizer.unpack(p as u8), 0)
                        .expect("in-range code")
                })
                .collect();
            let max_rel = sa
                .iter()
                .zip(lut.iter())
                .filter(|(_, &exact)| exact != 0.0)
                .map(|(&approx, &exact)| (approx - exact).abs() / exact.abs())
                .fold(0.0f32, f32::max);
            (Some(sa), pe.mantissa_relative_error_bound(), max_rel)
        }
        None => (None, 0.0, 0.0),
    };
    QuantLayer {
        quantizer,
        lut,
        shift_add_lut,
        mantissa_error_bound,
        shift_add_max_rel_error,
    }
}

impl QuantCsrModel {
    /// Compiles the quantized serving tables for `model` at per-sample
    /// `input_dims`: compile the f32 [`CsrModel`] (pattern dedup included),
    /// calibrate one quantizer per weighted layer, then re-store every
    /// edge payload as its packed code.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry, for an unpackable bit width, or for a layer whose
    /// weights are all zero.
    pub fn compile(
        model: &SnnModel,
        input_dims: &[usize],
        config: QuantConfig,
    ) -> Result<Self, ConvertError> {
        let csr = CsrModel::compile(model, input_dims)?;
        let quantizers = fit_layer_quantizers(model, config.base, config.bits)?;
        let layers: Vec<QuantLayer> = quantizers
            .into_iter()
            .map(|q| build_layer(model, config.base, q))
            .collect();
        let mut wi = 0usize;
        let stages: Vec<CsrStage<u8>> = csr
            .stages
            .iter()
            .map(|stage| match stage {
                CsrStage::Weighted { .. } => {
                    let q = &layers[wi].quantizer;
                    wi += 1;
                    stage.map_weights(|w| q.encode_packed(w))
                }
                other => other.map_weights(|_| 0u8), // no weighted payload
            })
            .collect();
        Ok(Self {
            stages,
            layers,
            config,
            input_dims: input_dims.to_vec(),
            total_edges: csr.total_edges,
        })
    }

    /// The compiled stages (packed-code payloads).
    pub fn stages(&self) -> &[CsrStage<u8>] {
        &self.stages
    }

    /// Per-weighted-layer quantization artifacts, in stage order.
    pub fn layers(&self) -> &[QuantLayer] {
        &self.layers
    }

    /// The configuration the model was compiled with.
    pub fn config(&self) -> QuantConfig {
        self.config
    }

    /// Per-sample input dims the model was compiled for.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Total traversed synapses across weighted stages (flat-equivalent).
    pub fn total_edges(&self) -> usize {
        self.total_edges
    }

    /// Whether every layer has a shift-add table (the model kernel
    /// satisfies eq. 18 and each layer's PE was constructible).
    pub fn shift_add_available(&self) -> bool {
        self.layers.iter().all(|l| l.shift_add_lut.is_some())
    }

    /// Worst per-layer mantissa-rounding error bound of the shift-add
    /// datapath (`0.0` when shift-add is unavailable).
    pub fn mantissa_error_bound(&self) -> f32 {
        self.layers
            .iter()
            .map(|l| l.mantissa_error_bound)
            .fold(0.0, f32::max)
    }

    /// Memory accounting of the packed tables. `weight_bytes` is the
    /// packed-code payload (one byte per stored weight slot) — compare it
    /// with the f32 [`CsrModel::footprint`]'s `weight_bytes` for the
    /// quantization byte saving; the index structure is identical in both.
    pub fn footprint(&self) -> CsrFootprint {
        footprint_of(&self.stages)
    }
}

/// Batched edge-major inference over packed log codes: the
/// [`crate::CsrEngine`] walk with per-edge weights resolved through the
/// layer's decode LUT.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
/// use snn_runtime::{InferenceBackend, QuantConfig, QuantEngine};
/// use snn_tensor::Tensor;
/// use ttfs_core::{convert, Base2Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new(vec![
///     Layer::Flatten(Flatten::new()),
///     Layer::Dense(DenseLayer::new(9, 4, &mut rng)),
/// ]);
/// let model = convert(&net, Base2Kernel::paper_default(), 16)?;
/// let engine = QuantEngine::compile(&model, &[1, 3, 3], QuantConfig::default())?;
/// // Stored weights shrank 4x: one packed byte per f32 weight slot.
/// assert_eq!(engine.compiled().footprint().weight_bytes, 9 * 4);
/// let (logits, stats) = engine.run_batch(&Tensor::full(&[2, 1, 3, 3], 0.5))?;
/// assert_eq!(logits.dims(), &[2, 4]);
/// assert_eq!(stats.batch, 2);
/// # Ok(())
/// # }
/// ```
pub struct QuantEngine {
    model: Arc<SnnModel>,
    compiled: Arc<QuantCsrModel>,
    mode: DecodeMode,
    max_lanes: usize,
    scratch: ScratchPool,
}

impl std::fmt::Debug for QuantEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuantEngine")
            .field("input_dims", &self.compiled.input_dims)
            .field("total_edges", &self.compiled.total_edges)
            .field("bits", &self.compiled.config.bits)
            .field("mode", &self.mode)
            .field("max_lanes", &self.max_lanes)
            .finish()
    }
}

impl Clone for QuantEngine {
    /// Cheap clone: the model and compiled code tables are shared
    /// (`Arc`), only the scratch pool starts empty.
    fn clone(&self) -> Self {
        Self {
            model: Arc::clone(&self.model),
            compiled: Arc::clone(&self.compiled),
            mode: self.mode,
            max_lanes: self.max_lanes,
            scratch: ScratchPool::default(),
        }
    }
}

impl QuantEngine {
    /// Compiles the quantized serving tables for `model` (cloned once into
    /// a shared [`Arc`]; use [`compile_shared`](Self::compile_shared) to
    /// avoid the copy).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantCsrModel::compile`], plus a structure
    /// error when [`DecodeMode::ShiftAdd`] is requested but the model
    /// kernel violates the eq. 18 constraint.
    pub fn compile(
        model: &SnnModel,
        input_dims: &[usize],
        config: QuantConfig,
    ) -> Result<Self, ConvertError> {
        Self::compile_shared(Arc::new(model.clone()), input_dims, config)
    }

    /// Compiles an already-shared model without cloning it — the same
    /// `Arc` discipline as [`crate::CsrEngine::compile_shared`], so an f32
    /// engine and a quantized engine can serve from one read-only copy of
    /// the converted model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantEngine::compile`].
    pub fn compile_shared(
        model: Arc<SnnModel>,
        input_dims: &[usize],
        config: QuantConfig,
    ) -> Result<Self, ConvertError> {
        let compiled = Arc::new(QuantCsrModel::compile(&model, input_dims, config)?);
        let max_lanes = default_lanes(&compiled.stages);
        let engine = Self {
            model,
            compiled,
            mode: DecodeMode::Lut,
            max_lanes,
            scratch: ScratchPool::default(),
        };
        engine.with_mode(config.mode)
    }

    /// Selects the weight-resolution datapath.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if [`DecodeMode::ShiftAdd`] is
    /// requested but the model kernel violates eq. 18 (no shift-add table
    /// could be built).
    pub fn with_mode(mut self, mode: DecodeMode) -> Result<Self, ConvertError> {
        if mode == DecodeMode::ShiftAdd && !self.compiled.shift_add_available() {
            return Err(ConvertError::Structure(format!(
                "shift-add decode needs log2(tau) to be a power of two (eq. 18); \
                 tau = {} does not qualify",
                self.model.kernel().tau()
            )));
        }
        self.mode = mode;
        Ok(self)
    }

    /// Sets the chunk width (see [`crate::CsrEngine::with_max_lanes`]);
    /// results are bit-identical for every setting.
    #[must_use]
    pub fn with_max_lanes(mut self, lanes: usize) -> Self {
        self.max_lanes = lanes.max(1);
        self
    }

    /// The chunk width (samples integrated together).
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// The active weight-resolution datapath.
    pub fn mode(&self) -> DecodeMode {
        self.mode
    }

    /// The compiled quantized tables.
    pub fn compiled(&self) -> &QuantCsrModel {
        &self.compiled
    }

    /// The shared handle to the compiled quantized tables.
    pub fn compiled_shared(&self) -> Arc<QuantCsrModel> {
        Arc::clone(&self.compiled)
    }

    /// The shared handle to the converted model.
    pub fn model_shared(&self) -> Arc<SnnModel> {
        Arc::clone(&self.model)
    }

    /// Per-sample input dims the engine was compiled for.
    pub fn input_dims(&self) -> &[usize] {
        &self.compiled.input_dims
    }

    /// Total traversed synapses across weighted layers (flat-equivalent).
    pub fn total_edges(&self) -> usize {
        self.compiled.total_edges
    }

    /// The decode tables the active mode resolves codes through, one per
    /// weighted stage.
    fn active_luts(&self) -> Vec<&[f32]> {
        self.compiled
            .layers
            .iter()
            .map(|l| match self.mode {
                DecodeMode::Lut => l.lut.as_slice(),
                DecodeMode::ShiftAdd => l
                    .shift_add_lut
                    .as_deref()
                    .expect("mode validated at construction"),
            })
            .collect()
    }
}

impl InferenceBackend for QuantEngine {
    fn name(&self) -> &'static str {
        "quant"
    }

    fn model(&self) -> &SnnModel {
        &self.model
    }

    fn input_dims(&self) -> Option<&[usize]> {
        Some(&self.compiled.input_dims)
    }

    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        let ctxs = self.active_luts();
        run_batch_chunked(
            &self.model,
            &self.compiled.input_dims,
            self.max_lanes,
            images,
            |data, lanes, sample_len, stats, rows| {
                let (mut scratch, reused) = self.scratch.take();
                let mut span = snn_trace::ctx_span("csr.chunk");
                span.attr("lanes", lanes);
                span.attr("scratch", if reused { "reused" } else { "fresh" });
                let result = run_chunk_stages(
                    &self.model,
                    &self.compiled.stages,
                    &ctxs,
                    &mut scratch,
                    data,
                    lanes,
                    sample_len,
                    stats,
                    rows,
                );
                self.scratch.put(scratch);
                result
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{
        ActivationLayer, AvgPool2dLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer,
        Relu, Sequential,
    };
    use snn_sim::EventSnn;
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel};

    fn cnn_model(seed: u64) -> SnnModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn lut_matches_decode_for_every_code() {
        let model = cnn_model(21);
        let compiled = QuantCsrModel::compile(&model, &[1, 8, 8], QuantConfig::default()).unwrap();
        assert_eq!(compiled.layers().len(), 2);
        for layer in compiled.layers() {
            let q = &layer.quantizer;
            assert_eq!(layer.lut.len(), q.packed_slots());
            for (p, &v) in layer.lut.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    q.decode_packed(p as u8).to_bits(),
                    "packed {p}"
                );
            }
        }
    }

    #[test]
    fn packed_codes_round_trip_through_the_tables() {
        // Every edge payload of the quantized tables must decode (via the
        // LUT) to exactly the quantized value of the f32 table's payload
        // at the same position.
        let model = cnn_model(22);
        let csr = CsrModel::compile(&model, &[1, 8, 8]).unwrap();
        let quant = QuantCsrModel::compile(&model, &[1, 8, 8], QuantConfig::default()).unwrap();
        let mut wi = 0usize;
        for (fs, qs) in csr.stages.iter().zip(quant.stages().iter()) {
            let (CsrStage::Weighted { syn: f, .. }, CsrStage::Weighted { syn: q, .. }) = (fs, qs)
            else {
                continue;
            };
            let layer = &quant.layers()[wi];
            wi += 1;
            assert_eq!(f.in_neurons(), q.in_neurons());
            for j in 0..f.in_neurons() as u32 {
                let fw: Vec<(u32, f32)> = f.edges_of(j).collect();
                let qw: Vec<(u32, u8)> = q.edges_of(j).collect();
                assert_eq!(fw.len(), qw.len(), "row {j}");
                for ((ft, w), (qt, code)) in fw.iter().zip(qw.iter()) {
                    assert_eq!(ft, qt, "targets must be structurally identical");
                    assert_eq!(
                        layer.lut[*code as usize].to_bits(),
                        layer.quantizer.quantize(*w).to_bits(),
                        "row {j}"
                    );
                }
            }
        }
        assert_eq!(wi, 2, "both weighted stages checked");
    }

    #[test]
    fn matches_event_backend_on_quantized_weights_bit_for_bit() {
        let model = cnn_model(23);
        let config = QuantConfig::default();
        let (qmodel, _) = quantize_model(&model, config.base, config.bits).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let x = snn_tensor::uniform(&[5, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (expect_logits, expect_stats) = EventSnn::new(&qmodel).run(&x).unwrap();
        for lanes in [1usize, 2, 3, 7] {
            let engine = QuantEngine::compile(&model, &[1, 8, 8], config)
                .unwrap()
                .with_max_lanes(lanes);
            let (logits, stats) = engine.run_batch(&x).unwrap();
            assert_eq!(logits.as_slice(), expect_logits.as_slice(), "lanes {lanes}");
            assert_eq!(stats, expect_stats, "lanes {lanes}");
        }
    }

    #[test]
    fn avg_pool_path_matches_quantized_event() {
        let mut rng = StdRng::seed_from_u64(24);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 3, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::AvgPool2d(AvgPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 3 * 3, 4, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let config = QuantConfig::default();
        let (qmodel, _) = quantize_model(&model, config.base, config.bits).unwrap();
        let x = snn_tensor::uniform(&[3, 2, 6, 6], 0.0, 1.0, &mut rng);
        let (a, sa) = EventSnn::new(&qmodel).run(&x).unwrap();
        let engine = QuantEngine::compile(&model, &[2, 6, 6], config).unwrap();
        let (b, sb) = engine.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(sa, sb);
    }

    #[test]
    fn code_bytes_shrink_stored_weights_4x() {
        let model = cnn_model(25);
        let csr = CsrModel::compile(&model, &[1, 8, 8]).unwrap();
        let quant = QuantCsrModel::compile(&model, &[1, 8, 8], QuantConfig::default()).unwrap();
        let f32_fp = csr.footprint();
        let q_fp = quant.footprint();
        // Same structure, 1-byte payloads: exactly 4x on the weight array.
        assert_eq!(q_fp.weight_bytes * 4, f32_fp.weight_bytes);
        assert_eq!(q_fp.logical_edges, f32_fp.logical_edges);
        assert_eq!(q_fp.stored_edges, f32_fp.stored_edges);
        assert!(q_fp.stored_bytes < f32_fp.stored_bytes);
    }

    #[test]
    fn shift_add_mode_stays_within_the_mantissa_bound() {
        let model = cnn_model(26);
        let config = QuantConfig {
            mode: DecodeMode::ShiftAdd,
            ..QuantConfig::default()
        };
        let engine = QuantEngine::compile(&model, &[1, 8, 8], config).unwrap();
        assert_eq!(engine.mode(), DecodeMode::ShiftAdd);
        let compiled = engine.compiled();
        assert!(compiled.shift_add_available());
        assert!(compiled.mantissa_error_bound() > 0.0);
        for layer in compiled.layers() {
            assert!(
                layer.shift_add_max_rel_error <= layer.mantissa_error_bound,
                "measured {} vs bound {}",
                layer.shift_add_max_rel_error,
                layer.mantissa_error_bound
            );
        }
        // The two datapaths agree to within the bound's reach on logits.
        let mut rng = StdRng::seed_from_u64(27);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let lut_engine = engine.clone().with_mode(DecodeMode::Lut).unwrap();
        let (sa_logits, _) = engine.run_batch(&x).unwrap();
        let (lut_logits, _) = lut_engine.run_batch(&x).unwrap();
        let scale = lut_logits.abs_max().max(1.0);
        for (a, b) in sa_logits.as_slice().iter().zip(lut_logits.as_slice()) {
            assert!((a - b).abs() <= 1e-3 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn shift_add_rejected_for_non_codesigned_kernel() {
        // tau = 8: log2(tau) = 3 is not a power of two (eq. 18 fails), so
        // the LUT mode works but the shift-add datapath must refuse.
        let mut rng = StdRng::seed_from_u64(28);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(12, 3, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::new(8.0, 1.0), 24).unwrap();
        let lut = QuantEngine::compile(&model, &[1, 3, 4], QuantConfig::default());
        assert!(lut.is_ok());
        let err = QuantEngine::compile(
            &model,
            &[1, 3, 4],
            QuantConfig {
                mode: DecodeMode::ShiftAdd,
                ..QuantConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("eq. 18"), "got: {err}");
    }

    #[test]
    fn rejects_bad_configs() {
        let model = cnn_model(29);
        for bits in [1u8, 9] {
            let err = QuantCsrModel::compile(
                &model,
                &[1, 8, 8],
                QuantConfig {
                    bits,
                    ..QuantConfig::default()
                },
            )
            .unwrap_err();
            assert!(err.to_string().contains("bits"), "bits {bits}: {err}");
        }
        assert!(QuantCsrModel::compile(&model, &[2, 8, 8], QuantConfig::default()).is_err());
    }

    #[test]
    fn rejects_all_zero_layer() {
        let mut model = cnn_model(30);
        let SnnLayer::Dense { weight, .. } = &mut model.layers_mut()[3] else {
            panic!("layer 3 is dense");
        };
        for w in weight.as_mut_slice() {
            *w = 0.0;
        }
        let err = QuantCsrModel::compile(&model, &[1, 8, 8], QuantConfig::default()).unwrap_err();
        assert!(err.to_string().contains("nonzero"), "got: {err}");
    }

    #[test]
    fn clone_shares_model_and_tables() {
        let model = Arc::new(cnn_model(31));
        let engine =
            QuantEngine::compile_shared(Arc::clone(&model), &[1, 8, 8], QuantConfig::default())
                .unwrap();
        let dup = engine.clone();
        assert!(Arc::ptr_eq(&engine.model_shared(), &dup.model_shared()));
        assert!(Arc::ptr_eq(
            &engine.compiled_shared(),
            &dup.compiled_shared()
        ));
        assert!(Arc::ptr_eq(&model, &engine.model_shared()));
        let mut rng = StdRng::seed_from_u64(32);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (a, _) = engine.run_batch(&x).unwrap();
        let (b, _) = dup.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zeroed_weights_keep_stats_identical() {
        // Underflow/zero codes stay as stored edges, so synaptic-op
        // accounting matches the quantized reference exactly even for
        // pruned models.
        let mut model = cnn_model(33);
        let SnnLayer::Conv { weight, .. } = &mut model.layers_mut()[0] else {
            panic!("layer 0 is conv");
        };
        let wd = weight.as_mut_slice();
        wd[0] = 0.0;
        wd[7] = 1e-12; // deep underflow -> zero code
        let config = QuantConfig::default();
        let (qmodel, _) = quantize_model(&model, config.base, config.bits).unwrap();
        let mut rng = StdRng::seed_from_u64(34);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (a, sa) = EventSnn::new(&qmodel).run(&x).unwrap();
        let engine = QuantEngine::compile(&model, &[1, 8, 8], config).unwrap();
        let (b, sb) = engine.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(sa, sb, "zero codes must still be charged as ops");
    }
}
