//! Deterministic, seeded fault injection — failure as a first-class,
//! testable input to the serving stack.
//!
//! A process-global [`FaultInjector`] sits behind every fault-prone
//! operation in the runtime and gateway: backend execution (panic,
//! slowdown), artifact I/O (read error, torn write), compilation, and
//! the HTTP edge (connection reset). Call sites ask
//! [`FaultInjector::should`] whether the fault fires *right now*; the
//! draw comes from a seeded xorshift64* stream, so a given seed and
//! request schedule produce a reproducible storm.
//!
//! Gating mirrors `snn-trace`: when the injector is disarmed (the
//! default, and the only production state) every hook is **one relaxed
//! atomic load** and the serving path is bit-identical to a build
//! without the hooks. Tests and the chaos bench arm it with
//! [`FaultInjector::arm`] and disarm with [`FaultInjector::disarm`].
//!
//! ```
//! use snn_runtime::{FaultConfig, FaultInjector, FaultPoint};
//!
//! let injector = FaultInjector::global();
//! assert!(!injector.should(FaultPoint::BackendPanic)); // disarmed: never fires
//! injector.arm(
//!     42,
//!     FaultConfig {
//!         backend_panic: 1.0,
//!         ..FaultConfig::default()
//!     },
//! );
//! assert!(injector.should(FaultPoint::BackendPanic));
//! injector.disarm();
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use serde::{Deserialize, Serialize};
use snn_log::LogCollector;

/// Every place the stack can be made to fail on purpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// The inference backend panics mid-batch inside a worker thread.
    BackendPanic,
    /// The backend stalls for [`FaultConfig::slow_delay`] before running.
    BackendSlow,
    /// [`ModelArtifact::load`](crate::ModelArtifact::load) fails with an
    /// injected I/O error before touching the file.
    ArtifactRead,
    /// [`ModelArtifact::save`](crate::ModelArtifact::save) tears mid-write:
    /// a truncated temp file is left behind and the publish rename never
    /// happens (the published path must stay intact).
    ArtifactWrite,
    /// Artifact-to-engine compilation fails inside the registry.
    Compile,
    /// The gateway drops an accepted connection without responding.
    ConnReset,
}

impl FaultPoint {
    /// All points, in counter order.
    pub const ALL: [FaultPoint; 6] = [
        FaultPoint::BackendPanic,
        FaultPoint::BackendSlow,
        FaultPoint::ArtifactRead,
        FaultPoint::ArtifactWrite,
        FaultPoint::Compile,
        FaultPoint::ConnReset,
    ];

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Self::BackendPanic => "backend_panic",
            Self::BackendSlow => "backend_slow",
            Self::ArtifactRead => "artifact_read",
            Self::ArtifactWrite => "artifact_write",
            Self::Compile => "compile",
            Self::ConnReset => "conn_reset",
        }
    }

    fn index(self) -> usize {
        match self {
            Self::BackendPanic => 0,
            Self::BackendSlow => 1,
            Self::ArtifactRead => 2,
            Self::ArtifactWrite => 3,
            Self::Compile => 4,
            Self::ConnReset => 5,
        }
    }
}

/// Per-point firing probabilities (each in `[0, 1]`) plus the injected
/// slowdown. The default fires nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a dispatched batch panics inside its worker.
    pub backend_panic: f64,
    /// Probability a dispatched batch stalls for
    /// [`slow_delay`](Self::slow_delay) first.
    pub backend_slow: f64,
    /// Probability an artifact load fails with an injected I/O error.
    pub artifact_read: f64,
    /// Probability an artifact save tears mid-write.
    pub artifact_write: f64,
    /// Probability artifact compilation fails.
    pub compile: f64,
    /// Probability the gateway resets an accepted connection.
    pub conn_reset: f64,
    /// How long an injected [`FaultPoint::BackendSlow`] stalls.
    pub slow_delay: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            backend_panic: 0.0,
            backend_slow: 0.0,
            artifact_read: 0.0,
            artifact_write: 0.0,
            compile: 0.0,
            conn_reset: 0.0,
            slow_delay: Duration::from_millis(2),
        }
    }
}

impl FaultConfig {
    fn probability(&self, point: FaultPoint) -> f64 {
        match point {
            FaultPoint::BackendPanic => self.backend_panic,
            FaultPoint::BackendSlow => self.backend_slow,
            FaultPoint::ArtifactRead => self.artifact_read,
            FaultPoint::ArtifactWrite => self.artifact_write,
            FaultPoint::Compile => self.compile,
            FaultPoint::ConnReset => self.conn_reset,
        }
    }
}

/// Snapshot of how often each fault point was consulted and fired since
/// the injector was last armed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Injected backend panics.
    pub backend_panics: u64,
    /// Injected backend slowdowns.
    pub backend_slowdowns: u64,
    /// Injected artifact read errors.
    pub artifact_read_errors: u64,
    /// Injected torn artifact writes.
    pub artifact_torn_writes: u64,
    /// Injected compile failures.
    pub compile_failures: u64,
    /// Injected connection resets.
    pub conn_resets: u64,
    /// Total fault-point evaluations while armed.
    pub evaluated: u64,
}

impl FaultCounts {
    /// Total faults fired across every point.
    pub fn total_fired(&self) -> u64 {
        self.backend_panics
            + self.backend_slowdowns
            + self.artifact_read_errors
            + self.artifact_torn_writes
            + self.compile_failures
            + self.conn_resets
    }
}

/// Deterministic xorshift64* stream — the injector's only randomness.
struct Inner {
    rng: u64,
    config: FaultConfig,
    fired: [u64; 6],
    evaluated: u64,
    log: Option<Arc<LogCollector>>,
}

impl Inner {
    fn next_f64(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The seeded fault injector. One process-global instance exists
/// ([`FaultInjector::global`]); while disarmed, every
/// [`should`](Self::should) call is a single relaxed atomic load.
pub struct FaultInjector {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl FaultInjector {
    fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                rng: 1,
                config: FaultConfig::default(),
                fired: [0; 6],
                evaluated: 0,
                log: None,
            }),
        }
    }

    /// The process-global injector every hook consults.
    pub fn global() -> &'static FaultInjector {
        static GLOBAL: OnceLock<FaultInjector> = OnceLock::new();
        GLOBAL.get_or_init(FaultInjector::new)
    }

    /// Arms the injector: resets the deterministic stream to `seed`,
    /// installs `config`, and zeroes the fired counters.
    pub fn arm(&self, seed: u64, config: FaultConfig) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.rng = seed.max(1);
        inner.config = config;
        inner.fired = [0; 6];
        inner.evaluated = 0;
        drop(inner);
        self.enabled.store(true, Ordering::Release);
    }

    /// Disarms the injector; every hook returns to the one-relaxed-load
    /// fast path and no further faults fire. Counters are preserved until
    /// the next [`arm`](Self::arm).
    pub fn disarm(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Attaches a log collector: every fired fault emits a `faults`
    /// warning event naming the injection point. Survives re-arming.
    pub fn attach_log(&self, log: Arc<LogCollector>) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).log = Some(log);
    }

    /// Whether the injector is currently armed (one relaxed load).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Draws whether `point` fires right now. Disarmed: always `false`
    /// after a single relaxed atomic load.
    #[inline]
    pub fn should(&self, point: FaultPoint) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.roll(point)
    }

    #[cold]
    fn roll(&self, point: FaultPoint) -> bool {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.evaluated += 1;
        let p = inner.config.probability(point);
        if p <= 0.0 {
            return false;
        }
        let fire = inner.next_f64() < p;
        if fire {
            inner.fired[point.index()] += 1;
            // The collector's locks are leaves: logging under `inner` is
            // safe, and no incident is triggered from here.
            if let Some(log) = &inner.log {
                snn_log::warn!(
                    log,
                    "faults",
                    { "point": point.label(), "fired": inner.fired[point.index()] },
                    "injected fault fired: {}",
                    point.label()
                );
            }
        }
        fire
    }

    /// The configured [`FaultPoint::BackendSlow`] stall duration.
    pub fn slow_delay(&self) -> Duration {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .config
            .slow_delay
    }

    /// Snapshot of fired/evaluated counters since the last
    /// [`arm`](Self::arm).
    pub fn counts(&self) -> FaultCounts {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        FaultCounts {
            backend_panics: inner.fired[0],
            backend_slowdowns: inner.fired[1],
            artifact_read_errors: inner.fired[2],
            artifact_torn_writes: inner.fired[3],
            compile_failures: inner.fired[4],
            conn_resets: inner.fired[5],
            evaluated: inner.evaluated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The injector is process-global; tests in this module serialize on
    // one lock so armed windows never overlap.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_never_fires() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let injector = FaultInjector::global();
        injector.disarm();
        for point in FaultPoint::ALL {
            assert!(!injector.should(point));
        }
    }

    #[test]
    fn armed_schedule_is_deterministic_per_seed() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let injector = FaultInjector::global();
        let config = FaultConfig {
            backend_panic: 0.3,
            conn_reset: 0.3,
            ..FaultConfig::default()
        };
        let draw = |seed: u64| -> Vec<bool> {
            injector.arm(seed, config.clone());
            let out = (0..64)
                .map(|i| {
                    injector.should(if i % 2 == 0 {
                        FaultPoint::BackendPanic
                    } else {
                        FaultPoint::ConnReset
                    })
                })
                .collect();
            injector.disarm();
            out
        };
        let a = draw(7);
        let b = draw(7);
        let c = draw(8);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds must diverge");
        assert!(a.iter().any(|&f| f), "p=0.3 over 64 draws must fire");
        assert!(a.iter().any(|&f| !f), "p=0.3 over 64 draws must skip");
    }

    #[test]
    fn counters_track_fired_faults() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let injector = FaultInjector::global();
        injector.arm(
            3,
            FaultConfig {
                artifact_read: 1.0,
                ..FaultConfig::default()
            },
        );
        for _ in 0..5 {
            assert!(injector.should(FaultPoint::ArtifactRead));
        }
        assert!(!injector.should(FaultPoint::Compile));
        let counts = injector.counts();
        injector.disarm();
        assert_eq!(counts.artifact_read_errors, 5);
        assert_eq!(counts.compile_failures, 0);
        assert_eq!(counts.evaluated, 6);
        assert_eq!(counts.total_fired(), 5);
    }
}
