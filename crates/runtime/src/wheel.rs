//! O(1) time-wheel spike queue.
//!
//! TTFS spike times live in the closed window `[0, T]`, so a spike queue
//! does not need a comparison sort: a wheel with `T + 1` slots gives O(1)
//! insertion and O(T + n) time-ordered drain (the idiom of event-driven SNN
//! frameworks such as `embed`'s `TemporalWheel`). Within a slot, insertion
//! order is preserved — callers that insert in ascending neuron order get
//! exactly the `(t, neuron)` order `SpikeTrain::sort_by_time` produces,
//! which keeps float accumulation order identical to the reference backend.

use snn_sim::{Spike, SpikeTrain};

/// A spike event as stored in the wheel: `(neuron, scale)` bucketed by its
/// timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelSpike {
    /// Flat neuron index in the emitting layer.
    pub neuron: u32,
    /// Linear scale attached by pooling (1.0 for ordinary spikes).
    pub scale: f32,
}

/// Time-indexed spike buckets for one layer boundary.
#[derive(Debug, Clone)]
pub struct TimeWheel {
    slots: Vec<Vec<WheelSpike>>,
    len: usize,
}

impl TimeWheel {
    /// Creates an empty wheel for spike times in `[0, window]`.
    pub fn new(window: u32) -> Self {
        Self {
            slots: vec![Vec::new(); window as usize + 1],
            len: 0,
        }
    }

    /// The window `T` (slot count minus one).
    pub fn window(&self) -> u32 {
        (self.slots.len() - 1) as u32
    }

    /// Number of queued spikes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no spikes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) insertion.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the window — that is an engine bug, not a
    /// caller error.
    pub fn push(&mut self, t: u32, neuron: u32, scale: f32) {
        self.slots[t as usize].push(WheelSpike { neuron, scale });
        self.len += 1;
    }

    /// Iterates `(t, neuron, scale)` in ascending time order (insertion
    /// order within a slot).
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .flat_map(|(t, slot)| slot.iter().map(move |s| (t as u32, s.neuron, s.scale)))
    }

    /// Converts to a time-sorted [`SpikeTrain`] over a neuron grid of
    /// `dims` (bridge to the shared event-domain pooling primitives).
    pub fn to_train(&self, dims: Vec<usize>) -> SpikeTrain {
        let mut train = SpikeTrain::new(dims, self.window());
        for (t, neuron, scale) in self.iter_ordered() {
            train.push(Spike {
                neuron: neuron as usize,
                t,
                scale,
            });
        }
        train
    }

    /// Builds a wheel from a time-sorted [`SpikeTrain`].
    pub fn from_train(train: &SpikeTrain) -> Self {
        let mut wheel = Self::new(train.window());
        for s in train.spikes() {
            wheel.push(s.t, s.neuron as u32, s.scale);
        }
        wheel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut w = TimeWheel::new(10);
        w.push(7, 1, 1.0);
        w.push(2, 5, 0.5);
        w.push(7, 0, 1.0);
        w.push(0, 3, 1.0);
        let order: Vec<(u32, u32)> = w.iter_ordered().map(|(t, n, _)| (t, n)).collect();
        assert_eq!(order, vec![(0, 3), (2, 5), (7, 1), (7, 0)]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn train_roundtrip_preserves_order_and_scale() {
        let mut train = SpikeTrain::new(vec![2, 3], 8);
        train.push(Spike {
            neuron: 4,
            t: 3,
            scale: 0.25,
        });
        train.push(Spike {
            neuron: 1,
            t: 0,
            scale: 1.0,
        });
        train.sort_by_time();
        let wheel = TimeWheel::from_train(&train);
        assert_eq!(wheel.len(), 2);
        let back = wheel.to_train(vec![2, 3]);
        assert_eq!(back.spikes(), train.spikes());
        assert_eq!(back.window(), 8);
    }

    #[test]
    fn boundary_time_is_valid() {
        let mut w = TimeWheel::new(5);
        w.push(5, 0, 1.0);
        assert_eq!(w.iter_ordered().next(), Some((5, 0, 1.0)));
    }

    #[test]
    #[should_panic]
    fn rejects_time_beyond_window() {
        let mut w = TimeWheel::new(5);
        w.push(6, 0, 1.0);
    }
}
