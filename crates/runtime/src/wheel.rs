//! O(1) time-wheel spike queues.
//!
//! TTFS spike times live in the closed window `[0, T]`, so a spike queue
//! does not need a comparison sort: a wheel with `T + 1` slots gives O(1)
//! insertion and O(T + n) time-ordered drain (the idiom of event-driven SNN
//! frameworks such as `embed`'s `TemporalWheel`). Within a slot, insertion
//! order is preserved — callers that insert in ascending neuron order get
//! exactly the `(t, neuron)` order `SpikeTrain::sort_by_time` produces,
//! which keeps float accumulation order identical to the reference backend.
//!
//! Two wheels live here: [`TimeWheel`] is the single-sample reference
//! structure (the minimal embodiment of the invariant above, kept as the
//! public building block for custom backends), and [`BatchWheel`] is what
//! [`crate::CsrEngine`] actually executes on — the multi-lane variant
//! whose slots merge a whole chunk of samples for edge-major integration.

use snn_sim::{Spike, SpikeTrain};

/// A spike event as stored in the wheel: `(neuron, scale)` bucketed by its
/// timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WheelSpike {
    /// Flat neuron index in the emitting layer.
    pub neuron: u32,
    /// Linear scale attached by pooling (1.0 for ordinary spikes).
    pub scale: f32,
}

/// Time-indexed spike buckets for one layer boundary.
#[derive(Debug, Clone)]
pub struct TimeWheel {
    slots: Vec<Vec<WheelSpike>>,
    len: usize,
}

impl TimeWheel {
    /// Creates an empty wheel for spike times in `[0, window]`.
    pub fn new(window: u32) -> Self {
        Self {
            slots: vec![Vec::new(); window as usize + 1],
            len: 0,
        }
    }

    /// The window `T` (slot count minus one).
    pub fn window(&self) -> u32 {
        (self.slots.len() - 1) as u32
    }

    /// Number of queued spikes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no spikes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) insertion.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the window — that is an engine bug, not a
    /// caller error.
    pub fn push(&mut self, t: u32, neuron: u32, scale: f32) {
        self.slots[t as usize].push(WheelSpike { neuron, scale });
        self.len += 1;
    }

    /// Iterates `(t, neuron, scale)` in ascending time order (insertion
    /// order within a slot).
    pub fn iter_ordered(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .flat_map(|(t, slot)| slot.iter().map(move |s| (t as u32, s.neuron, s.scale)))
    }

    /// Converts to a time-sorted [`SpikeTrain`] over a neuron grid of
    /// `dims` (bridge to the shared event-domain pooling primitives).
    pub fn to_train(&self, dims: Vec<usize>) -> SpikeTrain {
        let mut train = SpikeTrain::new(dims, self.window());
        for (t, neuron, scale) in self.iter_ordered() {
            train.push(Spike {
                neuron: neuron as usize,
                t,
                scale,
            });
        }
        train
    }

    /// Builds a wheel from a time-sorted [`SpikeTrain`].
    pub fn from_train(train: &SpikeTrain) -> Self {
        let mut wheel = Self::new(train.window());
        for s in train.spikes() {
            wheel.push(s.t, s.neuron as u32, s.scale);
        }
        wheel
    }
}

/// A spike event in a [`BatchWheel`] slot: which lane (sample of the
/// chunk) fired which neuron, at the slot's timestep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneSpike {
    /// Flat neuron index in the emitting layer.
    pub neuron: u32,
    /// Sample lane within the chunk.
    pub lane: u32,
    /// Linear scale attached by pooling (1.0 for ordinary spikes).
    pub scale: f32,
}

/// A time wheel over a whole chunk of samples: every lane's spikes share
/// one set of time slots, so the integration loop can walk a slot once,
/// group equal neurons across lanes, and stream each CSR row a single time
/// for the whole group (edge-major batched integration).
///
/// Correctness hinges on ordering. Each lane's spikes are pushed in the
/// canonical per-sample order (ascending neuron within a slot, duplicates
/// in emission order — exactly what [`TimeWheel`] holds for one sample);
/// [`seal`](Self::seal) then stable-sorts every slot by neuron. Stability
/// keeps each lane's duplicates in emission order, so restricting a sealed
/// slot to one lane reproduces that lane's canonical sequence — which is
/// why the merged edge-major traversal accumulates every `(lane, target)`
/// cell in exactly the reference backend's f64 order.
#[derive(Debug, Clone, Default)]
pub struct BatchWheel {
    slots: Vec<Vec<LaneSpike>>,
    lanes: usize,
    len: usize,
}

impl BatchWheel {
    /// Creates an empty wheel for `lanes` samples and spike times in
    /// `[0, window]`.
    pub fn new(window: u32, lanes: usize) -> Self {
        Self {
            slots: vec![Vec::new(); window as usize + 1],
            lanes,
            len: 0,
        }
    }

    /// Clears the wheel for reuse, keeping slot allocations (the scratch
    /// buffers survive across stages and calls).
    pub fn reset(&mut self, window: u32, lanes: usize) {
        let want = window as usize + 1;
        if self.slots.len() > want {
            self.slots.truncate(want);
        }
        for slot in &mut self.slots {
            slot.clear();
        }
        while self.slots.len() < want {
            self.slots.push(Vec::new());
        }
        self.lanes = lanes;
        self.len = 0;
    }

    /// Number of sample lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The window `T` (slot count minus one).
    pub fn window(&self) -> u32 {
        (self.slots.len() - 1) as u32
    }

    /// Total queued spikes across all lanes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the wheel holds no spikes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) insertion. Push lanes in their canonical per-sample order;
    /// call [`seal`](Self::seal) before reading slots.
    ///
    /// # Panics
    ///
    /// Panics if `t` exceeds the window or `lane` is out of range — engine
    /// bugs, not caller errors.
    pub fn push(&mut self, t: u32, lane: u32, neuron: u32, scale: f32) {
        debug_assert!((lane as usize) < self.lanes, "lane {lane} out of range");
        self.slots[t as usize].push(LaneSpike {
            neuron,
            lane,
            scale,
        });
        self.len += 1;
    }

    /// Appends one lane's time-sorted [`SpikeTrain`] (bridge back from the
    /// event-domain pooling primitives).
    pub fn push_train(&mut self, lane: u32, train: &SpikeTrain) {
        for s in train.spikes() {
            self.push(s.t, lane, s.neuron as u32, s.scale);
        }
    }

    /// Stable-sorts every slot by neuron so equal neurons across lanes sit
    /// adjacent (one CSR row fetch serves the whole group) while each
    /// lane's duplicate order is preserved. Slots that are already
    /// non-descending by neuron — the engine pushes encode/fire spikes
    /// neuron-major, so its wheels arrive pre-grouped — are skipped in one
    /// O(n) scan.
    pub fn seal(&mut self) {
        for slot in &mut self.slots {
            if slot.windows(2).all(|w| w[0].neuron <= w[1].neuron) {
                continue;
            }
            slot.sort_by_key(|s| s.neuron);
        }
    }

    /// The (sealed) spike group of time slot `t`.
    #[inline]
    pub fn slot(&self, t: u32) -> &[LaneSpike] {
        &self.slots[t as usize]
    }

    /// Extracts one lane's spikes as a time-sorted [`SpikeTrain`] over a
    /// neuron grid of `dims` (bridge to the event-domain pooling
    /// primitives). On a sealed wheel this is the lane's canonical
    /// `(t, neuron)`-ascending sequence.
    pub fn lane_train(&self, lane: u32, dims: Vec<usize>) -> SpikeTrain {
        let mut train = SpikeTrain::new(dims, self.window());
        for (t, slot) in self.slots.iter().enumerate() {
            for s in slot {
                if s.lane == lane {
                    train.push(Spike {
                        neuron: s.neuron as usize,
                        t: t as u32,
                        scale: s.scale,
                    });
                }
            }
        }
        train
    }

    /// Splits the wheel into every lane's [`SpikeTrain`] in **one pass**
    /// over the slots (the per-stage pooling bridge; per-lane filtering
    /// would rescan the whole wheel once per lane). Each train is the
    /// lane's canonical `(t, neuron)`-ascending sequence on a sealed
    /// wheel.
    pub fn lane_trains(&self, dims: &[usize]) -> Vec<SpikeTrain> {
        let mut trains: Vec<SpikeTrain> = (0..self.lanes)
            .map(|_| SpikeTrain::new(dims.to_vec(), self.window()))
            .collect();
        for (t, slot) in self.slots.iter().enumerate() {
            for s in slot {
                trains[s.lane as usize].push(Spike {
                    neuron: s.neuron as usize,
                    t: t as u32,
                    scale: s.scale,
                });
            }
        }
        trains
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_time_order() {
        let mut w = TimeWheel::new(10);
        w.push(7, 1, 1.0);
        w.push(2, 5, 0.5);
        w.push(7, 0, 1.0);
        w.push(0, 3, 1.0);
        let order: Vec<(u32, u32)> = w.iter_ordered().map(|(t, n, _)| (t, n)).collect();
        assert_eq!(order, vec![(0, 3), (2, 5), (7, 1), (7, 0)]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn train_roundtrip_preserves_order_and_scale() {
        let mut train = SpikeTrain::new(vec![2, 3], 8);
        train.push(Spike {
            neuron: 4,
            t: 3,
            scale: 0.25,
        });
        train.push(Spike {
            neuron: 1,
            t: 0,
            scale: 1.0,
        });
        train.sort_by_time();
        let wheel = TimeWheel::from_train(&train);
        assert_eq!(wheel.len(), 2);
        let back = wheel.to_train(vec![2, 3]);
        assert_eq!(back.spikes(), train.spikes());
        assert_eq!(back.window(), 8);
    }

    #[test]
    fn boundary_time_is_valid() {
        let mut w = TimeWheel::new(5);
        w.push(5, 0, 1.0);
        assert_eq!(w.iter_ordered().next(), Some((5, 0, 1.0)));
    }

    #[test]
    #[should_panic]
    fn rejects_time_beyond_window() {
        let mut w = TimeWheel::new(5);
        w.push(6, 0, 1.0);
    }

    #[test]
    fn batch_seal_groups_neurons_and_keeps_lane_dup_order() {
        let mut w = BatchWheel::new(4, 3);
        // Lane 0 emits neurons 2, 7 at t=1; lane 1 emits 2 twice (avg-pool
        // style duplicates with different scales) then 9; lane 2 emits 7.
        w.push(1, 0, 2, 1.0);
        w.push(1, 0, 7, 1.0);
        w.push(1, 1, 2, 0.25);
        w.push(1, 1, 2, 0.5);
        w.push(1, 1, 9, 1.0);
        w.push(1, 2, 7, 0.75);
        w.seal();
        let slot = w.slot(1);
        let key: Vec<(u32, u32, f32)> = slot.iter().map(|s| (s.neuron, s.lane, s.scale)).collect();
        assert_eq!(
            key,
            vec![
                (2, 0, 1.0),
                (2, 1, 0.25),
                (2, 1, 0.5), // lane 1's duplicate order preserved
                (7, 0, 1.0),
                (7, 2, 0.75),
                (9, 1, 1.0),
            ]
        );
        assert_eq!(w.len(), 6);
        assert_eq!(w.lanes(), 3);
    }

    #[test]
    fn batch_lane_train_roundtrip_is_canonical() {
        let mut train = SpikeTrain::new(vec![3, 3], 6);
        train.push(Spike {
            neuron: 8,
            t: 2,
            scale: 1.0,
        });
        train.push(Spike {
            neuron: 1,
            t: 2,
            scale: 0.5,
        });
        train.push(Spike {
            neuron: 4,
            t: 0,
            scale: 1.0,
        });
        train.sort_by_time();
        let mut w = BatchWheel::new(6, 2);
        w.push_train(0, &train);
        // A second lane's spikes must not leak into lane 0's view.
        w.push(2, 1, 5, 1.0);
        w.seal();
        let back = w.lane_train(0, vec![3, 3]);
        assert_eq!(back.spikes(), train.spikes());
        assert_eq!(back.window(), 6);
        assert_eq!(w.lane_train(1, vec![3, 3]).len(), 1);
    }

    #[test]
    fn batch_reset_reuses_storage() {
        let mut w = BatchWheel::new(3, 2);
        w.push(0, 0, 1, 1.0);
        w.push(3, 1, 2, 1.0);
        w.reset(5, 4);
        assert_eq!(w.window(), 5);
        assert_eq!(w.lanes(), 4);
        assert!(w.is_empty());
        w.reset(2, 1);
        assert_eq!(w.window(), 2);
        assert!(w.slot(0).is_empty() && w.slot(2).is_empty());
    }
}
