//! Adaptive deadline batching for the streaming front-end.
//!
//! Requests arrive one at a time; the TTFS engine amortizes per-spike work
//! best over batches. [`DeadlineBatcher`] is the flush policy that mediates
//! between the two: admit requests into a pending window and flush when
//! either the window holds [`max_batch`](DeadlineBatcher::new) requests or
//! the **earliest admitted deadline** expires — whichever comes first
//! (EDF: earliest-deadline-first). Every request carries its own deadline
//! ([`SubmitOptions::deadline`], defaulting to the batcher's `max_delay`
//! past its arrival), so a latency-tolerant client can donate batching
//! slack while an urgent one bounds the whole window. Count flushes keep
//! throughput high under load; deadline flushes bound the latency any
//! admitted request can be held hostage for. Flushed batches are assembled
//! in EDF order: ascending deadline, ties broken by descending
//! [`SubmitOptions::priority`], then admission order.
//!
//! The policy is a pure state machine over caller-supplied [`Instant`]s
//! (no threads, no clocks of its own), so it is deterministic and unit
//! testable. The thread that drives it — and the [`Ticket`] handed to each
//! submitter — live with [`crate::StreamingServer`] in the server module.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snn_sim::RunStats;
use snn_tensor::Tensor;
use snn_trace::TraceTarget;
use ttfs_core::ConvertError;

use crate::metrics::StreamingRecorder;

/// Why the deadline batcher flushed a pending window. Recorded per batch
/// in [`StreamingMetrics`](crate::StreamingMetrics) (the three
/// `flushes_*` counters) and as the `reason` attribute of the
/// `batch.flush` trace span — a deadline-pressured server (mostly
/// [`EdfDeadline`](Self::EdfDeadline)) is operationally very different
/// from a well-batched one (mostly [`MaxBatch`](Self::MaxBatch)) at the
/// same throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// The window's earliest admitted deadline expired (EDF trigger).
    EdfDeadline,
    /// The window filled to `max_batch` requests.
    MaxBatch,
    /// Shutdown drained the window regardless of count or deadline.
    Drain,
}

impl FlushReason {
    /// Stable label used in metrics and trace attributes.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::EdfDeadline => "edf_deadline",
            Self::MaxBatch => "max_batch",
            Self::Drain => "drain",
        }
    }
}

impl std::fmt::Display for FlushReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration for the [`crate::StreamingServer`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Worker threads executing formed batches (0 = one per core).
    pub threads: usize,
    /// Flush a pending batch as soon as it holds this many requests
    /// (0 = clamp to 1).
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long.
    /// `Duration::ZERO` degenerates to one batch per wakeup — lowest
    /// latency, least amortization.
    pub max_delay: Duration,
    /// Backpressure: the most admitted-but-unresolved requests (pending
    /// window + worker queue + in flight) the server holds before
    /// [`submit`](crate::StreamingServer::submit) starts returning
    /// [`SubmitError::QueueFull`]. `0` = unbounded (accept everything and
    /// let the queue grow — the pre-backpressure behavior).
    pub max_pending: usize,
    /// Priority brownout: above a pending high-water mark, shed the
    /// *lowest-priority* requests first instead of waiting for the
    /// indiscriminate [`max_pending`](Self::max_pending) cliff. `None`
    /// disables brownout (the default).
    pub brownout: Option<BrownoutConfig>,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            max_pending: 0,
            brownout: None,
        }
    }
}

/// Priority-brownout policy for [`StreamingConfig::brownout`].
///
/// When the admitted-but-unresolved count reaches
/// [`high_water`](Self::high_water) the server *engages* brownout and
/// sheds every submission whose priority is below
/// [`shed_below_priority`](Self::shed_below_priority) with
/// [`SubmitError::Brownout`]; higher-priority traffic still rides the
/// normal admission path (and the `max_pending` cliff, if configured).
/// Brownout *disengages* only once the count falls back to
/// [`low_water`](Self::low_water) — the hysteresis gap prevents the
/// engaged bit from flapping at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Engage brownout when admitted-but-unresolved requests reach this.
    pub high_water: usize,
    /// Disengage once the count falls back to this (must be below
    /// `high_water` for real hysteresis).
    pub low_water: usize,
    /// While engaged, shed submissions with priority strictly below this.
    /// `1` sheds only priority-0 traffic; `u8::MAX` sheds all but the
    /// highest.
    pub shed_below_priority: u8,
}

/// Why [`crate::StreamingServer::submit`] refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The bounded submission queue is at
    /// [`max_pending`](StreamingConfig::max_pending) admitted-but-
    /// unresolved requests: shed the request now (retry, divert, or fail
    /// upstream) instead of queueing it into ever-growing latency.
    QueueFull {
        /// The configured bound that was hit.
        max_pending: usize,
    },
    /// The server is browning out: it is above its
    /// [`BrownoutConfig::high_water`] mark and this request's priority is
    /// below the shed threshold. Higher-priority traffic is still being
    /// served — retry later, or resubmit at a higher priority if the
    /// request genuinely warrants one.
    Brownout {
        /// The shed request's priority.
        priority: u8,
        /// The engaged threshold: priorities below this are shed.
        shed_below_priority: u8,
    },
    /// The request was structurally invalid or the server is shut down.
    Rejected(ConvertError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { max_pending } => write!(
                f,
                "submission queue full: {max_pending} requests already admitted and unresolved"
            ),
            Self::Brownout {
                priority,
                shed_below_priority,
            } => write!(
                f,
                "brownout: shedding priority {priority} (below {shed_below_priority}) while above the high-water mark"
            ),
            Self::Rejected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::QueueFull { .. } | Self::Brownout { .. } => None,
            Self::Rejected(e) => Some(e),
        }
    }
}

impl From<ConvertError> for SubmitError {
    fn from(e: ConvertError) -> Self {
        Self::Rejected(e)
    }
}

/// Per-request scheduling options for
/// [`submit_with`](crate::StreamingServer::submit_with).
///
/// The defaults reproduce plain [`submit`](crate::StreamingServer::submit):
/// the request inherits the server's
/// [`max_delay`](StreamingConfig::max_delay) as its deadline and the lowest
/// priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubmitOptions {
    /// The most time this request may sit in the batcher's pending window
    /// before the window is flushed — its *batching deadline*, counted from
    /// submission. `None` inherits the server's configured `max_delay`. A
    /// relaxed deadline donates batching slack; `Duration::ZERO` forces the
    /// window to flush at the next batcher wakeup. The window always
    /// flushes when its **earliest** admitted deadline expires (EDF), so a
    /// tight deadline bounds every request that shares the window.
    pub deadline: Option<Duration>,
    /// Assembly priority: on equal deadlines, higher-priority requests sort
    /// earlier in the formed batch. Priority never delays a flush and never
    /// evicts an admitted request; it only breaks EDF ordering ties.
    pub priority: u8,
    /// Where runtime-side spans for this request attach: the request's
    /// [`TraceId`](snn_trace::TraceId) plus the parent span id minted by
    /// the caller (the gateway's `http.request` root). `None` — the
    /// default — records nothing for this request even on a tracing
    /// server; scheduling is unaffected either way.
    pub trace: Option<TraceTarget>,
}

impl SubmitOptions {
    /// Options with an explicit batching deadline.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Returns `self` with the given tie-break priority.
    pub fn priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Returns `self` with runtime spans attached to the given trace
    /// target (see [`SubmitOptions::trace`]).
    pub fn traced(mut self, target: TraceTarget) -> Self {
        self.trace = Some(target);
        self
    }
}

/// One admitted entry: the item plus its EDF scheduling key.
#[derive(Debug)]
struct Entry<T> {
    deadline: Instant,
    priority: u8,
    item: T,
}

/// The adaptive flush policy: batch by count or by earliest deadline,
/// whichever trips first (EDF).
///
/// Generic over the queued item so the policy can be exercised without
/// spinning up a server. All methods take `now` explicitly; the batcher
/// never reads the clock.
#[derive(Debug)]
pub struct DeadlineBatcher<T> {
    pending: Vec<Entry<T>>,
    max_batch: usize,
    max_delay: Duration,
}

impl<T> DeadlineBatcher<T> {
    /// Creates an empty batcher (`max_batch` is clamped to at least 1).
    /// `max_delay` is the default per-item deadline used by
    /// [`push`](Self::push).
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        Self {
            pending: Vec::new(),
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Pending (not yet flushed) requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits one item arriving at `now` with the default deadline (`now +
    /// max_delay`) and lowest priority; returns the formed batch if this
    /// arrival filled it to `max_batch`.
    pub fn push(&mut self, now: Instant, item: T) -> Option<Vec<T>> {
        let deadline = now + self.max_delay;
        self.push_with(item, deadline, 0)
    }

    /// Admits one item with an explicit absolute deadline and priority;
    /// returns the formed batch if this arrival filled it to `max_batch`.
    ///
    /// A deadline already in the past does not flush from `push_with`
    /// itself (only the count threshold does); the caller's next
    /// [`poll_expired`](Self::poll_expired) flushes it immediately.
    pub fn push_with(&mut self, item: T, deadline: Instant, priority: u8) -> Option<Vec<T>> {
        self.pending.push(Entry {
            deadline,
            priority,
            item,
        });
        if self.pending.len() >= self.max_batch {
            Some(self.take_all())
        } else {
            None
        }
    }

    /// The instant the current pending window must flush — the **earliest**
    /// admitted deadline; `None` when nothing is pending.
    pub fn deadline(&self) -> Option<Instant> {
        self.pending.iter().map(|e| e.deadline).min()
    }

    /// Flushes the whole pending window if its earliest deadline is at or
    /// before `now`; `None` if nothing is pending or every deadline is
    /// still ahead.
    pub fn poll_expired(&mut self, now: Instant) -> Option<Vec<T>> {
        match self.deadline() {
            Some(deadline) if now >= deadline => Some(self.take_all()),
            _ => None,
        }
    }

    /// Unconditionally drains everything pending in EDF order (the
    /// shutdown path).
    pub fn drain(&mut self) -> Vec<T> {
        self.take_all()
    }

    /// Flushes the window in EDF order: ascending deadline, ties broken by
    /// descending priority, then admission order (`pending` is in
    /// admission order and `sort_by` is stable).
    fn take_all(&mut self) -> Vec<T> {
        let mut entries = std::mem::take(&mut self.pending);
        entries.sort_by(|a, b| {
            a.deadline
                .cmp(&b.deadline)
                .then(b.priority.cmp(&a.priority))
        });
        entries.into_iter().map(|e| e.item).collect()
    }
}

/// The outcome of one streamed request.
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// Decoded logits of this image, shape `[classes]`.
    pub logits: Tensor,
    /// Event statistics of the whole formed batch this request rode in
    /// (per-request attribution is not separable after integration).
    pub batch_stats: RunStats,
    /// Time from `submit` until a worker began executing the batch.
    pub queue_wait: Duration,
    /// Backend execution time of the formed batch.
    pub exec_time: Duration,
    /// Images in the formed batch (1 ..= `max_batch`).
    pub batch_size: usize,
    /// Per-image energy of the formed batch in µJ, priced on the
    /// `snn-hw` processor model from the batch's measured event
    /// counters. `0.0` when the server has no energy pricer attached
    /// (telemetry disabled, or the backend exposes no model geometry).
    pub energy_uj: f64,
}

/// Handle to one in-flight streaming request, returned by
/// [`crate::StreamingServer::submit`].
///
/// Exactly one response arrives per ticket; consume it with a blocking
/// [`wait`](Self::wait) or poll with [`try_wait`](Self::try_wait).
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<StreamedResponse, ConvertError>>,
    /// Server recorder, so [`wait_timeout`](Self::wait_timeout) expiries
    /// land in [`StreamingMetrics::wait_timeouts`](crate::StreamingMetrics)
    /// — otherwise a gateway 504 is invisible server-side.
    recorder: Option<Arc<Mutex<StreamingRecorder>>>,
}

impl Ticket {
    pub(crate) fn new(
        id: u64,
        rx: Receiver<Result<StreamedResponse, ConvertError>>,
        recorder: Option<Arc<Mutex<StreamingRecorder>>>,
    ) -> Self {
        Self { id, rx, recorder }
    }

    /// Monotone submission id (submission order across the server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request's batch has executed.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if the formed batch failed, or a
    /// [`ConvertError::Structure`] if the server dropped the request
    /// (e.g. a worker panicked mid-batch).
    pub fn wait(self) -> Result<StreamedResponse, ConvertError> {
        self.rx.recv().unwrap_or_else(|_| Err(dropped_error()))
    }

    /// Non-blocking poll: `Ok(None)` while the request is still queued or
    /// executing, `Ok(Some(_))` exactly once when the result lands.
    ///
    /// # Errors
    ///
    /// Same conditions as [`wait`](Self::wait).
    pub fn try_wait(&mut self) -> Result<Option<StreamedResponse>, ConvertError> {
        match self.rx.try_recv() {
            Ok(Ok(response)) => Ok(Some(response)),
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(dropped_error()),
        }
    }

    /// Bounded wait: blocks at most `timeout`, returning `Ok(None)` if the
    /// result has not landed by then. The ticket stays valid after a
    /// timeout — wait again or drop it to abandon the request (the batch
    /// still executes; the reply is discarded). This is how a network
    /// handler bounds the time it holds a connection hostage.
    ///
    /// # Errors
    ///
    /// Same conditions as [`wait`](Self::wait).
    pub fn wait_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<Option<StreamedResponse>, ConvertError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(response)) => Ok(Some(response)),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                if let Some(recorder) = &self.recorder {
                    // A panic elsewhere under this lock must not take
                    // timeout accounting down with it: the guarded data is
                    // a plain recorder, always safe to keep using.
                    recorder
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record_wait_timeout();
                }
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(dropped_error()),
        }
    }
}

fn dropped_error() -> ConvertError {
    ConvertError::Structure(
        "streaming server dropped the request (worker panicked or server torn down mid-flight)"
            .into(),
    )
}

/// One queued streaming request as it travels batcher → worker.
pub(crate) struct PendingRequest {
    /// Flat sample data (dims validated at submit).
    pub image: Vec<f32>,
    /// Per-sample dims, identical across the server's lifetime.
    pub sample_dims: Vec<usize>,
    /// Submission instant (starts the end-to-end latency clock).
    pub enqueued: Instant,
    /// Absolute batching deadline (`enqueued` + the request's or the
    /// server's delay bound); the EDF flush trigger.
    pub deadline: Instant,
    /// EDF tie-break priority (higher sorts earlier on equal deadlines).
    pub priority: u8,
    /// Trace attachment point for runtime-side spans, if the submitter
    /// asked for tracing ([`SubmitOptions::trace`]).
    pub trace: Option<TraceTarget>,
    /// Where the worker delivers the per-request slice of the batch result.
    pub reply: Sender<Result<StreamedResponse, ConvertError>>,
}

/// Control messages from submitters to the batcher thread.
pub(crate) enum BatcherMsg {
    /// A new request to admit into the pending window.
    Request(PendingRequest),
    /// Flush everything pending and exit (graceful shutdown).
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn count_flush_at_max_batch() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(3, Duration::from_millis(100));
        assert!(b.push(at(base, 0), "a").is_none());
        assert!(b.push(at(base, 1), "b").is_none());
        let batch = b.push(at(base, 2), "c").expect("third fill flushes");
        assert_eq!(batch, vec!["a", "b", "c"]);
        assert!(b.is_empty());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn deadline_tracks_oldest_pending_request() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_millis(5));
        assert_eq!(b.deadline(), None);
        b.push(at(base, 0), 1u32);
        b.push(at(base, 3), 2u32);
        // Deadline anchors to the FIRST arrival, not the latest.
        assert_eq!(b.deadline(), Some(at(base, 5)));
        assert!(b.poll_expired(at(base, 4)).is_none(), "not yet expired");
        let batch = b
            .poll_expired(at(base, 5))
            .expect("expired exactly at deadline");
        assert_eq!(batch, vec![1, 2]);
        // The next window re-anchors to its own first arrival.
        b.push(at(base, 9), 3u32);
        assert_eq!(b.deadline(), Some(at(base, 14)));
    }

    #[test]
    fn zero_delay_expires_immediately() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(8, Duration::ZERO);
        b.push(base, "only");
        assert_eq!(b.poll_expired(base), Some(vec!["only"]));
    }

    #[test]
    fn count_flush_wins_even_with_expired_deadline() {
        // max_batch reached with zero remaining deadline: the count flush
        // fires from push itself; nothing is double-flushed afterwards.
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(2, Duration::ZERO);
        assert!(b.push(base, 1u8).is_none());
        let batch = b.push(base, 2u8).expect("count flush");
        assert_eq!(batch, vec![1, 2]);
        assert!(b.poll_expired(base).is_none(), "window already flushed");
    }

    #[test]
    fn max_batch_zero_clamps_to_one() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(0, Duration::from_millis(1));
        assert_eq!(b.push(base, "x"), Some(vec!["x"]));
    }

    #[test]
    fn drain_empties_in_arrival_order() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_secs(1));
        b.push(at(base, 0), 1u32);
        b.push(at(base, 1), 2u32);
        b.push(at(base, 2), 3u32);
        assert_eq!(b.drain(), vec![1, 2, 3]);
        assert!(b.is_empty());
        assert_eq!(b.drain(), Vec::<u32>::new());
    }

    #[test]
    fn edf_earliest_deadline_wins_regardless_of_arrival_order() {
        // A later arrival with a TIGHTER deadline pulls the whole window's
        // flush instant forward — the EDF invariant.
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_millis(100));
        b.push_with("relaxed", at(base, 100), 0);
        assert_eq!(b.deadline(), Some(at(base, 100)));
        b.push_with("urgent", at(base, 5), 0);
        assert_eq!(b.deadline(), Some(at(base, 5)), "earliest deadline rules");
        assert!(b.poll_expired(at(base, 4)).is_none());
        let batch = b.poll_expired(at(base, 5)).expect("urgent deadline trips");
        // Batch assembly is EDF-ordered, not arrival-ordered.
        assert_eq!(batch, vec!["urgent", "relaxed"]);
    }

    #[test]
    fn edf_priority_breaks_deadline_ties_then_admission_order() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_millis(1));
        let d = at(base, 10);
        b.push_with("low-first", d, 0);
        b.push_with("high", d, 7);
        b.push_with("low-second", d, 0);
        b.push_with("earlier", at(base, 3), 0);
        let batch = b.poll_expired(at(base, 10)).expect("expired");
        assert_eq!(batch, vec!["earlier", "high", "low-first", "low-second"]);
    }

    #[test]
    fn edf_relaxed_deadline_outlives_default_window() {
        // A request that donates slack beyond max_delay must not flush at
        // the default window; it flushes at its own deadline.
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_millis(5));
        b.push_with("patient", at(base, 50), 0);
        assert!(b.poll_expired(at(base, 6)).is_none(), "outlives max_delay");
        assert_eq!(b.poll_expired(at(base, 50)), Some(vec!["patient"]));
    }

    #[test]
    fn edf_past_deadline_flushes_on_next_poll_not_on_push() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_secs(1));
        assert!(
            b.push_with("late", base, 0).is_none(),
            "push never EDF-flushes"
        );
        assert_eq!(b.poll_expired(base), Some(vec!["late"]));
    }

    #[test]
    fn edf_count_flush_still_wins_at_max_batch() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(2, Duration::from_secs(1));
        assert!(b.push_with("a", at(base, 500), 0).is_none());
        let batch = b.push_with("b", at(base, 900), 3).expect("count flush");
        assert_eq!(batch, vec!["a", "b"], "EDF order inside the count flush");
    }
}
