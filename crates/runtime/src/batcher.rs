//! Adaptive deadline batching for the streaming front-end.
//!
//! Requests arrive one at a time; the TTFS engine amortizes per-spike work
//! best over batches. [`DeadlineBatcher`] is the flush policy that mediates
//! between the two: admit requests into a pending window and flush when
//! either the window holds [`max_batch`](DeadlineBatcher::new) requests or
//! the **oldest** pending request has waited `max_delay` — whichever comes
//! first. Count flushes keep throughput high under load; deadline flushes
//! bound the latency a lonely request can be held hostage for.
//!
//! The policy is a pure state machine over caller-supplied [`Instant`]s
//! (no threads, no clocks of its own), so it is deterministic and unit
//! testable. The thread that drives it — and the [`Ticket`] handed to each
//! submitter — live with [`crate::StreamingServer`] in the server module.

use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use snn_sim::RunStats;
use snn_tensor::Tensor;
use ttfs_core::ConvertError;

/// Configuration for the [`crate::StreamingServer`].
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Worker threads executing formed batches (0 = one per core).
    pub threads: usize,
    /// Flush a pending batch as soon as it holds this many requests
    /// (0 = clamp to 1).
    pub max_batch: usize,
    /// Flush when the oldest pending request has waited this long.
    /// `Duration::ZERO` degenerates to one batch per wakeup — lowest
    /// latency, least amortization.
    pub max_delay: Duration,
    /// Backpressure: the most admitted-but-unresolved requests (pending
    /// window + worker queue + in flight) the server holds before
    /// [`submit`](crate::StreamingServer::submit) starts returning
    /// [`SubmitError::QueueFull`]. `0` = unbounded (accept everything and
    /// let the queue grow — the pre-backpressure behavior).
    pub max_pending: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            max_batch: 8,
            max_delay: Duration::from_millis(2),
            max_pending: 0,
        }
    }
}

/// Why [`crate::StreamingServer::submit`] refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The bounded submission queue is at
    /// [`max_pending`](StreamingConfig::max_pending) admitted-but-
    /// unresolved requests: shed the request now (retry, divert, or fail
    /// upstream) instead of queueing it into ever-growing latency.
    QueueFull {
        /// The configured bound that was hit.
        max_pending: usize,
    },
    /// The request was structurally invalid or the server is shut down.
    Rejected(ConvertError),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { max_pending } => write!(
                f,
                "submission queue full: {max_pending} requests already admitted and unresolved"
            ),
            Self::Rejected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::QueueFull { .. } => None,
            Self::Rejected(e) => Some(e),
        }
    }
}

impl From<ConvertError> for SubmitError {
    fn from(e: ConvertError) -> Self {
        Self::Rejected(e)
    }
}

/// The adaptive flush policy: batch by count or by deadline, whichever
/// trips first.
///
/// Generic over the queued item so the policy can be exercised without
/// spinning up a server. All methods take `now` explicitly; the batcher
/// never reads the clock.
#[derive(Debug)]
pub struct DeadlineBatcher<T> {
    pending: Vec<T>,
    oldest: Option<Instant>,
    max_batch: usize,
    max_delay: Duration,
}

impl<T> DeadlineBatcher<T> {
    /// Creates an empty batcher (`max_batch` is clamped to at least 1).
    pub fn new(max_batch: usize, max_delay: Duration) -> Self {
        Self {
            pending: Vec::new(),
            oldest: None,
            max_batch: max_batch.max(1),
            max_delay,
        }
    }

    /// Pending (not yet flushed) requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Admits one item arriving at `now`; returns the formed batch if this
    /// arrival filled it to `max_batch`.
    pub fn push(&mut self, now: Instant, item: T) -> Option<Vec<T>> {
        if self.pending.is_empty() {
            self.oldest = Some(now);
        }
        self.pending.push(item);
        if self.pending.len() >= self.max_batch {
            Some(self.take_all())
        } else {
            None
        }
    }

    /// The instant the current pending window must flush (oldest arrival
    /// plus `max_delay`); `None` when nothing is pending.
    pub fn deadline(&self) -> Option<Instant> {
        self.oldest.map(|t| t + self.max_delay)
    }

    /// Flushes the whole pending window if its deadline is at or before
    /// `now`; `None` if nothing is pending or the deadline is still ahead.
    pub fn poll_expired(&mut self, now: Instant) -> Option<Vec<T>> {
        match self.deadline() {
            Some(deadline) if now >= deadline => Some(self.take_all()),
            _ => None,
        }
    }

    /// Unconditionally drains everything pending, oldest first (the
    /// shutdown path).
    pub fn drain(&mut self) -> Vec<T> {
        self.take_all()
    }

    fn take_all(&mut self) -> Vec<T> {
        self.oldest = None;
        std::mem::take(&mut self.pending)
    }
}

/// The outcome of one streamed request.
#[derive(Debug, Clone)]
pub struct StreamedResponse {
    /// Decoded logits of this image, shape `[classes]`.
    pub logits: Tensor,
    /// Event statistics of the whole formed batch this request rode in
    /// (per-request attribution is not separable after integration).
    pub batch_stats: RunStats,
    /// Time from `submit` until a worker began executing the batch.
    pub queue_wait: Duration,
    /// Backend execution time of the formed batch.
    pub exec_time: Duration,
    /// Images in the formed batch (1 ..= `max_batch`).
    pub batch_size: usize,
}

/// Handle to one in-flight streaming request, returned by
/// [`crate::StreamingServer::submit`].
///
/// Exactly one response arrives per ticket; consume it with a blocking
/// [`wait`](Self::wait) or poll with [`try_wait`](Self::try_wait).
#[derive(Debug)]
pub struct Ticket {
    id: u64,
    rx: Receiver<Result<StreamedResponse, ConvertError>>,
}

impl Ticket {
    pub(crate) fn new(id: u64, rx: Receiver<Result<StreamedResponse, ConvertError>>) -> Self {
        Self { id, rx }
    }

    /// Monotone submission id (submission order across the server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the request's batch has executed.
    ///
    /// # Errors
    ///
    /// Returns the backend's error if the formed batch failed, or a
    /// [`ConvertError::Structure`] if the server dropped the request
    /// (e.g. a worker panicked mid-batch).
    pub fn wait(self) -> Result<StreamedResponse, ConvertError> {
        self.rx.recv().unwrap_or_else(|_| Err(dropped_error()))
    }

    /// Non-blocking poll: `Ok(None)` while the request is still queued or
    /// executing, `Ok(Some(_))` exactly once when the result lands.
    ///
    /// # Errors
    ///
    /// Same conditions as [`wait`](Self::wait).
    pub fn try_wait(&mut self) -> Result<Option<StreamedResponse>, ConvertError> {
        match self.rx.try_recv() {
            Ok(Ok(response)) => Ok(Some(response)),
            Ok(Err(e)) => Err(e),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(dropped_error()),
        }
    }
}

fn dropped_error() -> ConvertError {
    ConvertError::Structure(
        "streaming server dropped the request (worker panicked or server torn down mid-flight)"
            .into(),
    )
}

/// One queued streaming request as it travels batcher → worker.
pub(crate) struct PendingRequest {
    /// Flat sample data (dims validated at submit).
    pub image: Vec<f32>,
    /// Per-sample dims, identical across the server's lifetime.
    pub sample_dims: Vec<usize>,
    /// Submission instant (starts the end-to-end latency clock).
    pub enqueued: Instant,
    /// Where the worker delivers the per-request slice of the batch result.
    pub reply: Sender<Result<StreamedResponse, ConvertError>>,
}

/// Control messages from submitters to the batcher thread.
pub(crate) enum BatcherMsg {
    /// A new request to admit into the pending window.
    Request(PendingRequest),
    /// Flush everything pending and exit (graceful shutdown).
    Shutdown,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn count_flush_at_max_batch() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(3, Duration::from_millis(100));
        assert!(b.push(at(base, 0), "a").is_none());
        assert!(b.push(at(base, 1), "b").is_none());
        let batch = b.push(at(base, 2), "c").expect("third fill flushes");
        assert_eq!(batch, vec!["a", "b", "c"]);
        assert!(b.is_empty());
        assert_eq!(b.deadline(), None);
    }

    #[test]
    fn deadline_tracks_oldest_pending_request() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_millis(5));
        assert_eq!(b.deadline(), None);
        b.push(at(base, 0), 1u32);
        b.push(at(base, 3), 2u32);
        // Deadline anchors to the FIRST arrival, not the latest.
        assert_eq!(b.deadline(), Some(at(base, 5)));
        assert!(b.poll_expired(at(base, 4)).is_none(), "not yet expired");
        let batch = b
            .poll_expired(at(base, 5))
            .expect("expired exactly at deadline");
        assert_eq!(batch, vec![1, 2]);
        // The next window re-anchors to its own first arrival.
        b.push(at(base, 9), 3u32);
        assert_eq!(b.deadline(), Some(at(base, 14)));
    }

    #[test]
    fn zero_delay_expires_immediately() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(8, Duration::ZERO);
        b.push(base, "only");
        assert_eq!(b.poll_expired(base), Some(vec!["only"]));
    }

    #[test]
    fn count_flush_wins_even_with_expired_deadline() {
        // max_batch reached with zero remaining deadline: the count flush
        // fires from push itself; nothing is double-flushed afterwards.
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(2, Duration::ZERO);
        assert!(b.push(base, 1u8).is_none());
        let batch = b.push(base, 2u8).expect("count flush");
        assert_eq!(batch, vec![1, 2]);
        assert!(b.poll_expired(base).is_none(), "window already flushed");
    }

    #[test]
    fn max_batch_zero_clamps_to_one() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(0, Duration::from_millis(1));
        assert_eq!(b.push(base, "x"), Some(vec!["x"]));
    }

    #[test]
    fn drain_empties_in_arrival_order() {
        let base = Instant::now();
        let mut b = DeadlineBatcher::new(10, Duration::from_secs(1));
        b.push(at(base, 0), 1u32);
        b.push(at(base, 1), 2u32);
        b.push(at(base, 2), 3u32);
        assert_eq!(b.drain(), vec![1, 2, 3]);
        assert!(b.is_empty());
        assert_eq!(b.drain(), Vec::<u32>::new());
    }
}
