//! Multi-model registry: `name@version` → lazily loaded, single-flight
//! compiled serving entries with LRU eviction and atomic hot swap.
//!
//! A [`ModelRegistry`] watches a directory of `.snna` artifacts (see
//! [`crate::ModelArtifact`]). Opening the registry only *peeks* each
//! file's header — models stay cold until the first request. The entry
//! lifecycle:
//!
//! ```text
//! cold ──get_or_load──▶ loading ──▶ resident ──LRU eviction──▶ cold
//!            │ (single-flight: concurrent callers wait on one compile)
//!            ▼
//!      unreadable (typed ArtifactError, retried on refresh)
//! ```
//!
//! * **Single-flight compilation** — N threads racing `get_or_load` on a
//!   cold model trigger exactly one load + compile; the rest park on a
//!   condvar and wake to the shared handle — or, when that single load
//!   fails, to its typed error: the failure is broadcast to every parked
//!   waiter, so N racers on a bad artifact cost one disk read, not N.
//! * **Circuit breaking** — [`RegistryConfig::breaker_threshold`]
//!   consecutive load failures open a per-key breaker: further lookups
//!   fail immediately with [`RegistryError::BreakerOpen`] (carrying the
//!   remaining backoff) instead of re-reading and re-compiling a
//!   known-bad artifact. The rejection window doubles per failed
//!   half-open probe (capped) and one successful probe restores service.
//! * **LRU under a byte budget** — resident entries are charged their
//!   [`CsrFootprint::stored_bytes`]; crossing
//!   [`RegistryConfig::byte_budget`] evicts least-recently-used entries,
//!   but **never** one with in-flight work (an outstanding handle clone or
//!   a pending streaming ticket).
//! * **Atomic swap** — [`ModelRegistry::swap`] compiles the target version
//!   first, then repoints the name's active version under the same lock
//!   every resolve takes. In-flight tickets complete against the old
//!   entry's `Arc`; new submissions land on the new version; no request is
//!   dropped or served mixed logits.
//! * **Cold-start metrics** — per-entry load/compile wall time is kept and
//!   aggregated in [`RegistryMetrics`]; with a trace collector attached,
//!   each load emits `registry.load` / `registry.compile` spans (and swaps
//!   `registry.swap`) into the request's trace tree.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use serde::Serialize;
use snn_telemetry::{Labels, TelemetryHub};
use snn_trace::{AttrValue, TraceCollector, TraceTarget};
use ttfs_core::ConvertError;

use crate::artifact::{ArtifactError, ArtifactInfo, ModelArtifact, ARTIFACT_EXTENSION};
use crate::csr::CsrFootprint;
use crate::faults::{FaultInjector, FaultPoint};
use crate::metrics::{LatencyRecorder, LogSink};
use crate::{InferenceBackend, StreamingConfig, StreamingServer};

/// Tuning knobs for a [`ModelRegistry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// LRU budget over resident compiled bytes
    /// ([`CsrFootprint::stored_bytes`]); `0` means unbounded.
    pub byte_budget: usize,
    /// Streaming-server configuration applied to every loaded entry.
    pub streaming: StreamingConfig,
    /// Consecutive load failures that open a model's circuit breaker
    /// (`0` disables breaking). While open, lookups for the key fail
    /// immediately with [`RegistryError::BreakerOpen`] instead of hitting
    /// the disk and compiler again.
    pub breaker_threshold: u32,
    /// How long the first open rejects lookups before a half-open probe
    /// is allowed through. Each probe that fails doubles the window.
    pub breaker_backoff: Duration,
    /// Cap on the doubled backoff window.
    pub breaker_backoff_max: Duration,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            byte_budget: 0,
            streaming: StreamingConfig::default(),
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(100),
            breaker_backoff_max: Duration::from_secs(5),
        }
    }
}

/// Errors surfaced by registry resolution.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No artifact in the catalog matches the requested spec.
    UnknownModel(String),
    /// The artifact file failed to load or validate.
    Artifact(ArtifactError),
    /// The artifact loaded but its backend failed to compile.
    Compile(String),
    /// The key's circuit breaker is open after repeated load failures:
    /// the registry refuses to retry the load until `retry_after` has
    /// elapsed (negative caching with exponential backoff).
    BreakerOpen {
        /// The `name@version` key whose breaker rejected the lookup.
        key: String,
        /// How long until the next half-open probe is allowed.
        retry_after: Duration,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownModel(spec) => write!(f, "unknown model {spec:?}"),
            Self::Artifact(e) => write!(f, "artifact: {e}"),
            Self::Compile(e) => write!(f, "compile: {e}"),
            Self::BreakerOpen { key, retry_after } => write!(
                f,
                "circuit breaker open for {key:?} after repeated load failures; retry in {:.1}s",
                retry_after.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ArtifactError> for RegistryError {
    fn from(e: ArtifactError) -> Self {
        Self::Artifact(e)
    }
}

impl From<ConvertError> for RegistryError {
    fn from(e: ConvertError) -> Self {
        Self::Compile(e.to_string())
    }
}

/// A resident model: compiled backend + streaming server + accounting.
/// Handles are shared via `Arc`; the registry's eviction policy treats any
/// outside clone (`Arc::strong_count > 1`) or pending streaming work as
/// in-flight and refuses to evict.
pub struct ModelHandle {
    key: String,
    info: ArtifactInfo,
    server: Arc<StreamingServer>,
    footprint: CsrFootprint,
    load_ms: f64,
    compile_ms: f64,
}

impl ModelHandle {
    /// The `name@version` key this handle resolved from.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Header info of the artifact backing this handle.
    pub fn info(&self) -> &ArtifactInfo {
        &self.info
    }

    /// The streaming server fronting this model's compiled backend.
    pub fn server(&self) -> &Arc<StreamingServer> {
        &self.server
    }

    /// Per-sample input dims this entry's geometry was compiled for.
    pub fn input_dims(&self) -> &[usize] {
        &self.info.input_dims
    }

    /// Compiled-table footprint (the bytes charged to the LRU budget).
    pub fn footprint(&self) -> CsrFootprint {
        self.footprint
    }

    /// Artifact read + validate wall time for this load, in ms.
    pub fn load_ms(&self) -> f64 {
        self.load_ms
    }

    /// Backend compile wall time for this load, in ms.
    pub fn compile_ms(&self) -> f64 {
        self.compile_ms
    }
}

impl std::fmt::Debug for ModelHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelHandle")
            .field("key", &self.key)
            .field("stored_bytes", &self.footprint.stored_bytes)
            .finish()
    }
}

/// One row of [`ModelRegistry::list`]: catalog + residency state.
#[derive(Debug, Clone, Serialize)]
pub struct ModelStatus {
    /// Model name.
    pub name: String,
    /// Version label.
    pub version: String,
    /// `"resident"`, `"loading"`, `"cold"`, `"breaker-open"` or
    /// `"unreadable"`.
    pub state: String,
    /// Whether `name` (bare, no `@version`) currently routes here.
    pub active: bool,
    /// Backend label (`"csr"`, `"quant5b-..."`), from the artifact header.
    pub backend: String,
    /// Per-sample input dims.
    pub input_dims: Vec<usize>,
    /// Artifact size on disk in bytes.
    pub file_bytes: u64,
    /// Compiled resident bytes (0 unless resident).
    pub resident_bytes: usize,
    /// In-flight streaming requests (0 unless resident).
    pub pending: usize,
}

/// Aggregated registry counters and cold-start timings.
#[derive(Debug, Clone, Serialize)]
pub struct RegistryMetrics {
    /// Artifacts in the catalog (readable headers).
    pub catalog_models: usize,
    /// Currently resident entries.
    pub resident_models: usize,
    /// Sum of resident compiled bytes.
    pub resident_bytes: usize,
    /// Configured LRU budget (0 = unbounded).
    pub byte_budget: usize,
    /// Artifact loads performed (cold starts).
    pub cold_loads: u64,
    /// Lookups served immediately from a resident entry.
    pub warm_hits: u64,
    /// Lookups that waited on another thread's in-progress load
    /// (counted once per lookup, in this bucket only).
    pub coalesced_loads: u64,
    /// Entries evicted by the LRU budget.
    pub evictions: u64,
    /// Successful version swaps.
    pub swaps: u64,
    /// Loads that failed (artifact or compile error).
    pub load_errors: u64,
    /// Times a key's circuit breaker opened (including re-opens after a
    /// failed half-open probe).
    pub breaker_opens: u64,
    /// Times an open breaker's half-open probe succeeded and the key
    /// returned to service.
    pub breaker_recoveries: u64,
    /// Lookups rejected immediately because the key's breaker was open.
    pub breaker_rejections: u64,
    /// Mean artifact load wall time, ms.
    pub load_ms_mean: f64,
    /// Max artifact load wall time, ms.
    pub load_ms_max: f64,
    /// Mean backend compile wall time, ms.
    pub compile_ms_mean: f64,
    /// Max backend compile wall time, ms.
    pub compile_ms_max: f64,
}

/// Outcome of an atomic version swap.
#[derive(Debug, Clone, Serialize)]
pub struct SwapReport {
    /// Model name whose active version moved.
    pub name: String,
    /// Previously active version (if the name had one pinned).
    pub from: Option<String>,
    /// Now-active version.
    pub to: String,
    /// Whether the target version was already resident (warm swap).
    pub was_resident: bool,
    /// Artifact load time paid by this swap, ms (0 for a warm swap).
    pub load_ms: f64,
    /// Compile time paid by this swap, ms (0 for a warm swap).
    pub compile_ms: f64,
    /// End-to-end swap wall time, ms.
    pub swap_ms: f64,
}

/// Catalog entry: one artifact file discovered on disk.
#[derive(Debug, Clone)]
enum CatalogEntry {
    /// Header peeked successfully; loadable on demand.
    Readable {
        path: PathBuf,
        info: ArtifactInfo,
        file_bytes: u64,
    },
    /// Header or framing rejected; the typed error is replayed to callers.
    Unreadable { error: ArtifactError },
}

#[derive(Default)]
struct Counters {
    cold_loads: u64,
    warm_hits: u64,
    coalesced_loads: u64,
    evictions: u64,
    swaps: u64,
    load_errors: u64,
    breaker_opens: u64,
    breaker_recoveries: u64,
    breaker_rejections: u64,
}

/// Per-key circuit-breaker bookkeeping
/// (see [`RegistryConfig::breaker_threshold`]).
#[derive(Debug, Clone)]
struct BreakerState {
    /// Failed loads since the last success.
    consecutive_failures: u32,
    /// When set, lookups are rejected until this instant; once it passes,
    /// exactly one caller is let through as the half-open probe.
    open_until: Option<Instant>,
    /// Backoff applied at the next (re-)open; doubles per failed probe.
    backoff: Duration,
}

struct State {
    /// `name@version` → discovered artifact.
    catalog: BTreeMap<String, CatalogEntry>,
    /// `name@version` → resident handle.
    resident: BTreeMap<String, Arc<ModelHandle>>,
    /// Keys in least-recently-used-first order (front = eviction candidate).
    lru: Vec<String>,
    /// Keys with a load in flight (single-flight markers).
    loading: BTreeSet<String>,
    /// Bare name → active version (the swap pointer).
    active: BTreeMap<String, String>,
    /// Names whose active pointer was set by an explicit swap; `refresh`
    /// never overrides these defaults.
    pinned: BTreeSet<String>,
    /// Sum of resident `stored_bytes`.
    resident_bytes: usize,
    /// `name@version` → circuit-breaker state (absent = healthy).
    breakers: BTreeMap<String, BreakerState>,
    /// `name@version` → completed load attempts (success or failure).
    /// Lets a condvar waiter detect that the load it parked behind
    /// finished (and failed) even after the marker left `loading`.
    load_generations: BTreeMap<String, u64>,
    /// `name@version` → (generation that failed, its typed error). The
    /// single-flight loser replays this to every parked waiter instead of
    /// each waiter re-attempting the same doomed load.
    load_failures: BTreeMap<String, (u64, RegistryError)>,
    counters: Counters,
    load_times: LatencyRecorder,
    compile_times: LatencyRecorder,
}

/// The multi-model registry. See the module docs for semantics.
pub struct ModelRegistry {
    dir: PathBuf,
    config: RegistryConfig,
    trace: Option<Arc<TraceCollector>>,
    telemetry: Mutex<Option<Arc<TelemetryHub>>>,
    log: Mutex<Option<LogSink>>,
    state: Mutex<State>,
    loading_cv: Condvar,
}

impl ModelRegistry {
    /// Opens a registry over `dir`, peeking every `*.snna` header to build
    /// the catalog. Unreadable files are cataloged with their typed error
    /// (listed as `"unreadable"`) rather than failing the open. For each
    /// name the lexically greatest readable version starts active.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Artifact`] only if `dir` itself cannot be read.
    pub fn open(dir: impl AsRef<Path>, config: RegistryConfig) -> Result<Self, RegistryError> {
        Self::open_traced(dir, config, None)
    }

    /// [`open`](Self::open) with a trace collector: entry servers are
    /// built traced, and loads/compiles/swaps emit `registry.*` spans.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Artifact`] only if `dir` itself cannot be read.
    pub fn open_traced(
        dir: impl AsRef<Path>,
        config: RegistryConfig,
        trace: Option<Arc<TraceCollector>>,
    ) -> Result<Self, RegistryError> {
        let registry = Self {
            dir: dir.as_ref().to_path_buf(),
            config,
            trace,
            telemetry: Mutex::new(None),
            log: Mutex::new(None),
            state: Mutex::new(State {
                catalog: BTreeMap::new(),
                resident: BTreeMap::new(),
                lru: Vec::new(),
                loading: BTreeSet::new(),
                active: BTreeMap::new(),
                pinned: BTreeSet::new(),
                resident_bytes: 0,
                breakers: BTreeMap::new(),
                load_generations: BTreeMap::new(),
                load_failures: BTreeMap::new(),
                counters: Counters::default(),
                load_times: LatencyRecorder::default(),
                compile_times: LatencyRecorder::default(),
            }),
            loading_cv: Condvar::new(),
        };
        registry.refresh()?;
        Ok(registry)
    }

    /// Rescans the artifact directory, adding new files and refreshing
    /// previously unreadable ones. Resident entries are kept even if
    /// their file vanished (they serve until evicted).
    ///
    /// # Errors
    ///
    /// [`RegistryError::Artifact`] if the directory cannot be read.
    pub fn refresh(&self) -> Result<(), RegistryError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| {
            RegistryError::Artifact(ArtifactError::Io(format!(
                "read dir {}: {e}",
                self.dir.display()
            )))
        })?;
        let mut discovered: Vec<(String, CatalogEntry)> = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ARTIFACT_EXTENSION) {
                continue;
            }
            match ModelArtifact::peek(&path) {
                Ok((info, file_bytes)) => discovered.push((
                    info.key(),
                    CatalogEntry::Readable {
                        path,
                        info,
                        file_bytes,
                    },
                )),
                Err(error) => {
                    let key = path
                        .file_stem()
                        .and_then(|s| s.to_str())
                        .unwrap_or("unreadable")
                        .to_string();
                    discovered.push((key, CatalogEntry::Unreadable { error }));
                }
            }
        }
        let mut state = self.state.lock().expect("registry state poisoned");
        for (key, entry) in discovered {
            state.catalog.insert(key, entry);
        }
        // Default each name's active pointer to its lexically greatest
        // readable version; explicit swap() pins survive rescans.
        let mut greatest: BTreeMap<String, String> = BTreeMap::new();
        for entry in state.catalog.values() {
            if let CatalogEntry::Readable { info, .. } = entry {
                let slot = greatest.entry(info.name.clone()).or_default();
                if info.version > *slot {
                    slot.clone_from(&info.version);
                }
            }
        }
        for (name, version) in greatest {
            if !state.pinned.contains(&name) {
                state.active.insert(name, version);
            }
        }
        Ok(())
    }

    /// The artifact directory this registry scans.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Resolves `spec` (`"name"` or `"name@version"`) to a resident
    /// handle, loading and compiling the artifact if cold. Concurrent
    /// callers for the same cold key coalesce onto a single load
    /// (single-flight); the winners' timings are shared.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownModel`] for a spec not in the catalog,
    /// [`RegistryError::Artifact`] / [`RegistryError::Compile`] when the
    /// load fails (the entry stays cold and the error is replayed).
    pub fn get_or_load(&self, spec: &str) -> Result<Arc<ModelHandle>, RegistryError> {
        self.get_or_load_traced(spec, None)
    }

    /// [`get_or_load`](Self::get_or_load) recording `registry.load` /
    /// `registry.compile` spans under `parent` when this call pays the
    /// cold start.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get_or_load`](Self::get_or_load).
    pub fn get_or_load_traced(
        &self,
        spec: &str,
        parent: Option<TraceTarget>,
    ) -> Result<Arc<ModelHandle>, RegistryError> {
        let (key, path, info) = {
            let mut state = self.state.lock().expect("registry state poisoned");
            // Each lookup lands in exactly one bucket: a call that waits
            // out another caller's load is `coalesced`, even if it then
            // resolves via the resident map — and it counts once, not once
            // per condvar wakeup (waits can wake spuriously and re-loop).
            let mut coalesced = false;
            // `(key, generation)` recorded before parking: if the load we
            // parked behind completed with a failure, replay that failure
            // instead of re-attempting the same doomed load.
            let mut waited: Option<(String, u64)> = None;
            loop {
                let key = self.resolve_key(&state, spec)?;
                if let Some(handle) = state.resident.get(&key).cloned() {
                    Self::touch_lru(&mut state, &key);
                    if coalesced {
                        state.counters.coalesced_loads += 1;
                    } else {
                        state.counters.warm_hits += 1;
                    }
                    return Ok(handle);
                }
                if let Some((waited_key, start_gen)) = &waited {
                    if *waited_key == key {
                        let replay = state
                            .load_failures
                            .get(&key)
                            .filter(|(fail_gen, _)| fail_gen > start_gen)
                            .map(|(_, error)| error.clone());
                        if let Some(error) = replay {
                            state.counters.coalesced_loads += 1;
                            return Err(error);
                        }
                    }
                }
                if state.loading.contains(&key) {
                    coalesced = true;
                    let gen = state.load_generations.get(&key).copied().unwrap_or(0);
                    waited = Some((key, gen));
                    state = self
                        .loading_cv
                        .wait(state)
                        .expect("registry state poisoned");
                    continue; // re-resolve: the load may have failed or the active pointer moved
                }
                if self.config.breaker_threshold > 0 {
                    if let Some(until) = state.breakers.get(&key).and_then(|b| b.open_until) {
                        let now = Instant::now();
                        if now < until {
                            state.counters.breaker_rejections += 1;
                            if let Some(sink) = self.log_sink() {
                                snn_log::warn!(
                                    sink.collector(),
                                    "registry.breaker",
                                    { "key": key.as_str(), "retry_ms": (until - now).as_millis() as u64 },
                                    "lookup rejected: breaker open for {key}"
                                );
                            }
                            return Err(RegistryError::BreakerOpen {
                                key,
                                retry_after: until - now,
                            });
                        }
                        // Backoff expired: fall through — this caller is
                        // the half-open probe (single-flight guarantees
                        // it is alone; racers park on the condvar).
                    }
                }
                match state.catalog.get(&key) {
                    None => return Err(RegistryError::UnknownModel(spec.to_string())),
                    Some(CatalogEntry::Unreadable { error }) => {
                        return Err(RegistryError::Artifact(error.clone()))
                    }
                    Some(CatalogEntry::Readable { path, info, .. }) => {
                        let path = path.clone();
                        let info = info.clone();
                        state.loading.insert(key.clone());
                        break (key, path, info);
                    }
                }
            }
        };
        // Load + compile outside the lock: other models stay serviceable
        // and waiters for this key park on the condvar.
        let result = self.load_and_compile(&key, &path, &info, parent);
        let mut state = self.state.lock().expect("registry state poisoned");
        state.loading.remove(&key);
        let generation = {
            let slot = state.load_generations.entry(key.clone()).or_insert(0);
            *slot += 1;
            *slot
        };
        match result {
            Ok(handle) => {
                state.load_failures.remove(&key);
                let mut breaker_recovered = false;
                if let Some(breaker) = state.breakers.remove(&key) {
                    if breaker.open_until.is_some() {
                        // A half-open probe came back healthy.
                        state.counters.breaker_recoveries += 1;
                        breaker_recovered = true;
                    }
                }
                let handle = Arc::new(handle);
                state.resident_bytes += handle.footprint.stored_bytes;
                state.resident.insert(key.clone(), Arc::clone(&handle));
                Self::touch_lru(&mut state, &key);
                state.counters.cold_loads += 1;
                state
                    .load_times
                    .record(Duration::from_secs_f64(handle.load_ms / 1e3));
                state
                    .compile_times
                    .record(Duration::from_secs_f64(handle.compile_ms / 1e3));
                let evicted = Self::evict_over_budget(&mut state, self.config.byte_budget);
                drop(state);
                self.loading_cv.notify_all();
                if let Some(sink) = self.log_sink() {
                    snn_log::info!(
                        sink.collector(),
                        "registry",
                        { "key": key.as_str(), "load_ms": handle.load_ms, "compile_ms": handle.compile_ms },
                        "cold-loaded {key} ({:.1} ms load + {:.1} ms compile)",
                        handle.load_ms,
                        handle.compile_ms
                    );
                    if breaker_recovered {
                        snn_log::info!(
                            sink.collector(),
                            "registry.breaker",
                            { "key": key.as_str() },
                            "circuit breaker closed for {key}: half-open probe succeeded"
                        );
                    }
                    for victim in &evicted {
                        snn_log::info!(
                            sink.collector(),
                            "registry",
                            { "key": victim.key.as_str(), "bytes": victim.footprint.stored_bytes as u64 },
                            "evicted {} ({} resident bytes) under the LRU byte budget",
                            victim.key,
                            victim.footprint.stored_bytes
                        );
                    }
                }
                drop(evicted); // shut servers down outside the lock
                Ok(handle)
            }
            Err(e) => {
                state.counters.load_errors += 1;
                state
                    .load_failures
                    .insert(key.clone(), (generation, e.clone()));
                let mut breaker_opened = false;
                let mut breaker_backoff = Duration::ZERO;
                if self.config.breaker_threshold > 0 {
                    let base = self.config.breaker_backoff;
                    let breaker = state.breakers.entry(key.clone()).or_insert(BreakerState {
                        consecutive_failures: 0,
                        open_until: None,
                        backoff: base,
                    });
                    breaker.consecutive_failures += 1;
                    if breaker.open_until.is_some() {
                        // A failed half-open probe re-opens with a longer
                        // window (exponential backoff, capped).
                        breaker.backoff =
                            (breaker.backoff * 2).min(self.config.breaker_backoff_max);
                        breaker.open_until = Some(Instant::now() + breaker.backoff);
                        breaker_opened = true;
                        breaker_backoff = breaker.backoff;
                        state.counters.breaker_opens += 1;
                    } else if breaker.consecutive_failures >= self.config.breaker_threshold {
                        breaker.open_until = Some(Instant::now() + breaker.backoff);
                        breaker_opened = true;
                        breaker_backoff = breaker.backoff;
                        state.counters.breaker_opens += 1;
                    }
                }
                drop(state);
                self.loading_cv.notify_all();
                if let Some(sink) = self.log_sink() {
                    snn_log::error!(
                        sink.collector(),
                        "registry",
                        { "key": key.as_str(), "error": e.to_string() },
                        "load failed for {key}: {e}"
                    );
                    if breaker_opened {
                        snn_log::error!(
                            sink.collector(),
                            "registry.breaker",
                            { "key": key.as_str(), "backoff_ms": breaker_backoff.as_millis() as u64 },
                            "circuit breaker opened for {key}; rejecting lookups for {:.1}s",
                            breaker_backoff.as_secs_f64()
                        );
                        // The state lock is released: the incident snapshot
                        // provider reads registry metrics through it.
                        sink.incident(
                            "breaker_open",
                            &format!("circuit breaker opened for {key} after repeated load failures: {e}"),
                            parent.map(|t| t.trace),
                        );
                    }
                }
                Err(e)
            }
        }
    }

    /// Atomically repoints `name`'s active version to `version`, loading
    /// and compiling it first if cold. The pointer moves under the same
    /// lock every resolve takes, so a bare-`name` request observes either
    /// the old or the new version — never a mix — and in-flight tickets
    /// complete against the old entry's `Arc`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`get_or_load`](Self::get_or_load) for
    /// `name@version`.
    pub fn swap(
        &self,
        name: &str,
        version: &str,
        parent: Option<TraceTarget>,
    ) -> Result<SwapReport, RegistryError> {
        let swap_start = Instant::now();
        let key = format!("{name}@{version}");
        let was_resident = {
            let state = self.state.lock().expect("registry state poisoned");
            state.resident.contains_key(&key)
        };
        let handle = self.get_or_load_traced(&key, parent)?;
        let from = {
            let mut state = self.state.lock().expect("registry state poisoned");
            let from = state.active.insert(name.to_string(), version.to_string());
            state.pinned.insert(name.to_string());
            state.counters.swaps += 1;
            from.filter(|v| !v.is_empty())
        };
        let swap_ms = swap_start.elapsed().as_secs_f64() * 1e3;
        if let Some(sink) = self.log_sink() {
            snn_log::info!(
                sink.collector(),
                "registry",
                {
                    "name": name,
                    "from": from.as_deref().unwrap_or("-"),
                    "to": version,
                    "warm": was_resident,
                },
                "swapped {name} to @{version} in {swap_ms:.1} ms ({})",
                if was_resident { "warm" } else { "cold" }
            );
        }
        if let (Some(collector), Some(target)) = (&self.trace, parent) {
            collector.record_span(
                target.trace,
                target.parent,
                "registry.swap",
                swap_start,
                Instant::now(),
                vec![("registry.cold", AttrValue::from(u64::from(!was_resident)))],
            );
        }
        Ok(SwapReport {
            name: name.to_string(),
            from,
            to: version.to_string(),
            was_resident,
            load_ms: if was_resident { 0.0 } else { handle.load_ms },
            compile_ms: if was_resident { 0.0 } else { handle.compile_ms },
            swap_ms,
        })
    }

    /// Lists every cataloged model with its residency state, active flag
    /// and in-flight count, sorted by key.
    pub fn list(&self) -> Vec<ModelStatus> {
        let state = self.state.lock().expect("registry state poisoned");
        state
            .catalog
            .iter()
            .map(|(key, entry)| match entry {
                CatalogEntry::Readable {
                    info, file_bytes, ..
                } => {
                    let resident = state.resident.get(key);
                    let loading = state.loading.contains(key);
                    let breaker_open = state
                        .breakers
                        .get(key)
                        .and_then(|b| b.open_until)
                        .is_some_and(|until| Instant::now() < until);
                    ModelStatus {
                        name: info.name.clone(),
                        version: info.version.clone(),
                        state: if resident.is_some() {
                            "resident".into()
                        } else if loading {
                            "loading".into()
                        } else if breaker_open {
                            "breaker-open".into()
                        } else {
                            "cold".into()
                        },
                        active: state.active.get(&info.name) == Some(&info.version),
                        backend: info.backend.label(),
                        input_dims: info.input_dims.clone(),
                        file_bytes: *file_bytes,
                        resident_bytes: resident.map_or(0, |h| h.footprint.stored_bytes),
                        pending: resident.map_or(0, |h| h.server.pending()),
                    }
                }
                CatalogEntry::Unreadable { error } => ModelStatus {
                    name: key.clone(),
                    version: String::new(),
                    state: "unreadable".into(),
                    active: false,
                    backend: error.to_string(),
                    input_dims: Vec::new(),
                    file_bytes: 0,
                    resident_bytes: 0,
                    pending: 0,
                },
            })
            .collect()
    }

    /// Aggregated counters and cold-start timings.
    pub fn metrics(&self) -> RegistryMetrics {
        let mut state = self.state.lock().expect("registry state poisoned");
        let catalog_models = state.catalog.len();
        let resident_models = state.resident.len();
        let resident_bytes = state.resident_bytes;
        let c = &state.counters;
        let (cold_loads, warm_hits, coalesced_loads, evictions, swaps, load_errors) = (
            c.cold_loads,
            c.warm_hits,
            c.coalesced_loads,
            c.evictions,
            c.swaps,
            c.load_errors,
        );
        let (breaker_opens, breaker_recoveries, breaker_rejections) =
            (c.breaker_opens, c.breaker_recoveries, c.breaker_rejections);
        let load_ms_mean = state.load_times.mean_us() / 1e3;
        let load_ms_max = state.load_times.quantile_us(1.0) / 1e3;
        let compile_ms_mean = state.compile_times.mean_us() / 1e3;
        let compile_ms_max = state.compile_times.quantile_us(1.0) / 1e3;
        RegistryMetrics {
            catalog_models,
            resident_models,
            resident_bytes,
            byte_budget: self.config.byte_budget,
            cold_loads,
            warm_hits,
            coalesced_loads,
            evictions,
            swaps,
            load_errors,
            breaker_opens,
            breaker_recoveries,
            breaker_rejections,
            load_ms_mean,
            load_ms_max,
            compile_ms_mean,
            compile_ms_max,
        }
    }

    /// The trace collector entry servers record into, if any.
    pub fn trace_collector(&self) -> Option<&Arc<TraceCollector>> {
        self.trace.as_ref()
    }

    /// Attaches a telemetry hub: every entry server loaded from here on
    /// records windowed per-model series labeled
    /// `model=<name>,version=<version>,backend=<label>`, and every
    /// already-resident entry is retrofitted with the same sink.
    pub fn attach_telemetry(&self, hub: Arc<TelemetryHub>) {
        let resident: Vec<Arc<ModelHandle>> = {
            let state = self.state.lock().expect("registry state poisoned");
            state.resident.values().cloned().collect()
        };
        for handle in resident {
            handle
                .server
                .attach_telemetry(Arc::clone(&hub), Self::entry_labels(&handle.info));
        }
        *self.telemetry.lock().expect("registry telemetry poisoned") = Some(hub);
    }

    /// Attaches a log sink: lifecycle transitions (cold loads, evictions,
    /// swaps, breaker opens/recoveries/rejections, load errors) emit
    /// structured `registry.*` events, a breaker opening triggers an
    /// incident snapshot, and every entry server — resident now or loaded
    /// later — gets the same sink for its batcher events.
    pub fn attach_logging(&self, sink: LogSink) {
        let resident: Vec<Arc<ModelHandle>> = {
            let state = self.state.lock().expect("registry state poisoned");
            state.resident.values().cloned().collect()
        };
        for handle in resident {
            handle.server.attach_logging(sink.clone());
        }
        *self.log.lock().expect("registry log poisoned") = Some(sink);
    }

    /// A clone of the attached log sink, if any.
    fn log_sink(&self) -> Option<LogSink> {
        self.log.lock().expect("registry log poisoned").clone()
    }

    /// Windowed-series labels identifying one registry entry.
    fn entry_labels(info: &ArtifactInfo) -> Labels {
        Labels::new()
            .with("model", info.name.clone())
            .with("version", info.version.clone())
            .with("backend", info.backend.label())
    }

    /// Releases every resident entry (each server drains its in-flight
    /// tickets when its last `Arc` drops). The catalog stays intact; the
    /// next lookup reloads cold.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<ModelHandle>> = {
            let mut state = self.state.lock().expect("registry state poisoned");
            state.resident_bytes = 0;
            state.lru.clear();
            std::mem::take(&mut state.resident).into_values().collect()
        };
        drop(drained); // servers shut down outside the lock
    }

    /// Resolves a request spec to a catalog key. Bare names follow the
    /// active pointer; explicit `name@version` passes through.
    fn resolve_key(&self, state: &State, spec: &str) -> Result<String, RegistryError> {
        if spec.contains('@') {
            return Ok(spec.to_string());
        }
        match state.active.get(spec) {
            Some(version) if !version.is_empty() => Ok(format!("{spec}@{version}")),
            _ => Err(RegistryError::UnknownModel(spec.to_string())),
        }
    }

    /// Moves `key` to the most-recently-used end of the LRU order.
    fn touch_lru(state: &mut State, key: &str) {
        state.lru.retain(|k| k != key);
        state.lru.push(key.to_string());
    }

    /// Evicts least-recently-used entries until under budget, skipping any
    /// entry with in-flight work: an outside handle clone
    /// (`Arc::strong_count > 1` beyond the map's own reference) or pending
    /// streaming tickets. Both checks happen under the state lock, and
    /// every new clone is minted under that same lock, so an entry judged
    /// idle here cannot gain a user before it is removed from the map.
    /// Returns the evicted handles so the caller can drop them (and shut
    /// their servers down) outside the lock.
    fn evict_over_budget(state: &mut State, budget: usize) -> Vec<Arc<ModelHandle>> {
        let mut evicted = Vec::new();
        if budget == 0 {
            return evicted;
        }
        while state.resident_bytes > budget {
            let victim = state.lru.iter().position(|key| {
                state.resident.get(key).is_some_and(|handle| {
                    Arc::strong_count(handle) == 1 && handle.server.pending() == 0
                })
            });
            match victim {
                None => break, // everything busy: stay transiently over budget
                Some(pos) => {
                    let key = state.lru.remove(pos);
                    if let Some(handle) = state.resident.remove(&key) {
                        state.resident_bytes = state
                            .resident_bytes
                            .saturating_sub(handle.footprint.stored_bytes);
                        state.counters.evictions += 1;
                        evicted.push(handle);
                    }
                }
            }
        }
        evicted
    }

    /// The cold path: read + validate the artifact, compile its backend,
    /// stand up a streaming server, and record spans when traced.
    fn load_and_compile(
        &self,
        key: &str,
        path: &Path,
        info: &ArtifactInfo,
        parent: Option<TraceTarget>,
    ) -> Result<ModelHandle, RegistryError> {
        let load_start = Instant::now();
        let artifact = ModelArtifact::load(path)?;
        if FaultInjector::global().should(FaultPoint::Compile) {
            return Err(RegistryError::Compile(format!(
                "injected compile failure for {key}"
            )));
        }
        let load_end = Instant::now();
        let (backend, footprint) = artifact.compile()?;
        let compile_end = Instant::now();
        if let (Some(collector), Some(target)) = (&self.trace, parent) {
            collector.record_span(
                target.trace,
                target.parent,
                "registry.load",
                load_start,
                load_end,
                vec![(
                    "artifact.bytes",
                    AttrValue::from(std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)),
                )],
            );
            collector.record_span(
                target.trace,
                target.parent,
                "registry.compile",
                load_end,
                compile_end,
                vec![(
                    "csr.stored_bytes",
                    AttrValue::from(footprint.stored_bytes as u64),
                )],
            );
        }
        let backend: Arc<dyn InferenceBackend> = backend;
        let server = match &self.trace {
            Some(collector) => Arc::new(StreamingServer::new_traced(
                backend,
                self.config.streaming.clone(),
                Arc::clone(collector),
            )),
            None => Arc::new(StreamingServer::new(backend, self.config.streaming.clone())),
        };
        let hub = self
            .telemetry
            .lock()
            .expect("registry telemetry poisoned")
            .clone();
        if let Some(hub) = hub {
            server.attach_telemetry(hub, Self::entry_labels(info));
        }
        if let Some(sink) = self.log_sink() {
            server.attach_logging(sink);
        }
        Ok(ModelHandle {
            key: key.to_string(),
            info: info.clone(),
            server,
            footprint,
            load_ms: load_end.duration_since(load_start).as_secs_f64() * 1e3,
            compile_ms: compile_end.duration_since(load_end).as_secs_f64() * 1e3,
        })
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("dir", &self.dir)
            .field("byte_budget", &self.config.byte_budget)
            .finish()
    }
}
