//! The pluggable backend abstraction.
//!
//! A backend executes a converted [`SnnModel`] over a `[N, C, H, W]` batch
//! and reports logits plus the shared [`RunStats`] event counters. Three
//! implementations ship: `snn_sim`'s reference [`EventSnn`], the
//! [`crate::CsrEngine`] f32 fast path, and the [`crate::QuantEngine`]
//! packed-log-code path. All are driven identically by the
//! [`crate::InferenceServer`] worker pool, and all feed the same event
//! statistics into the `snn-hw` energy model. [`BackendChoice`] is the
//! engine factory: it builds any of the three from one shared `Arc`'d
//! model, so an f32 server and a quantized server can run side by side on
//! a single read-only weight copy.

use std::sync::Arc;

use snn_sim::{EventSnn, RunStats};
use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnModel};

use crate::batcher::StreamingConfig;
use crate::quant::{QuantConfig, QuantEngine};
use crate::server::{InferenceServer, ServerConfig, StreamingServer};
use crate::CsrEngine;

/// A batch-capable inference engine over a converted SNN.
pub trait InferenceBackend: Send + Sync {
    /// Short backend identifier (`"event"`, `"csr"`, ...) used in reports.
    fn name(&self) -> &'static str;

    /// The converted model this backend executes.
    fn model(&self) -> &SnnModel;

    /// The per-sample input dims this backend was compiled for, when the
    /// backend has a fixed geometry. Compiled engines return their
    /// compile-time dims so servers can validate submissions against the
    /// entry's geometry; shape-agnostic backends (the reference event
    /// simulator) return `None` and validate at run time.
    fn input_dims(&self) -> Option<&[usize]> {
        None
    }

    /// Runs a `[N, C, H, W]` batch, returning decoded logits
    /// `[N, classes]` and accumulated event statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the batch does not match the model
    /// geometry.
    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError>;
}

impl InferenceBackend for EventSnn {
    fn name(&self) -> &'static str {
        "event"
    }

    fn model(&self) -> &SnnModel {
        EventSnn::model(self)
    }

    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        self.run(images)
    }
}

/// Which engine a server should execute — the factory both
/// [`crate::InferenceServer`] and [`crate::StreamingServer`] builds
/// backends through, so f32 and quantized serving are a one-line switch
/// over the same `Arc`'d model.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use rand::SeedableRng;
/// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
/// use snn_runtime::{BackendChoice, InferenceServer, QuantConfig, ServerConfig};
/// use snn_tensor::Tensor;
/// use ttfs_core::{convert, Base2Kernel};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Sequential::new(vec![
///     Layer::Flatten(Flatten::new()),
///     Layer::Dense(DenseLayer::new(9, 2, &mut rng)),
/// ]);
/// let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 16)?);
/// // One weight copy, two serving modes.
/// let config = ServerConfig { threads: 2, chunk_size: 4 };
/// let f32_server = InferenceServer::new(
///     BackendChoice::Csr.build(Arc::clone(&model), &[1, 3, 3])?,
///     config.clone(),
/// );
/// let quant_server = InferenceServer::new(
///     BackendChoice::Quant(QuantConfig::default()).build(Arc::clone(&model), &[1, 3, 3])?,
///     config,
/// );
/// let x = Tensor::full(&[4, 1, 3, 3], 0.5);
/// assert_eq!(f32_server.backend_name(), "csr");
/// assert_eq!(quant_server.backend_name(), "quant");
/// assert_eq!(quant_server.run(&x)?.logits.dims(), &[4, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendChoice {
    /// The reference event simulator (no compilation, slowest).
    Event,
    /// The batched edge-major f32 CSR engine.
    #[default]
    Csr,
    /// The quantized engine: packed log codes + LUT decode.
    Quant(QuantConfig),
}

impl BackendChoice {
    /// Builds the chosen backend over a shared model. `input_dims` are the
    /// per-sample dims the compiled engines serve (`[C, H, W]`); the event
    /// backend ignores them beyond validation at run time.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit
    /// the model geometry or the quantized compile fails (bad bit width,
    /// all-zero layer, shift-add without the eq. 18 kernel).
    pub fn build(
        &self,
        model: Arc<SnnModel>,
        input_dims: &[usize],
    ) -> Result<Arc<dyn InferenceBackend>, ConvertError> {
        Ok(match self {
            Self::Event => {
                // Validate geometry eagerly like the compiled engines do.
                model.shape_trace(input_dims)?;
                Arc::new(EventSnn::new(&model))
            }
            Self::Csr => Arc::new(CsrEngine::compile_shared(model, input_dims)?),
            Self::Quant(config) => {
                Arc::new(QuantEngine::compile_shared(model, input_dims, *config)?)
            }
        })
    }

    /// Builds the chosen backend and wraps it in a closed-batch
    /// [`InferenceServer`] in one call.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn serve_batched(
        &self,
        model: Arc<SnnModel>,
        input_dims: &[usize],
        config: ServerConfig,
    ) -> Result<InferenceServer, ConvertError> {
        Ok(InferenceServer::new(self.build(model, input_dims)?, config))
    }

    /// Builds the chosen backend and wraps it in a [`StreamingServer`] in
    /// one call — the construction path a network front-end (the
    /// `snn-gateway` crate) uses to stand up a serving stack from one
    /// shared model.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn serve_streaming(
        &self,
        model: Arc<SnnModel>,
        input_dims: &[usize],
        config: StreamingConfig,
    ) -> Result<StreamingServer, ConvertError> {
        Ok(StreamingServer::new(self.build(model, input_dims)?, config))
    }

    /// [`serve_streaming`](Self::serve_streaming) with a span sink: the
    /// server records runtime spans (queue wait, flush reason, batch and
    /// per-stage execution) into `collector` for every traced submission.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build`](Self::build).
    pub fn serve_streaming_traced(
        &self,
        model: Arc<SnnModel>,
        input_dims: &[usize],
        config: StreamingConfig,
        collector: Arc<snn_trace::TraceCollector>,
    ) -> Result<StreamingServer, ConvertError> {
        Ok(StreamingServer::new_traced(
            self.build(model, input_dims)?,
            config,
            collector,
        ))
    }
}
