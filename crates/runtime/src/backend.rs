//! The pluggable backend abstraction.
//!
//! A backend executes a converted [`SnnModel`] over a `[N, C, H, W]` batch
//! and reports logits plus the shared [`RunStats`] event counters. The
//! reference implementation is `snn_sim`'s [`EventSnn`]; the fast path is
//! [`crate::CsrEngine`]. Both are driven identically by the
//! [`crate::InferenceServer`] worker pool, and both feed the same event
//! statistics into the `snn-hw` energy model.

use snn_sim::{EventSnn, RunStats};
use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnModel};

/// A batch-capable inference engine over a converted SNN.
pub trait InferenceBackend: Send + Sync {
    /// Short backend identifier (`"event"`, `"csr"`, ...) used in reports.
    fn name(&self) -> &'static str;

    /// The converted model this backend executes.
    fn model(&self) -> &SnnModel;

    /// Runs a `[N, C, H, W]` batch, returning decoded logits
    /// `[N, classes]` and accumulated event statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if the batch does not match the model
    /// geometry.
    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError>;
}

impl InferenceBackend for EventSnn {
    fn name(&self) -> &'static str {
        "event"
    }

    fn model(&self) -> &SnnModel {
        EventSnn::model(self)
    }

    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        self.run(images)
    }
}
