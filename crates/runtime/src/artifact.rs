//! Versioned on-disk model artifacts — the unit the
//! [`ModelRegistry`](crate::ModelRegistry) loads, caches and swaps.
//!
//! An artifact carries everything a serving box needs to stand up one
//! model: the converted [`SnnModel`] (fused weights, biases, kernel,
//! window), the per-layer [`LogQuantizer`] calibration of the quantized
//! path, the per-sample input geometry, and a backend hint selecting the
//! engine ([`BackendHint`]). The wire format is defensive by construction:
//!
//! ```text
//! offset 0   magic            b"SNNARTF\0"            (8 bytes)
//! offset 8   format version   u32 little-endian       (currently 1)
//! offset 12  header length    u32 little-endian
//! offset 16  header JSON      ArtifactInfo            (name, version, dims, backend)
//! ...        payload length   u64 little-endian
//! ...        payload JSON     model + quantizers
//! ...        checksum         u64 little-endian       FNV-1a over bytes [8, checksum)
//! ```
//!
//! Every failure mode maps to a typed [`ArtifactError`]: wrong magic,
//! a future format version, declared lengths larger than the sanity cap
//! ([`MAX_SECTION_BYTES`]) or the file itself (truncation), checksum
//! mismatches from bit flips, and malformed JSON. Loading never panics.
//!
//! Floats round-trip **bit-exactly**: the vendored serde stores every
//! `f32` widened to `f64` (exact) and the JSON writer prints
//! shortest-round-trip decimals, so a loaded model's weights — and
//! therefore its compiled engines' logits — are bit-identical to the
//! in-memory original (property-tested in
//! `crates/runtime/tests/artifact_roundtrip.rs`).

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use snn_logquant::{LogBase, LogQuantizer};
use ttfs_core::{ConvertError, SnnModel};

use crate::csr::CsrFootprint;
use crate::quant::{fit_layer_quantizers, DecodeMode, QuantConfig, QuantEngine};
use crate::{CsrEngine, InferenceBackend};

/// The artifact file magic (8 bytes at offset 0).
pub const ARTIFACT_MAGIC: [u8; 8] = *b"SNNARTF\0";

/// The format version this build writes and the highest it reads.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// Sanity cap on any declared section length: a header or payload
/// claiming more than this is rejected as hostile before any allocation.
pub const MAX_SECTION_BYTES: u64 = 1 << 30;

/// Canonical file extension for model artifacts (`name@version.snna`).
pub const ARTIFACT_EXTENSION: &str = "snna";

/// Typed failure modes of artifact decoding. Every variant is a clean
/// error — a corrupt or hostile file can never panic the loader.
#[derive(Debug, Clone, PartialEq)]
pub enum ArtifactError {
    /// Filesystem-level failure (open, read, write).
    Io(String),
    /// The first 8 bytes are not [`ARTIFACT_MAGIC`].
    BadMagic {
        /// What the file started with instead.
        found: Vec<u8>,
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Highest version this build reads.
        supported: u32,
    },
    /// A declared section length exceeds [`MAX_SECTION_BYTES`].
    OversizedLength {
        /// Which length field was hostile (`"header"` or `"payload"`).
        field: &'static str,
        /// The declared byte count.
        declared: u64,
    },
    /// The file ends before the bytes its lengths promise.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The stored checksum does not match the bytes (bit flip or tamper).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum computed over the file's bytes.
        computed: u64,
    },
    /// Structurally valid framing around semantically broken content
    /// (bad JSON, geometry that does not fit the model, calibration that
    /// does not match the weights, trailing garbage).
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "artifact i/o: {e}"),
            Self::BadMagic { found } => {
                write!(f, "bad artifact magic {found:?} (want {ARTIFACT_MAGIC:?})")
            }
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than the supported {supported}"
            ),
            Self::OversizedLength { field, declared } => write!(
                f,
                "declared {field} length {declared} exceeds the {MAX_SECTION_BYTES}-byte cap"
            ),
            Self::Truncated { needed, available } => write!(
                f,
                "artifact truncated: needed {needed} more bytes, found {available}"
            ),
            Self::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// FNV-1a 64-bit over `bytes` — the artifact checksum. Dependency-free,
/// deterministic, and sensitive to any single-bit flip.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Which engine an artifact asks to be served on — the serializable twin
/// of [`crate::BackendChoice`] minus the reference simulator (artifacts
/// describe deployments; nobody deploys the reference backend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BackendHint {
    /// The f32 edge-major CSR engine.
    Csr,
    /// The packed-log-code engine.
    Quant {
        /// Logarithmic quantization base.
        base: LogBase,
        /// Code width in bits, sign included.
        bits: u8,
        /// Serve through the shift-add (LogPe) datapath instead of the
        /// exact decode LUT.
        shift_add: bool,
    },
}

impl BackendHint {
    /// The paper's default quantized serving hint (5-bit, base `2^-1/2`,
    /// exact LUT).
    pub fn quant_default() -> Self {
        let q = QuantConfig::default();
        Self::Quant {
            base: q.base,
            bits: q.bits,
            shift_add: false,
        }
    }

    /// Stable label used in listings and reports.
    pub fn label(&self) -> String {
        match self {
            Self::Csr => "csr".into(),
            Self::Quant {
                base,
                bits,
                shift_add,
            } => format!(
                "quant{bits}b-{}{}",
                base.label(),
                if *shift_add { "-shiftadd" } else { "" }
            ),
        }
    }

    /// The quantized-path configuration, when this hint is quantized.
    pub fn quant_config(&self) -> Option<QuantConfig> {
        match self {
            Self::Csr => None,
            Self::Quant {
                base,
                bits,
                shift_add,
            } => Some(QuantConfig {
                base: *base,
                bits: *bits,
                mode: if *shift_add {
                    DecodeMode::ShiftAdd
                } else {
                    DecodeMode::Lut
                },
            }),
        }
    }
}

/// The artifact header: everything a registry needs to catalog a model
/// without deserializing its weights ([`ModelArtifact::peek`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactInfo {
    /// Model name (no `@` or path separators; the registry's routing key).
    pub name: String,
    /// Model version label (no `@` or path separators).
    pub version: String,
    /// Per-sample input dims the model serves (e.g. `[3, 32, 32]`).
    pub input_dims: Vec<usize>,
    /// Which engine to compile for serving.
    pub backend: BackendHint,
}

impl ArtifactInfo {
    /// `name@version` — the registry key this artifact resolves to.
    pub fn key(&self) -> String {
        format!("{}@{}", self.name, self.version)
    }

    /// Canonical file name for this artifact (`name@version.snna`).
    pub fn file_name(&self) -> String {
        format!("{}.{ARTIFACT_EXTENSION}", self.key())
    }
}

/// Payload body: the converted model plus the quantized path's per-layer
/// calibration, serialized through the vendored serde (bit-exact floats).
#[derive(Serialize, Deserialize)]
struct ArtifactPayload {
    model: SnnModel,
    quantizers: Vec<LogQuantizer>,
}

/// A deserialized model artifact: header info plus the model and its
/// calibration, ready to compile into a serving backend.
#[derive(Debug, Clone)]
pub struct ModelArtifact {
    /// Header fields (name, version, geometry, backend hint).
    pub info: ArtifactInfo,
    /// The converted model.
    pub model: SnnModel,
    /// Per-weighted-layer quantizer calibration, in stage order; empty for
    /// a pure-f32 artifact.
    pub quantizers: Vec<LogQuantizer>,
}

/// Rejects names/versions that would break `name@version` keys, URLs or
/// file paths.
fn validate_label(field: &str, value: &str) -> Result<(), ArtifactError> {
    if value.is_empty() {
        return Err(ArtifactError::Malformed(format!("{field} is empty")));
    }
    if value.contains(['@', '/', '\\']) || value.contains(char::is_whitespace) {
        return Err(ArtifactError::Malformed(format!(
            "{field} {value:?} may not contain '@', path separators or whitespace"
        )));
    }
    Ok(())
}

impl ModelArtifact {
    /// Packages `model` as a named, versioned artifact, validating the
    /// geometry and (for quantized hints) calibrating one quantizer per
    /// weighted layer — the calibration ships inside the artifact so a
    /// serving box never re-derives it from anything but these weights.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] for an unusable name/version, a
    /// geometry that does not fit the model, or an uncalibratable
    /// quantized hint (bad bit width, all-zero layer).
    pub fn build(
        name: &str,
        version: &str,
        model: SnnModel,
        input_dims: &[usize],
        backend: BackendHint,
    ) -> Result<Self, ArtifactError> {
        validate_label("artifact name", name)?;
        validate_label("artifact version", version)?;
        model
            .shape_trace(input_dims)
            .map_err(|e| ArtifactError::Malformed(format!("input dims: {e}")))?;
        let quantizers = match &backend {
            BackendHint::Csr => Vec::new(),
            BackendHint::Quant { base, bits, .. } => fit_layer_quantizers(&model, *base, *bits)
                .map_err(|e| ArtifactError::Malformed(e.to_string()))?,
        };
        Ok(Self {
            info: ArtifactInfo {
                name: name.into(),
                version: version.into(),
                input_dims: input_dims.to_vec(),
                backend,
            },
            model,
            quantizers,
        })
    }

    /// Serializes the artifact to its framed byte format.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] if JSON serialization fails (should
    /// not happen for well-formed models).
    pub fn to_bytes(&self) -> Result<Vec<u8>, ArtifactError> {
        let header = serde_json::to_string(&self.info)
            .map_err(|e| ArtifactError::Malformed(format!("serialize header: {e}")))?;
        let payload = serde_json::to_string(&ArtifactPayload {
            model: self.model.clone(),
            quantizers: self.quantizers.clone(),
        })
        .map_err(|e| ArtifactError::Malformed(format!("serialize payload: {e}")))?;
        let mut out = Vec::with_capacity(32 + header.len() + payload.len());
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload.as_bytes());
        let checksum = fnv1a64(&out[ARTIFACT_MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        Ok(out)
    }

    /// Decodes an artifact from bytes, verifying magic, format version,
    /// declared lengths, the checksum, and the semantic invariants
    /// (parseable JSON, geometry fits, calibration matches the weights).
    ///
    /// # Errors
    ///
    /// The matching [`ArtifactError`] variant; never panics on hostile
    /// input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        let (info, payload, consumed) = decode_framing(bytes)?;
        if consumed != bytes.len() {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - consumed
            )));
        }
        let payload: ArtifactPayload = serde_json::from_str(payload)
            .map_err(|e| ArtifactError::Malformed(format!("payload JSON: {e}")))?;
        validate_label("artifact name", &info.name)?;
        validate_label("artifact version", &info.version)?;
        payload
            .model
            .shape_trace(&info.input_dims)
            .map_err(|e| ArtifactError::Malformed(format!("input dims: {e}")))?;
        // Cross-check the shipped calibration against the shipped weights:
        // refitting is deterministic, so any disagreement means the two
        // sections came from different models.
        match info.backend.quant_config() {
            None => {
                if !payload.quantizers.is_empty() {
                    return Err(ArtifactError::Malformed(
                        "f32 artifact carries quantizer calibration".into(),
                    ));
                }
            }
            Some(config) => {
                let refit = fit_layer_quantizers(&payload.model, config.base, config.bits)
                    .map_err(|e| ArtifactError::Malformed(e.to_string()))?;
                let matches = refit.len() == payload.quantizers.len()
                    && refit.iter().zip(&payload.quantizers).all(|(a, b)| {
                        a.base() == b.base()
                            && a.bits() == b.bits()
                            && a.fsr_log2().to_bits() == b.fsr_log2().to_bits()
                    });
                if !matches {
                    return Err(ArtifactError::Malformed(
                        "quantizer calibration does not match the shipped weights".into(),
                    ));
                }
            }
        }
        Ok(Self {
            info,
            model: payload.model,
            quantizers: payload.quantizers,
        })
    }

    /// Writes the artifact to `path` **crash-safely**: the bytes go to a
    /// temp sibling (`path` + `.tmp`), are fsynced, and only then renamed
    /// over `path`. A crash — or an injected
    /// [`FaultPoint::ArtifactWrite`](crate::FaultPoint::ArtifactWrite)
    /// tear — at any point leaves the published path either absent or a
    /// complete previous version, never a torn `.snna`.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failure, or serialization
    /// errors from [`to_bytes`](Self::to_bytes).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        let path = path.as_ref();
        let bytes = self.to_bytes()?;
        let io_err = |stage: &str, e: std::io::Error| {
            ArtifactError::Io(format!("{stage} {}: {e}", path.display()))
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        if crate::FaultInjector::global().should(crate::FaultPoint::ArtifactWrite) {
            // Simulate a crash mid-write: half the bytes land in the temp
            // file, the fsync+rename publish step never runs. The
            // published path must remain whatever it was before.
            let torn = &bytes[..bytes.len() / 2];
            let _ = std::fs::write(&tmp, torn);
            return Err(ArtifactError::Io(format!(
                "injected torn write: {} (temp sibling left truncated)",
                tmp.display()
            )));
        }
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create temp for", e))?;
        std::io::Write::write_all(&mut file, &bytes).map_err(|e| io_err("write temp for", e))?;
        file.sync_all().map_err(|e| io_err("fsync temp for", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| io_err("publish (rename)", e))
    }

    /// Reads and fully validates an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`from_bytes`](Self::from_bytes), plus
    /// [`ArtifactError::Io`] — including an injected
    /// [`FaultPoint::ArtifactRead`](crate::FaultPoint::ArtifactRead)
    /// failure, which surfaces before the file is touched.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        if crate::FaultInjector::global().should(crate::FaultPoint::ArtifactRead) {
            return Err(ArtifactError::Io(format!(
                "injected read fault: {}",
                path.as_ref().display()
            )));
        }
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ArtifactError::Io(format!("read {}: {e}", path.as_ref().display())))?;
        Self::from_bytes(&bytes)
    }

    /// Reads only the framing and header of `path` — magic, version,
    /// lengths, checksum and [`ArtifactInfo`] — without deserializing the
    /// weights. The registry uses this to catalog a model directory
    /// cheaply. Returns the info and the file's total size in bytes.
    ///
    /// # Errors
    ///
    /// Same framing conditions as [`from_bytes`](Self::from_bytes), plus
    /// [`ArtifactError::Io`].
    pub fn peek(path: impl AsRef<Path>) -> Result<(ArtifactInfo, u64), ArtifactError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| ArtifactError::Io(format!("read {}: {e}", path.as_ref().display())))?;
        let (info, _payload, consumed) = decode_framing(&bytes)?;
        if consumed != bytes.len() {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after the checksum",
                bytes.len() - consumed
            )));
        }
        validate_label("artifact name", &info.name)?;
        validate_label("artifact version", &info.version)?;
        Ok((info, bytes.len() as u64))
    }

    /// Compiles the serving backend this artifact asks for, returning the
    /// engine and its compiled-table memory footprint (the byte accounting
    /// the registry's LRU budget charges).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError`] if compilation fails (geometry, bit width,
    /// shift-add without the eq. 18 kernel).
    pub fn compile(&self) -> Result<(Arc<dyn InferenceBackend>, CsrFootprint), ConvertError> {
        let model = Arc::new(self.model.clone());
        match self.info.backend.quant_config() {
            None => {
                let engine = CsrEngine::compile_shared(model, &self.info.input_dims)?;
                let footprint = engine.compiled().footprint();
                Ok((Arc::new(engine), footprint))
            }
            Some(config) => {
                let engine = QuantEngine::compile_shared(model, &self.info.input_dims, config)?;
                let footprint = engine.compiled().footprint();
                Ok((Arc::new(engine), footprint))
            }
        }
    }
}

/// Shared framing decoder: checks magic, version, lengths and checksum,
/// parses the header, and returns `(info, payload_json, bytes_consumed)`.
fn decode_framing(bytes: &[u8]) -> Result<(ArtifactInfo, &str, usize), ArtifactError> {
    let need = |cursor: usize, n: usize| -> Result<(), ArtifactError> {
        if bytes.len() < cursor + n {
            Err(ArtifactError::Truncated {
                needed: cursor + n - bytes.len(),
                available: bytes.len().saturating_sub(cursor),
            })
        } else {
            Ok(())
        }
    };
    need(0, ARTIFACT_MAGIC.len() + 8)?;
    if bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
        return Err(ArtifactError::BadMagic {
            found: bytes[..ARTIFACT_MAGIC.len()].to_vec(),
        });
    }
    let mut cursor = ARTIFACT_MAGIC.len();
    let version = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().expect("4 bytes"));
    cursor += 4;
    if version > ARTIFACT_FORMAT_VERSION {
        return Err(ArtifactError::UnsupportedVersion {
            found: version,
            supported: ARTIFACT_FORMAT_VERSION,
        });
    }
    let header_len = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().expect("4 bytes"));
    cursor += 4;
    if u64::from(header_len) > MAX_SECTION_BYTES {
        return Err(ArtifactError::OversizedLength {
            field: "header",
            declared: u64::from(header_len),
        });
    }
    need(cursor, header_len as usize)?;
    let header = &bytes[cursor..cursor + header_len as usize];
    cursor += header_len as usize;
    need(cursor, 8)?;
    let payload_len = u64::from_le_bytes(bytes[cursor..cursor + 8].try_into().expect("8 bytes"));
    cursor += 8;
    if payload_len > MAX_SECTION_BYTES {
        return Err(ArtifactError::OversizedLength {
            field: "payload",
            declared: payload_len,
        });
    }
    need(cursor, payload_len as usize)?;
    let payload = &bytes[cursor..cursor + payload_len as usize];
    cursor += payload_len as usize;
    need(cursor, 8)?;
    let stored = u64::from_le_bytes(bytes[cursor..cursor + 8].try_into().expect("8 bytes"));
    let computed = fnv1a64(&bytes[ARTIFACT_MAGIC.len()..cursor]);
    cursor += 8;
    if stored != computed {
        return Err(ArtifactError::ChecksumMismatch { stored, computed });
    }
    let header = std::str::from_utf8(header)
        .map_err(|_| ArtifactError::Malformed("header is not UTF-8".into()))?;
    let payload = std::str::from_utf8(payload)
        .map_err(|_| ArtifactError::Malformed("payload is not UTF-8".into()))?;
    let info: ArtifactInfo = serde_json::from_str(header)
        .map_err(|e| ArtifactError::Malformed(format!("header JSON: {e}")))?;
    Ok((info, payload, cursor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use ttfs_core::{convert, Base2Kernel};

    fn model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(11);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn roundtrip_preserves_weights_bit_exactly() {
        let m = model();
        let artifact =
            ModelArtifact::build("demo", "v1", m.clone(), &[1, 3, 4], BackendHint::Csr).unwrap();
        let bytes = artifact.to_bytes().unwrap();
        let back = ModelArtifact::from_bytes(&bytes).unwrap();
        assert_eq!(back.info, artifact.info);
        for (a, b) in m.layers().iter().zip(back.model.layers()) {
            if let (Some(wa), Some(wb)) = (a.weight(), b.weight()) {
                let bits_a: Vec<u32> = wa.as_slice().iter().map(|f| f.to_bits()).collect();
                let bits_b: Vec<u32> = wb.as_slice().iter().map(|f| f.to_bits()).collect();
                assert_eq!(bits_a, bits_b, "weights must round-trip bit-exactly");
            }
        }
    }

    #[test]
    fn quant_artifact_ships_matching_calibration() {
        let artifact = ModelArtifact::build(
            "demo",
            "v1",
            model(),
            &[1, 3, 4],
            BackendHint::quant_default(),
        )
        .unwrap();
        assert_eq!(artifact.quantizers.len(), 2);
        let back = ModelArtifact::from_bytes(&artifact.to_bytes().unwrap()).unwrap();
        assert_eq!(back.quantizers.len(), 2);
        for (a, b) in artifact.quantizers.iter().zip(&back.quantizers) {
            assert_eq!(a.fsr_log2().to_bits(), b.fsr_log2().to_bits());
        }
    }

    #[test]
    fn every_corruption_is_a_typed_error() {
        let artifact =
            ModelArtifact::build("demo", "v1", model(), &[1, 3, 4], BackendHint::Csr).unwrap();
        let good = artifact.to_bytes().unwrap();

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactError::BadMagic { .. })
        ));

        // Future format version.
        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactError::UnsupportedVersion { found: 99, .. })
        ));

        // Truncation (any prefix must fail cleanly).
        for cut in [0, 7, 12, 20, good.len() / 2, good.len() - 1] {
            let err = ModelArtifact::from_bytes(&good[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArtifactError::Truncated { .. } | ArtifactError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err}"
            );
        }

        // Single bit flip in the payload.
        let mut bad = good.clone();
        let mid = good.len() / 2;
        bad[mid] ^= 0x01;
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));

        // Oversized declared header length.
        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactError::OversizedLength {
                field: "header",
                ..
            })
        ));

        // Trailing garbage.
        let mut bad = good.clone();
        bad.extend_from_slice(b"junk");
        assert!(matches!(
            ModelArtifact::from_bytes(&bad),
            Err(ArtifactError::Malformed(_))
        ));

        // The original still loads (corruption tests must not mutate it).
        assert!(ModelArtifact::from_bytes(&good).is_ok());
    }

    #[test]
    fn hostile_labels_rejected() {
        for bad in ["", "a@b", "a/b", "a b"] {
            assert!(
                ModelArtifact::build(bad, "v1", model(), &[1, 3, 4], BackendHint::Csr).is_err(),
                "name {bad:?} must be rejected"
            );
        }
    }
}
