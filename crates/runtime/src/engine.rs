//! The CSR fast-path inference engine.
//!
//! [`CsrEngine`] executes the same integrate/fire physics as
//! [`snn_sim::EventSnn`] but over the compiled [`CsrModel`]: the
//! integration phase is a contiguous edge scan per spike (no per-spike
//! geometry arithmetic) and inter-layer spike hand-off goes through the
//! O(1) [`TimeWheel`] instead of a comparison sort. Spike processing order
//! — ascending time, then ascending neuron — matches the reference
//! backend, so float accumulation order and therefore logits match it
//! bit-for-bit on weighted layers.

use snn_sim::{phase, RunStats};
use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnModel, TtfsKernel};

use crate::csr::{CsrModel, CsrStage};
use crate::wheel::TimeWheel;
use crate::InferenceBackend;

/// Batched CSR + time-wheel executor for a converted [`SnnModel`].
#[derive(Debug, Clone)]
pub struct CsrEngine {
    model: SnnModel,
    compiled: CsrModel,
}

impl CsrEngine {
    /// Compiles `model` for per-sample input dims (`[C, H, W]`).
    ///
    /// Compilation walks the model once and materializes every weighted
    /// layer's synapses in CSR form (structural zeros dropped), so each
    /// later inference is a contiguous edge scan per spike.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
    /// use snn_runtime::{CsrEngine, InferenceBackend};
    /// use snn_tensor::Tensor;
    /// use ttfs_core::{convert, Base2Kernel};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let net = Sequential::new(vec![
    ///     Layer::Flatten(Flatten::new()),
    ///     Layer::Dense(DenseLayer::new(9, 4, &mut rng)),
    /// ]);
    /// let model = convert(&net, Base2Kernel::paper_default(), 16)?;
    /// let engine = CsrEngine::compile(&model, &[1, 3, 3])?;
    /// assert_eq!(engine.total_edges(), 9 * 4); // dense 9→4, no zero weights
    /// let (logits, stats) = engine.run_batch(&Tensor::full(&[2, 1, 3, 3], 0.5))?;
    /// assert_eq!(logits.dims(), &[2, 4]);
    /// assert_eq!(stats.batch, 2);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry.
    pub fn compile(model: &SnnModel, input_dims: &[usize]) -> Result<Self, ConvertError> {
        Ok(Self {
            model: model.clone(),
            compiled: CsrModel::compile(model, input_dims)?,
        })
    }

    /// The compiled CSR representation.
    pub fn compiled(&self) -> &CsrModel {
        &self.compiled
    }

    /// Total stored synapses across weighted layers.
    pub fn total_edges(&self) -> usize {
        self.compiled.total_edges
    }

    fn encode_input_wheel(&self, sample: &[f32]) -> TimeWheel {
        let kernel = self.model.kernel();
        let window = self.model.window();
        let mut wheel = TimeWheel::new(window);
        for (i, &v) in sample.iter().enumerate() {
            if let Some(t) = kernel.encode(v, window) {
                wheel.push(t, i as u32, 1.0);
            }
        }
        wheel
    }

    /// Fire phase directly out of membrane voltages into a fresh wheel
    /// (identical semantics to [`phase::fire_phase`], minus the sort the
    /// wheel makes unnecessary).
    fn fire_into_wheel(&self, vmem: &[f32], stats: &mut snn_sim::LayerStats) -> TimeWheel {
        let kernel = self.model.kernel();
        let window = self.model.window();
        let mut wheel = TimeWheel::new(window);
        let mut latest: u32 = 0;
        let mut all_fired = true;
        for (i, &u) in vmem.iter().enumerate() {
            match kernel.encode(u, window) {
                Some(t) => {
                    latest = latest.max(t);
                    wheel.push(t, i as u32, 1.0);
                }
                None => all_fired = false,
            }
        }
        stats.output_spikes += wheel.len();
        stats.encoder_iterations += phase::encoder_iteration_count(window, latest, all_fired);
        wheel
    }

    fn run_sample(&self, sample: &[f32], stats: &mut RunStats) -> Result<Vec<f32>, ConvertError> {
        let kernel = *self.model.kernel();
        let weighted = self.model.weighted_layers();
        let mut wheel = self.encode_input_wheel(sample);
        let mut seen = 0usize;
        let mut logits: Option<Vec<f32>> = None;

        for stage in &self.compiled.stages {
            match stage {
                CsrStage::Weighted { syn, bias } => {
                    // f64 accumulate -> one f32 rounding -> f32 bias add:
                    // identical to the reference GEMM discipline, so the
                    // fire-phase quantizer sees the same f32 membranes.
                    let mut acc = vec![0.0f64; bias.len()];
                    let mut ops = 0usize;
                    for (t, neuron, scale) in wheel.iter_ordered() {
                        let psp = kernel.decode(t) * scale;
                        ops += syn.degree(neuron);
                        for (target, w) in syn.edges_of(neuron) {
                            acc[target as usize] += w as f64 * psp as f64;
                        }
                    }
                    let mut vmem: Vec<f32> = acc.into_iter().map(|v| v as f32).collect();
                    for (v, b) in vmem.iter_mut().zip(bias.iter()) {
                        *v += b;
                    }
                    let layer_stats = &mut stats.layers[seen];
                    layer_stats.input_spikes += wheel.len();
                    layer_stats.synaptic_ops += ops;
                    layer_stats.neurons += vmem.len();
                    seen += 1;
                    if seen < weighted {
                        wheel = self.fire_into_wheel(&vmem, layer_stats);
                    } else {
                        logits = Some(vmem);
                    }
                }
                CsrStage::MaxPool {
                    win,
                    stride,
                    in_dims,
                } => {
                    let train = wheel.to_train(in_dims.clone());
                    let pooled =
                        phase::max_pool_spikes(self.model.kernel(), &train, *win, *stride)?;
                    wheel = TimeWheel::from_train(&pooled);
                }
                CsrStage::AvgPool {
                    win,
                    stride,
                    in_dims,
                } => {
                    let train = wheel.to_train(in_dims.clone());
                    let pooled = phase::avg_pool_spikes(&train, *win, *stride)?;
                    wheel = TimeWheel::from_train(&pooled);
                }
                CsrStage::Flatten => {} // flat indices already
            }
        }
        logits.ok_or_else(|| ConvertError::Structure("model produced no readout".into()))
    }
}

impl InferenceBackend for CsrEngine {
    fn name(&self) -> &'static str {
        "csr"
    }

    fn model(&self) -> &SnnModel {
        &self.model
    }

    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        let dims = images.dims();
        if dims.len() < 2 {
            return Err(ConvertError::Structure(format!(
                "expected batched input, got {:?}",
                dims
            )));
        }
        if dims[1..] != self.compiled.input_dims[..] {
            return Err(ConvertError::Structure(format!(
                "batch sample dims {:?} do not match compiled dims {:?}",
                &dims[1..],
                self.compiled.input_dims
            )));
        }
        let n = dims[0];
        let sample_len: usize = self.compiled.input_dims.iter().product();
        let mut stats = phase::new_run_stats(&self.model, n);
        let mut rows = Vec::with_capacity(n);
        for s in 0..n {
            let sample = &images.as_slice()[s * sample_len..(s + 1) * sample_len];
            rows.push(self.run_sample(sample, &mut stats)?);
        }
        let logits = phase::logits_tensor(rows)?;
        Ok((logits, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{
        ActivationLayer, AvgPool2dLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer,
        Relu, Sequential,
    };
    use snn_sim::EventSnn;
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel};

    fn cnn_model(seed: u64) -> SnnModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn matches_event_backend_bit_for_bit() {
        let model = cnn_model(11);
        let mut rng = StdRng::seed_from_u64(99);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let event = EventSnn::new(&model);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let (a, sa) = event.run_batch(&x).unwrap();
        let (b, sb) = csr.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "same accumulation order");
        assert_eq!(sa, sb, "identical event statistics");
    }

    #[test]
    fn matches_reference_forward() {
        let model = cnn_model(12);
        let mut rng = StdRng::seed_from_u64(100);
        let x = snn_tensor::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let (logits, _) = csr.run_batch(&x).unwrap();
        let reference = model.reference_forward(&x).unwrap();
        assert!(logits.allclose(&reference, 1e-4 * (1.0 + reference.abs_max())));
    }

    #[test]
    fn avg_pool_path_matches_event() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 3, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::AvgPool2d(AvgPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 3 * 3, 4, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = snn_tensor::uniform(&[2, 2, 6, 6], 0.0, 1.0, &mut rng);
        let event = EventSnn::new(&model);
        let csr = CsrEngine::compile(&model, &[2, 6, 6]).unwrap();
        let (a, _) = event.run_batch(&x).unwrap();
        let (b, _) = csr.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zero_input_yields_bias_logits() {
        let model = cnn_model(14);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let (logits, stats) = csr.run_batch(&x).unwrap();
        assert_eq!(stats.layers[0].input_spikes, 0);
        let reference = model.reference_forward(&x).unwrap();
        assert!(logits.allclose(&reference, 1e-4));
    }

    #[test]
    fn rejects_mismatched_batch_dims() {
        let model = cnn_model(15);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let x = Tensor::zeros(&[1, 1, 6, 6]);
        assert!(csr.run_batch(&x).is_err());
        let flat = Tensor::zeros(&[4]);
        assert!(csr.run_batch(&flat).is_err());
    }
}
