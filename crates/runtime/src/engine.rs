//! The CSR fast-path inference engine.
//!
//! [`CsrEngine`] executes the same integrate/fire physics as
//! [`snn_sim::EventSnn`] but over the compiled [`CsrModel`], and it does so
//! **edge-major over a chunk of samples**: instead of walking one sample's
//! spikes at a time (which streams every CSR row from memory once per
//! sample), the engine lines the chunk's samples up as lanes of a
//! [`BatchWheel`], walks time slots in ascending order, groups equal
//! neurons across lanes within a slot, and streams each synapse row **once
//! per group** while scattering into a `[lanes, out_neurons]` f64 membrane
//! matrix (each lane owns a contiguous membrane slice, keeping accumulator
//! locality). Weight traffic is amortized across the whole chunk — the
//! software analogue of the paper's weight-buffered PE clusters.
//!
//! Bit-exactness is preserved by construction. Per accumulator cell
//! `(lane, target)`, additions land in exactly the reference backend's
//! order: the outer loop is ascending `(t, neuron)` — the canonical order
//! every spike source emits (and [`BatchWheel::seal`]'s stable sort keeps
//! per-lane duplicates in emission order) — and within one CSR row every
//! edge hits a distinct target, so edge-major reordering never swaps two
//! additions to the same cell. Logits therefore match [`snn_sim::EventSnn`]
//! bit-for-bit for every chunk size, and the shared event statistics are
//! identical.
//!
//! The engine holds the converted [`SnnModel`] and compiled [`CsrModel`]
//! behind [`Arc`], so clones (one per worker, per shard, per server) share
//! one read-only copy of the weights. Per-run scratch (membrane matrix,
//! wheels, group buffers) lives in an internal pool and is reused across
//! stages and calls instead of reallocated per layer.

use std::sync::{Arc, Mutex};

use snn_sim::{phase, RunStats};
use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnModel, TtfsKernel};

use crate::csr::{CsrModel, CsrStage, SynapseTable};
use crate::wheel::BatchWheel;
use crate::InferenceBackend;

/// Upper bound on the default number of sample lanes integrated together
/// per chunk (explicit [`CsrEngine::with_max_lanes`] may exceed it).
pub const DEFAULT_MAX_LANES: usize = 32;

/// Cache budget for the `[lanes, out_neurons]` f64 membrane matrix used to
/// pick the default lane count: enough lanes to amortize row fetches
/// across the chunk, but never so many that the accumulator spills out of
/// L2 and every scatter becomes a cache miss (the time-major walk revisits
/// the whole matrix once per time slot, so its footprint — not the synapse
/// table, which deduplication keeps cache-resident — is what bounds
/// throughput; measured cliff on the VGG-16 bench geometry around 2 MB).
pub const ACC_BYTES_BUDGET: usize = 256 * 1024;

/// Default chunk width for a compiled stage list: the most lanes whose
/// membrane matrix for the widest weighted layer stays within
/// [`ACC_BYTES_BUDGET`], clamped to `1..=`[`DEFAULT_MAX_LANES`].
pub(crate) fn default_lanes<W>(stages: &[CsrStage<W>]) -> usize {
    let widest = stages
        .iter()
        .filter_map(|s| match s {
            CsrStage::Weighted { bias, .. } => Some(bias.len()),
            _ => None,
        })
        .max()
        .unwrap_or(1)
        .max(1);
    (ACC_BYTES_BUDGET / (widest * std::mem::size_of::<f64>())).clamp(1, DEFAULT_MAX_LANES)
}

/// Resolves one stored edge payload to its f32 synaptic weight inside the
/// integration loop. `f32` resolves to itself (the full-precision path);
/// the quantized path stores packed log codes (`u8`) and resolves them
/// through a per-layer decode LUT carried as the decode context — one
/// indexed load per edge, no multiplier, exactly the paper's PE shape.
pub(crate) trait EdgeWeight: Copy + Send + Sync + 'static {
    /// Per-weighted-stage decode context (e.g. the layer's code LUT).
    type Ctx<'a>: Copy;

    /// The f32 synaptic weight this stored payload represents.
    fn resolve(self, ctx: Self::Ctx<'_>) -> f32;
}

impl EdgeWeight for f32 {
    type Ctx<'a> = ();

    #[inline(always)]
    fn resolve(self, _ctx: ()) -> f32 {
        self
    }
}

/// Reusable per-run buffers: the membrane matrix, the per-lane fire-phase
/// trackers, and the two ping-pong batch wheels. Pooled on the engine so
/// repeat calls skip every per-layer allocation.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// `[lanes, out_neurons]` f64 membrane accumulator.
    acc: Vec<f64>,
    /// Per-lane latest spike time of the current fire phase.
    latest: Vec<u32>,
    /// Per-lane "every membrane fired" flag of the current fire phase.
    all_fired: Vec<bool>,
    /// Spikes entering the current stage.
    wheel_in: BatchWheel,
    /// Spikes produced by the current stage's fire phase / pooling.
    wheel_out: BatchWheel,
}

/// A mutex-guarded stack of [`Scratch`] buffers, shared by every engine
/// kind: a run pops a buffer (or starts fresh), and returns it when done,
/// so back-to-back calls skip the per-layer allocations.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool(Mutex<Vec<Scratch>>);

impl ScratchPool {
    /// Pops a pooled buffer, or starts fresh. The flag says which — a
    /// fresh take on a warm server means the pool ran dry and this run
    /// pays the allocations (surfaced as the `scratch` trace attribute).
    pub(crate) fn take(&self) -> (Scratch, bool) {
        match self.0.lock().expect("scratch pool poisoned").pop() {
            Some(scratch) => (scratch, true),
            None => (Scratch::default(), false),
        }
    }

    pub(crate) fn put(&self, scratch: Scratch) {
        self.0.lock().expect("scratch pool poisoned").push(scratch);
    }
}

/// Batched edge-major CSR + time-wheel executor for a converted
/// [`SnnModel`].
pub struct CsrEngine {
    model: Arc<SnnModel>,
    compiled: Arc<CsrModel>,
    max_lanes: usize,
    scratch: ScratchPool,
}

impl std::fmt::Debug for CsrEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrEngine")
            .field("input_dims", &self.compiled.input_dims)
            .field("total_edges", &self.compiled.total_edges)
            .field("max_lanes", &self.max_lanes)
            .finish()
    }
}

impl Clone for CsrEngine {
    /// Cheap clone: the model and compiled CSR are shared (`Arc`), only the
    /// scratch pool starts empty.
    fn clone(&self) -> Self {
        Self {
            model: Arc::clone(&self.model),
            compiled: Arc::clone(&self.compiled),
            max_lanes: self.max_lanes,
            scratch: ScratchPool::default(),
        }
    }
}

impl CsrEngine {
    /// Compiles `model` for per-sample input dims (`[C, H, W]`).
    ///
    /// Compilation walks the model once and materializes every weighted
    /// layer's synapses (pattern-deduplicated for conv, flat CSR for
    /// dense), so each later inference is a contiguous edge scan per spike
    /// group. The model is cloned once into a shared [`Arc`]; use
    /// [`compile_shared`](Self::compile_shared) to avoid even that copy.
    ///
    /// # Example
    ///
    /// ```
    /// use rand::SeedableRng;
    /// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
    /// use snn_runtime::{CsrEngine, InferenceBackend};
    /// use snn_tensor::Tensor;
    /// use ttfs_core::{convert, Base2Kernel};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let net = Sequential::new(vec![
    ///     Layer::Flatten(Flatten::new()),
    ///     Layer::Dense(DenseLayer::new(9, 4, &mut rng)),
    /// ]);
    /// let model = convert(&net, Base2Kernel::paper_default(), 16)?;
    /// let engine = CsrEngine::compile(&model, &[1, 3, 3])?;
    /// assert_eq!(engine.total_edges(), 9 * 4); // dense 9→4, one edge per weight
    /// let (logits, stats) = engine.run_batch(&Tensor::full(&[2, 1, 3, 3], 0.5))?;
    /// assert_eq!(logits.dims(), &[2, 4]);
    /// assert_eq!(stats.batch, 2);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry.
    pub fn compile(model: &SnnModel, input_dims: &[usize]) -> Result<Self, ConvertError> {
        Self::compile_shared(Arc::new(model.clone()), input_dims)
    }

    /// Compiles an already-shared model without cloning it: the engine (and
    /// every clone of it) holds the same read-only `Arc<SnnModel>` the
    /// caller keeps — one copy of the weights no matter how many engines,
    /// workers or servers reference it.
    ///
    /// # Example
    ///
    /// ```
    /// use std::sync::Arc;
    /// use rand::SeedableRng;
    /// use snn_nn::{DenseLayer, Flatten, Layer, Sequential};
    /// use snn_runtime::CsrEngine;
    /// use ttfs_core::{convert, Base2Kernel};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    /// let net = Sequential::new(vec![
    ///     Layer::Flatten(Flatten::new()),
    ///     Layer::Dense(DenseLayer::new(9, 4, &mut rng)),
    /// ]);
    /// let model = Arc::new(convert(&net, Base2Kernel::paper_default(), 16)?);
    /// let engine = CsrEngine::compile_shared(Arc::clone(&model), &[1, 3, 3])?;
    /// // The engine shares the caller's copy rather than cloning it.
    /// assert!(Arc::ptr_eq(&model, &engine.model_shared()));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry.
    pub fn compile_shared(
        model: Arc<SnnModel>,
        input_dims: &[usize],
    ) -> Result<Self, ConvertError> {
        let compiled = Arc::new(CsrModel::compile(&model, input_dims)?);
        let max_lanes = default_lanes(&compiled.stages);
        Ok(Self {
            model,
            compiled,
            max_lanes,
            scratch: ScratchPool::default(),
        })
    }

    /// Sets the chunk width: how many samples are integrated together as
    /// lanes of one batched traversal (clamped to at least 1). Lane count 1
    /// degenerates to the classic sample-at-a-time walk; results are
    /// bit-identical for every setting.
    #[must_use]
    pub fn with_max_lanes(mut self, lanes: usize) -> Self {
        self.max_lanes = lanes.max(1);
        self
    }

    /// The chunk width (samples integrated together).
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// The compiled CSR representation.
    pub fn compiled(&self) -> &CsrModel {
        &self.compiled
    }

    /// The shared handle to the compiled CSR representation.
    pub fn compiled_shared(&self) -> Arc<CsrModel> {
        Arc::clone(&self.compiled)
    }

    /// The shared handle to the converted model.
    pub fn model_shared(&self) -> Arc<SnnModel> {
        Arc::clone(&self.model)
    }

    /// Total traversed synapses across weighted layers (flat-equivalent).
    pub fn total_edges(&self) -> usize {
        self.compiled.total_edges
    }

    /// Integrates `lanes` samples (`data` is their concatenated flat
    /// pixels) as one edge-major chunk, appending one logits row per lane.
    fn run_chunk(
        &self,
        data: &[f32],
        lanes: usize,
        sample_len: usize,
        stats: &mut RunStats,
        rows: &mut Vec<Vec<f32>>,
    ) -> Result<(), ConvertError> {
        let (mut scratch, reused) = self.scratch.take();
        let mut span = snn_trace::ctx_span("csr.chunk");
        span.attr("lanes", lanes);
        span.attr("scratch", if reused { "reused" } else { "fresh" });
        // The f32 path resolves weights in place: unit decode contexts.
        let ctxs = vec![(); self.model.weighted_layers()];
        let result = run_chunk_stages(
            &self.model,
            &self.compiled.stages,
            &ctxs,
            &mut scratch,
            data,
            lanes,
            sample_len,
            stats,
            rows,
        );
        self.scratch.put(scratch);
        result
    }
}

/// Integrates one chunk of `lanes` samples edge-major over a compiled
/// stage list — the shared inner loop of [`CsrEngine`] and
/// [`crate::QuantEngine`]. `ctxs` holds one [`EdgeWeight`] decode context
/// per weighted stage (unit for f32 weights, the layer's code LUT for
/// packed log codes); everything else — encode, slot grouping, fire
/// phases, pooling bridges, statistics — is identical between the two
/// serving modes, which is what keeps them bit-comparable.
#[allow(clippy::too_many_arguments)] // one call site per engine, flat by design
pub(crate) fn run_chunk_stages<'a, W: EdgeWeight>(
    model: &SnnModel,
    stages: &'a [CsrStage<W>],
    ctxs: &[W::Ctx<'a>],
    scratch: &mut Scratch,
    data: &[f32],
    lanes: usize,
    sample_len: usize,
    stats: &mut RunStats,
    rows: &mut Vec<Vec<f32>>,
) -> Result<(), ConvertError> {
    let kernel = *model.kernel();
    let window = model.window();
    let weighted = model.weighted_layers();
    let Scratch {
        acc,
        latest,
        all_fired,
        wheel_in,
        wheel_out,
    } = scratch;

    // Input coding, neuron-major with lanes inner: every slot comes out
    // grouped by neuron with each lane's spikes in canonical ascending
    // order, so seal() reduces to its O(n) already-sorted check.
    {
        let mut span = snn_trace::ctx_span("encode");
        wheel_in.reset(window, lanes);
        for i in 0..sample_len {
            for lane in 0..lanes {
                let v = data[lane * sample_len + i];
                if let Some(t) = kernel.encode(v, window) {
                    wheel_in.push(t, lane as u32, i as u32, 1.0);
                }
            }
        }
        wheel_in.seal();
        span.attr("spikes", wheel_in.len());
    }

    let mut seen = 0usize;
    let mut produced = false;
    for stage in stages {
        let mut stage_span = snn_trace::ctx_span("stage.exec");
        if stage_span.is_recording() {
            stage_span.attr(
                "kind",
                match stage {
                    CsrStage::Weighted { .. } => "weighted",
                    CsrStage::MaxPool { .. } => "max_pool",
                    CsrStage::AvgPool { .. } => "avg_pool",
                    CsrStage::Flatten => "flatten",
                },
            );
            stage_span.attr("in_spikes", wheel_in.len());
        }
        match stage {
            CsrStage::Weighted { syn, bias } => {
                let out_len = bias.len();
                let ctx = ctxs[seen];
                acc.clear();
                acc.resize(out_len * lanes, 0.0);
                let mut ops = 0usize;
                // Edge-major integration: ascending time slots, equal
                // neurons grouped across lanes, one row fetch per
                // group. f64 accumulate -> one f32 rounding -> f32
                // bias add: identical to the reference GEMM
                // discipline, so the fire-phase quantizer sees the
                // same f32 membranes.
                for t in 0..=window {
                    let slot = wheel_in.slot(t);
                    if slot.is_empty() {
                        continue;
                    }
                    let psp_t = kernel.decode(t);
                    let mut i = 0usize;
                    while i < slot.len() {
                        let neuron = slot[i].neuron;
                        let mut end = i + 1;
                        while end < slot.len() && slot[end].neuron == neuron {
                            end += 1;
                        }
                        let degree = match syn {
                            SynapseTable::Flat(cs) => {
                                let (cols, weights) = cs.row_slices(neuron);
                                if cs.full_rows() {
                                    scatter_full_row(
                                        weights,
                                        ctx,
                                        out_len,
                                        psp_t,
                                        &slot[i..end],
                                        acc,
                                    );
                                } else {
                                    scatter_flat_row(
                                        cols,
                                        weights,
                                        ctx,
                                        out_len,
                                        psp_t,
                                        &slot[i..end],
                                        acc,
                                    );
                                }
                                cols.len()
                            }
                            SynapseTable::Patterned(p) => {
                                let row = p.row_slices(neuron);
                                scatter_pattern_row(&row, ctx, out_len, psp_t, &slot[i..end], acc);
                                row.degree
                            }
                        };
                        ops += degree * (end - i);
                        i = end;
                    }
                }

                let layer_stats = &mut stats.layers[seen];
                layer_stats.input_spikes += wheel_in.len();
                layer_stats.synaptic_ops += ops;
                layer_stats.neurons += out_len * lanes;
                seen += 1;
                if stage_span.is_recording() {
                    stage_span.attr("edges", ops);
                    stage_span.attr("neurons", out_len * lanes);
                }

                if seen < weighted {
                    // Fire phase straight out of the membrane matrix
                    // (identical semantics to `phase::fire_phase`,
                    // minus the sort the wheel makes unnecessary).
                    // Neuron-major with lanes inner, so the produced
                    // slots are pre-grouped like the encode wheel's.
                    wheel_out.reset(window, lanes);
                    latest.clear();
                    latest.resize(lanes, 0);
                    all_fired.clear();
                    all_fired.resize(lanes, true);
                    for o in 0..out_len {
                        let b = bias[o];
                        for lane in 0..lanes {
                            let u = acc[lane * out_len + o] as f32 + b;
                            match kernel.encode(u, window) {
                                Some(t) => {
                                    latest[lane] = latest[lane].max(t);
                                    wheel_out.push(t, lane as u32, o as u32, 1.0);
                                }
                                None => all_fired[lane] = false,
                            }
                        }
                    }
                    layer_stats.output_spikes += wheel_out.len();
                    for lane in 0..lanes {
                        layer_stats.encoder_iterations +=
                            phase::encoder_iteration_count(window, latest[lane], all_fired[lane]);
                    }
                    if stage_span.is_recording() {
                        stage_span.attr("out_spikes", wheel_out.len());
                    }
                    wheel_out.seal();
                    std::mem::swap(wheel_in, wheel_out);
                } else {
                    // Readout: decode every lane's logits row.
                    for lane in 0..lanes {
                        let row: Vec<f32> = acc[lane * out_len..(lane + 1) * out_len]
                            .iter()
                            .zip(bias.iter())
                            .map(|(&u, &b)| u as f32 + b)
                            .collect();
                        rows.push(row);
                    }
                    produced = true;
                }
            }
            CsrStage::MaxPool {
                win,
                stride,
                in_dims,
            } => {
                wheel_out.reset(window, lanes);
                for (lane, train) in wheel_in.lane_trains(in_dims).into_iter().enumerate() {
                    let pooled = phase::max_pool_spikes(&kernel, &train, *win, *stride)?;
                    wheel_out.push_train(lane as u32, &pooled);
                }
                wheel_out.seal();
                std::mem::swap(wheel_in, wheel_out);
            }
            CsrStage::AvgPool {
                win,
                stride,
                in_dims,
            } => {
                wheel_out.reset(window, lanes);
                for (lane, train) in wheel_in.lane_trains(in_dims).into_iter().enumerate() {
                    let pooled = phase::avg_pool_spikes(&train, *win, *stride)?;
                    wheel_out.push_train(lane as u32, &pooled);
                }
                wheel_out.seal();
                std::mem::swap(wheel_in, wheel_out);
            }
            CsrStage::Flatten => {} // flat indices already
        }
    }
    if produced {
        Ok(())
    } else {
        Err(ConvertError::Structure("model produced no readout".into()))
    }
}

/// Streams one synapse row and scatters it into the `[lanes, out]`
/// membrane matrix for every `(lane, psp)` of the current spike group. The
/// row (and its pattern metadata) is fetched once however many lanes share
/// the group — this is where batch amortization of weight traffic happens
/// — while each lane scatters into its own contiguous membrane slice, so
/// accumulator locality matches the sample-at-a-time walk. Every edge
/// targets a distinct output neuron and lanes own disjoint slices, so
/// per-cell accumulation order equals the group's lane/duplicate order,
/// matching the reference backend.
#[inline]
fn scatter_flat_row<W: EdgeWeight>(
    cols: &[u32],
    weights: &[W],
    ctx: W::Ctx<'_>,
    out_len: usize,
    psp_t: f32,
    group: &[crate::wheel::LaneSpike],
    acc: &mut [f64],
) {
    for s in group {
        // The reference computes psp = decode(t) * scale in f32, then
        // widens to f64; replicate exactly.
        let psp = (psp_t * s.scale) as f64;
        let cell = &mut acc[s.lane as usize * out_len..][..out_len];
        for (c, w) in cols.iter().zip(weights.iter()) {
            cell[*c as usize] += w.resolve(ctx) as f64 * psp;
        }
    }
}

/// [`scatter_flat_row`] for a row whose targets are exactly `0..degree`
/// (a dense layer with no structural zeros): the weight slice walks the
/// lane's membrane slice directly — no per-edge target loads, no index
/// arithmetic.
#[inline]
fn scatter_full_row<W: EdgeWeight>(
    weights: &[W],
    ctx: W::Ctx<'_>,
    out_len: usize,
    psp_t: f32,
    group: &[crate::wheel::LaneSpike],
    acc: &mut [f64],
) {
    for s in group {
        let psp = (psp_t * s.scale) as f64;
        let cell = &mut acc[s.lane as usize * out_len..][..out_len];
        for (c, w) in cell[..weights.len()].iter_mut().zip(weights.iter()) {
            *c += w.resolve(ctx) as f64 * psp;
        }
    }
}

/// [`scatter_flat_row`] for a deduplicated conv row: one strided sweep
/// per tap run, reading the run's weights contiguously from the row's
/// channel slice of the repacked weight array — no per-edge metadata at
/// all.
#[inline]
fn scatter_pattern_row<W: EdgeWeight>(
    row: &crate::csr::PatternRow<'_, W>,
    ctx: W::Ctx<'_>,
    out_len: usize,
    psp_t: f32,
    group: &[crate::wheel::LaneSpike],
    acc: &mut [f64],
) {
    let stride = row.oc_stride as usize;
    let tbase = row.t_base as usize;
    for s in group {
        let psp = (psp_t * s.scale) as f64;
        let cell = &mut acc[s.lane as usize * out_len..][..out_len];
        for ((t0, w0), len) in row
            .t_start
            .iter()
            .zip(row.w_start.iter())
            .zip(row.run_len.iter())
        {
            let n = *len as usize;
            let ws = &row.channel_weights[*w0 as usize..*w0 as usize + n];
            let mut t = *t0 as usize + tbase;
            for w in ws {
                cell[t] += w.resolve(ctx) as f64 * psp;
                t += stride;
            }
        }
    }
}

/// Splits a `[N, …]` batch into `max_lanes`-wide chunks and drives `chunk`
/// over each — the shared [`crate::InferenceBackend::run_batch`] shell of
/// [`CsrEngine`] and [`crate::QuantEngine`] (dims validation, stats
/// allocation, logits reassembly).
pub(crate) fn run_batch_chunked(
    model: &SnnModel,
    input_dims: &[usize],
    max_lanes: usize,
    images: &Tensor,
    mut chunk: impl FnMut(
        &[f32],
        usize,
        usize,
        &mut RunStats,
        &mut Vec<Vec<f32>>,
    ) -> Result<(), ConvertError>,
) -> Result<(Tensor, RunStats), ConvertError> {
    let dims = images.dims();
    if dims.len() < 2 {
        return Err(ConvertError::Structure(format!(
            "expected batched input, got {:?}",
            dims
        )));
    }
    if dims[1..] != input_dims[..] {
        return Err(ConvertError::Structure(format!(
            "batch sample dims {:?} do not match compiled dims {:?}",
            &dims[1..],
            input_dims
        )));
    }
    let n = dims[0];
    let sample_len: usize = input_dims.iter().product();
    let mut stats = phase::new_run_stats(model, n);
    let mut rows = Vec::with_capacity(n);
    let mut begin = 0usize;
    while begin < n {
        let lanes = max_lanes.min(n - begin);
        let data = &images.as_slice()[begin * sample_len..(begin + lanes) * sample_len];
        chunk(data, lanes, sample_len, &mut stats, &mut rows)?;
        begin += lanes;
    }
    let logits = phase::logits_tensor(rows)?;
    Ok((logits, stats))
}

impl InferenceBackend for CsrEngine {
    fn name(&self) -> &'static str {
        "csr"
    }

    fn model(&self) -> &SnnModel {
        &self.model
    }

    fn input_dims(&self) -> Option<&[usize]> {
        Some(&self.compiled.input_dims)
    }

    fn run_batch(&self, images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
        run_batch_chunked(
            &self.model,
            &self.compiled.input_dims,
            self.max_lanes,
            images,
            |data, lanes, sample_len, stats, rows| {
                self.run_chunk(data, lanes, sample_len, stats, rows)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{
        ActivationLayer, AvgPool2dLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer,
        Relu, Sequential,
    };
    use snn_sim::EventSnn;
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel};

    fn cnn_model(seed: u64) -> SnnModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn matches_event_backend_bit_for_bit() {
        let model = cnn_model(11);
        let mut rng = StdRng::seed_from_u64(99);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let event = EventSnn::new(&model);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let (a, sa) = event.run_batch(&x).unwrap();
        let (b, sb) = csr.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "same accumulation order");
        assert_eq!(sa, sb, "identical event statistics");
    }

    #[test]
    fn every_chunk_width_is_bit_identical() {
        // The whole point of the batched path: lane count is a pure
        // performance knob. Logits AND event statistics must be invariant.
        let model = cnn_model(17);
        let mut rng = StdRng::seed_from_u64(101);
        let x = snn_tensor::uniform(&[7, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (expect_logits, expect_stats) = EventSnn::new(&model).run_batch(&x).unwrap();
        for lanes in [1usize, 2, 3, 5, 7, 16] {
            let csr = CsrEngine::compile(&model, &[1, 8, 8])
                .unwrap()
                .with_max_lanes(lanes);
            assert_eq!(csr.max_lanes(), lanes);
            let (logits, stats) = csr.run_batch(&x).unwrap();
            assert_eq!(
                logits.as_slice(),
                expect_logits.as_slice(),
                "chunk width {lanes}"
            );
            assert_eq!(stats, expect_stats, "chunk width {lanes}");
        }
    }

    #[test]
    fn scratch_pool_reuse_is_deterministic() {
        // Back-to-back runs on one engine reuse pooled scratch buffers;
        // results must not depend on buffer history.
        let model = cnn_model(18);
        let mut rng = StdRng::seed_from_u64(102);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let x1 = snn_tensor::uniform(&[5, 1, 8, 8], 0.0, 1.0, &mut rng);
        let x2 = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let first = csr.run_batch(&x1).unwrap().0;
        let _ = csr.run_batch(&x2).unwrap();
        let again = csr.run_batch(&x1).unwrap().0;
        assert_eq!(first.as_slice(), again.as_slice());
    }

    #[test]
    fn clone_shares_model_and_compiled() {
        let model = Arc::new(cnn_model(19));
        let csr = CsrEngine::compile_shared(Arc::clone(&model), &[1, 8, 8]).unwrap();
        let dup = csr.clone();
        assert!(Arc::ptr_eq(&csr.model_shared(), &dup.model_shared()));
        assert!(Arc::ptr_eq(&csr.compiled_shared(), &dup.compiled_shared()));
        assert!(Arc::ptr_eq(&model, &csr.model_shared()));
        let mut rng = StdRng::seed_from_u64(103);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (a, _) = csr.run_batch(&x).unwrap();
        let (b, _) = dup.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zeroed_weights_stay_bit_identical_to_event() {
        // Exact-zero weights are *retained* by both compilers (conv
        // patterns and dense rows): `+= 0·psp` is bit-neutral on the
        // accumulator, and the reference backend charges synaptic ops for
        // every surviving tap regardless of weight value — so both logits
        // AND RunStats must still match for pruned models.
        let mut model = cnn_model(16);
        let ttfs_core::SnnLayer::Conv { weight, .. } = &mut model.layers_mut()[0] else {
            panic!("layer 0 is conv");
        };
        let wd = weight.as_mut_slice();
        wd[0] = 0.0;
        wd[5] = 0.0;
        wd[17] = 0.0;
        let ttfs_core::SnnLayer::Dense { weight, .. } = &mut model.layers_mut()[3] else {
            panic!("layer 3 is dense");
        };
        let wd = weight.as_mut_slice();
        wd[3] = 0.0;
        wd[40] = 0.0;
        let mut rng = StdRng::seed_from_u64(104);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (a, sa) = EventSnn::new(&model).run_batch(&x).unwrap();
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let (b, sb) = csr.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(sa, sb, "synaptic ops must count zero-weight taps too");
    }

    #[test]
    fn matches_reference_forward() {
        let model = cnn_model(12);
        let mut rng = StdRng::seed_from_u64(100);
        let x = snn_tensor::uniform(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let (logits, _) = csr.run_batch(&x).unwrap();
        let reference = model.reference_forward(&x).unwrap();
        assert!(logits.allclose(&reference, 1e-4 * (1.0 + reference.abs_max())));
    }

    #[test]
    fn avg_pool_path_matches_event() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 3, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::AvgPool2d(AvgPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 3 * 3, 4, &mut rng)),
        ]);
        let model = convert(&net, Base2Kernel::paper_default(), 24).unwrap();
        let x = snn_tensor::uniform(&[2, 2, 6, 6], 0.0, 1.0, &mut rng);
        let event = EventSnn::new(&model);
        let csr = CsrEngine::compile(&model, &[2, 6, 6]).unwrap();
        let (a, _) = event.run_batch(&x).unwrap();
        let (b, _) = csr.run_batch(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zero_input_yields_bias_logits() {
        let model = cnn_model(14);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let x = Tensor::zeros(&[1, 1, 8, 8]);
        let (logits, stats) = csr.run_batch(&x).unwrap();
        assert_eq!(stats.layers[0].input_spikes, 0);
        let reference = model.reference_forward(&x).unwrap();
        assert!(logits.allclose(&reference, 1e-4));
    }

    #[test]
    fn rejects_mismatched_batch_dims() {
        let model = cnn_model(15);
        let csr = CsrEngine::compile(&model, &[1, 8, 8]).unwrap();
        let x = Tensor::zeros(&[1, 1, 6, 6]);
        assert!(csr.run_batch(&x).is_err());
        let flat = Tensor::zeros(&[4]);
        assert!(csr.run_batch(&flat).is_err());
    }
}
