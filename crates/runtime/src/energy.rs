//! Bridge from runtime event statistics to the `snn-hw` processor model —
//! the fast path produces the same hardware energy/throughput reports as
//! the reference simulator because both feed the same [`RunStats`]
//! counters in.
//!
//! The quantized serving path rides the same bridge: a
//! [`crate::QuantEngine`] run emits the shared counters (its synaptic-op
//! accounting matches the reference exactly, zero codes included), so
//! [`quant_energy_report`] prices the measured quantized workload on the
//! processor model — pair it with [`crate::QuantCsrModel::footprint`]'s
//! packed-code bytes and the bench's top-1 agreement for the full
//! accuracy/energy/bytes trade-off.

use snn_hw::{
    LayerGeometry, LayerKind, NetworkReport, Processor, ProcessorConfig, WorkloadProfile,
};
use snn_sim::RunStats;
use ttfs_core::{ConvertError, SnnLayer, SnnModel};

use crate::{InferenceBackend, QuantEngine};

/// Derives the hardware layer geometry (neuron/weight/MAC counts) of every
/// weighted layer of `model` for per-sample input dims.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
/// model.
pub fn layer_geometry(
    model: &SnnModel,
    input_dims: &[usize],
) -> Result<Vec<LayerGeometry>, ConvertError> {
    let trace = model.shape_trace(input_dims)?;
    let mut layers = Vec::new();
    let mut conv_idx = 0usize;
    let mut dense_idx = 0usize;
    for (i, layer) in model.layers().iter().enumerate() {
        let in_dims = &trace[i];
        let out_dims = &trace[i + 1];
        let in_neurons: usize = in_dims.iter().product();
        let out_neurons: usize = out_dims.iter().product();
        match layer {
            SnnLayer::Conv { spec, .. } => {
                conv_idx += 1;
                let weights = spec.out_channels * spec.in_channels * spec.kernel * spec.kernel;
                layers.push(LayerGeometry {
                    name: format!("conv{conv_idx}"),
                    kind: LayerKind::Conv,
                    in_neurons,
                    out_neurons,
                    weights,
                    macs: out_neurons * spec.in_channels * spec.kernel * spec.kernel,
                });
            }
            SnnLayer::Dense { weight, .. } => {
                dense_idx += 1;
                let weights = weight.len();
                layers.push(LayerGeometry {
                    name: format!("fc{dense_idx}"),
                    kind: LayerKind::Dense,
                    in_neurons,
                    out_neurons,
                    weights,
                    macs: weights,
                });
            }
            _ => {}
        }
    }
    Ok(layers)
}

/// Converts measured per-layer event statistics into the spike-density
/// profile the processor model charges energy to.
///
/// Densities are per-sample averages: `input_spikes / (batch ×
/// in_neurons)` entering layer 0, then each layer's measured output
/// sparsity.
pub fn measured_profile(stats: &RunStats, input_neurons: usize) -> WorkloadProfile {
    let denom = (stats.batch.max(1) * input_neurons.max(1)) as f32;
    let input_sparsity = stats
        .layers
        .first()
        .map(|l| l.input_spikes as f32 / denom)
        .unwrap_or(0.0);
    let layer_sparsity: Vec<f32> = stats.layers.iter().map(|l| l.output_sparsity()).collect();
    WorkloadProfile::from_measurements(input_sparsity, layer_sparsity)
}

/// Runs the hardware model on the measured workload of one batched run:
/// geometry from the model, spike densities from the runtime's event
/// counters. The resulting per-image energy/fps report is the same artifact
/// `snn-hw` produces for the paper's Table 4 — now driven by the fast path.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
/// model.
pub fn energy_report(
    processor: &Processor,
    model: &SnnModel,
    stats: &RunStats,
    input_dims: &[usize],
) -> Result<NetworkReport, ConvertError> {
    let mut span = snn_trace::ctx_span("energy.report");
    let geometry = layer_geometry(model, input_dims)?;
    let input_neurons: usize = input_dims.iter().product();
    let profile = measured_profile(stats, input_neurons);
    let report = processor.run_network(&geometry, &profile);
    if span.is_recording() {
        span.attr("layers", geometry.len());
        span.attr("energy_per_image_uj", report.energy_per_image_uj);
    }
    Ok(report)
}

/// Reusable per-batch energy pricer for the streaming serving path.
///
/// [`energy_report`] re-derives the layer geometry on every call —
/// fine for one post-hoc report, too heavy to sit behind every flushed
/// batch. `EnergyPricer` does the geometry walk once at attach time
/// and then prices each batch's measured [`RunStats`] in O(layers):
/// [`measured_profile`] normalizes the counters per sample, so the
/// returned figure is already **µJ per image** regardless of how many
/// requests rode in the batch.
#[derive(Debug, Clone)]
pub struct EnergyPricer {
    geometry: Vec<LayerGeometry>,
    input_neurons: usize,
    processor: Processor,
}

impl EnergyPricer {
    /// Builds a pricer for `model` at per-sample `input_dims`, on the
    /// paper's proposed (log-PE) processor configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit
    /// the model.
    pub fn new(model: &SnnModel, input_dims: &[usize]) -> Result<Self, ConvertError> {
        Ok(Self {
            geometry: layer_geometry(model, input_dims)?,
            input_neurons: input_dims.iter().product(),
            processor: Processor::new(ProcessorConfig::proposed()),
        })
    }

    /// Prices one executed batch's measured counters: µJ per image.
    pub fn price_per_image_uj(&self, stats: &RunStats) -> f64 {
        let profile = measured_profile(stats, self.input_neurons);
        self.processor
            .run_network(&self.geometry, &profile)
            .energy_per_image_uj
    }
}

/// [`energy_report`] for the quantized serving path: geometry and input
/// dims come from the compiled [`QuantEngine`], spike densities from its
/// measured `stats` — typically priced on the *proposed* (log-PE)
/// processor configuration, since packed 5-bit codes are exactly the
/// weight memory that processor buffers.
///
/// # Errors
///
/// Returns [`ConvertError::Structure`] if the engine's compiled dims do
/// not fit its model (cannot happen for an engine built by
/// [`QuantEngine::compile`]).
pub fn quant_energy_report(
    processor: &Processor,
    engine: &QuantEngine,
    stats: &RunStats,
) -> Result<NetworkReport, ConvertError> {
    energy_report(processor, engine.model(), stats, engine.input_dims())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_hw::ProcessorConfig;
    use snn_nn::{
        ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, MaxPool2dLayer, Relu, Sequential,
    };
    use snn_sim::EventSnn;
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel};

    fn model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(41);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(1, 4, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::MaxPool2d(MaxPool2dLayer::new(2, 2)),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(4 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn geometry_matches_model_shapes() {
        let m = model();
        let g = layer_geometry(&m, &[1, 8, 8]).unwrap();
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].in_neurons, 64);
        assert_eq!(g[0].out_neurons, 4 * 8 * 8);
        assert_eq!(g[0].weights, 4 * 9);
        assert_eq!(g[0].macs, 4 * 8 * 8 * 9);
        assert_eq!(g[1].in_neurons, 64);
        assert_eq!(g[1].out_neurons, 5);
        assert_eq!(g[1].macs, 64 * 5);
    }

    #[test]
    fn measured_profile_densities_are_fractions() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(42);
        let x = snn_tensor::uniform(&[3, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (_, stats) = EventSnn::new(&m).run(&x).unwrap();
        let p = measured_profile(&stats, 64);
        assert!(p.input_sparsity > 0.0 && p.input_sparsity <= 1.0);
        assert_eq!(p.layer_sparsity.len(), 2);
        for &s in &p.layer_sparsity {
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn energy_report_from_fast_path_counts() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(43);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let csr = crate::CsrEngine::compile(&m, &[1, 8, 8]).unwrap();
        let (_, stats) = crate::InferenceBackend::run_batch(&csr, &x).unwrap();
        let processor = Processor::new(ProcessorConfig::proposed());
        let report = energy_report(&processor, &m, &stats, &[1, 8, 8]).unwrap();
        assert!(report.energy_per_image_uj > 0.0);
        assert!(report.fps > 0.0);
        assert_eq!(report.layers.len(), 2);
    }

    #[test]
    fn quantized_path_prices_like_event_on_quantized_weights() {
        // The quantized engine's measured counters must drive the
        // processor model to the same report as the reference simulator
        // over the quantize_tensor'd model — the stats are bit-identical,
        // so the energy bridge cannot tell the two apart.
        let m = model();
        let config = crate::QuantConfig::default();
        let (qm, _) = crate::quantize_model(&m, config.base, config.bits).unwrap();
        let mut rng = StdRng::seed_from_u64(45);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (_, ref_stats) = EventSnn::new(&qm).run(&x).unwrap();
        let engine = crate::QuantEngine::compile(&m, &[1, 8, 8], config).unwrap();
        let (_, q_stats) = crate::InferenceBackend::run_batch(&engine, &x).unwrap();
        let processor = Processor::new(ProcessorConfig::proposed());
        let a = quant_energy_report(&processor, &engine, &q_stats).unwrap();
        let b = energy_report(&processor, &qm, &ref_stats, &[1, 8, 8]).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert!((a.energy_per_image_uj - b.energy_per_image_uj).abs() < 1e-9);
        assert!(a.energy_per_image_uj > 0.0 && a.fps > 0.0);
    }

    #[test]
    fn fast_and_reference_paths_agree_on_energy() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(44);
        let x = snn_tensor::uniform(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let (_, ref_stats) = EventSnn::new(&m).run(&x).unwrap();
        let csr = crate::CsrEngine::compile(&m, &[1, 8, 8]).unwrap();
        let (_, csr_stats) = crate::InferenceBackend::run_batch(&csr, &x).unwrap();
        let processor = Processor::new(ProcessorConfig::proposed());
        let a = energy_report(&processor, &m, &ref_stats, &[1, 8, 8]).unwrap();
        let b = energy_report(&processor, &m, &csr_stats, &[1, 8, 8]).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert!((a.energy_per_image_uj - b.energy_per_image_uj).abs() < 1e-9);
    }
}
