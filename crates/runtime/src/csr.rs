//! CSR compilation of a converted [`SnnModel`].
//!
//! The reference backend re-derives every spike's receptive field from conv
//! geometry on each integration step — branchy index arithmetic in the
//! innermost loop. Compilation walks the model once per deployment and
//! materializes, for every weighted layer, the **outgoing synapse list of
//! each input neuron** (`row_ptr` / `col` / `weight`): the integration
//! phase then reduces to one contiguous edge scan per spike. Exact-zero
//! weights are kept in both layer kinds — the reference backend charges
//! synaptic ops for every surviving tap regardless of weight value, so
//! dropping them would skew `RunStats` (and the energy model) for pruned
//! models, and a `+= 0·psp` is bit-neutral on the accumulator.
//!
//! Conv layers do **not** store one edge list per input pixel. A pixel's
//! outgoing synapse *structure* is fully determined by its spatial
//! *border class* — which kernel taps survive clipping against the padded
//! input boundary and the stride grid — and is the same for every input
//! channel; only the targets shift by a per-pixel base and the weights by
//! a per-channel base. The compiler therefore emits one canonical tap
//! pattern per border class plus one repacked copy of the layer's weights
//! ([`ConvPatterns`]) and a per-pixel `(pattern_id, target_base,
//! weight_base)` map, cutting conv CSR storage roughly `C·H·W`-fold (the
//! shared weight-buffer idea of the paper's PE clusters: one resident
//! copy of the kernel weights serves every spatial position). Dense layers
//! keep the flat per-neuron CSR ([`CsrSynapses`]); [`SynapseTable`]
//! unifies the two behind one row-oriented API.
//!
//! Pooling and flatten layers stay event-domain operations (max pooling is
//! not linear, so it cannot be folded into synapse weights); they reuse the
//! exact `snn_sim::phase` primitives so the fast path cannot diverge from
//! the reference semantics.

use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnLayer, SnnModel};

/// Per-input-neuron adjacency of one weighted layer, in compressed sparse
/// row form (used for dense layers, where every row is genuinely unique).
///
/// Generic over the stored edge scalar `W`: `f32` for the full-precision
/// serving path, `u8` packed log codes for the quantized path
/// ([`crate::QuantCsrModel`]) — the structure (row pointers, targets,
/// traversal order) is identical either way, only the per-edge payload
/// width changes.
#[derive(Debug, Clone)]
pub struct CsrSynapses<W = f32> {
    /// `row_ptr[j]..row_ptr[j + 1]` indexes the edges of input neuron `j`.
    row_ptr: Vec<u32>,
    /// Target (output-neuron) index per edge.
    col: Vec<u32>,
    /// Synapse weight (or packed code) per edge.
    weight: Vec<W>,
    /// Every row's targets are exactly `0..degree` in order (true for a
    /// dense layer with no structural zeros): the integration loop can
    /// walk the weight slice directly and skip the per-edge target loads.
    full_rows: bool,
}

impl<W: Copy> CsrSynapses<W> {
    /// Number of input neurons (rows).
    pub fn in_neurons(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored (non-zero) synapses.
    pub fn edges(&self) -> usize {
        self.col.len()
    }

    /// The `(target, weight)` edge list of input neuron `j`.
    #[inline]
    pub fn edges_of(&self, j: u32) -> EdgeIter<'_, W> {
        let (col, weight) = self.row_slices(j);
        EdgeIter::Flat {
            col: col.iter(),
            weight: weight.iter(),
        }
    }

    /// Raw `(targets, weights)` slices of input neuron `j` for the batched
    /// scatter loop.
    #[inline]
    pub fn row_slices(&self, j: u32) -> (&[u32], &[W]) {
        let lo = self.row_ptr[j as usize] as usize;
        let hi = self.row_ptr[j as usize + 1] as usize;
        (&self.col[lo..hi], &self.weight[lo..hi])
    }

    /// Edge count of input neuron `j`.
    #[inline]
    pub fn degree(&self, j: u32) -> usize {
        (self.row_ptr[j as usize + 1] - self.row_ptr[j as usize]) as usize
    }

    /// Bytes of backing storage.
    pub fn stored_bytes(&self) -> usize {
        self.row_ptr.len() * 4 + self.col.len() * 4 + self.weight_bytes()
    }

    /// Bytes of the per-edge weight (or packed code) array alone.
    pub fn weight_bytes(&self) -> usize {
        self.weight.len() * std::mem::size_of::<W>()
    }

    /// Whether every row's targets are exactly `0..degree` in order.
    pub fn full_rows(&self) -> bool {
        self.full_rows
    }

    /// Re-stores every edge payload through `f`, preserving the structure
    /// (row pointers, targets, edge order) exactly — the bridge from the
    /// compiled f32 table to its packed-code twin.
    pub fn map_weights<V: Copy>(&self, f: impl FnMut(W) -> V) -> CsrSynapses<V> {
        CsrSynapses {
            row_ptr: self.row_ptr.clone(),
            col: self.col.clone(),
            weight: self.weight.iter().copied().map(f).collect(),
            full_rows: self.full_rows,
        }
    }

    fn from_rows(rows: Vec<Vec<(u32, W)>>) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut col = Vec::with_capacity(total);
        let mut weight = Vec::with_capacity(total);
        let mut full_rows = true;
        row_ptr.push(0u32);
        for row in rows {
            for (i, (c, w)) in row.into_iter().enumerate() {
                full_rows &= c as usize == i;
                col.push(c);
                weight.push(w);
            }
            row_ptr.push(col.len() as u32);
        }
        Self {
            row_ptr,
            col,
            weight,
            full_rows,
        }
    }
}

/// Pattern-deduplicated conv adjacency: one canonical tap pattern per
/// spatial **border class** — shared by every input channel — plus one
/// repacked copy of the layer's weights and a per-pixel `(pattern_id,
/// target_base, weight_base)` map.
///
/// A pattern is a list of **runs**, one per surviving kernel tap
/// `(ki, kj)`: run `r` covers all `OC` output channels at once, with
/// targets `t_start[r] + oc·oh·ow` (absolute target additionally offset by
/// the row's `t_base`) and weights read contiguously at
/// `w_start[r] + oc` from the channel's slice of the repacked
/// `[ci][ki][kj][oc]` weight array (`row_wbase = ci·k²·OC`). Nothing in a
/// run depends on the pixel or the channel, so a layer needs only ≈
/// (per-axis border classes)² patterns of ≤ `k²` runs each, and the
/// weights are stored exactly once — while the integration loop walks
/// each run without loading any per-edge index.
///
/// Expanded edge order (run-major, output channel inner) equals the flat
/// per-pixel compiler's and the reference integration loop's (ascending
/// kernel row, kernel column, then output channel). Structurally zero
/// weights are **kept** (as in the dense compiler): channels share one
/// tap pattern, a `+= 0·psp` is bit-neutral on the accumulator, and the
/// reference backend charges synaptic ops for every surviving tap
/// regardless of weight value — so retaining them keeps `RunStats`
/// identical to `EventSnn` even for models with exact-zero weights.
#[derive(Debug, Clone)]
pub struct ConvPatterns<W = f32> {
    /// `pat_ptr[p]..pat_ptr[p + 1]` indexes the runs of pattern `p`.
    pat_ptr: Vec<u32>,
    /// Relative first target of each run: `dy·ow + dx`.
    t_start: Vec<u32>,
    /// First weight index of each run: `(ki·k + kj)·OC`.
    w_start: Vec<u32>,
    /// Edges per run (`OC` — kept explicit so degree stays a table walk).
    run_len: Vec<u32>,
    /// Target stride between a run's consecutive edges: `oh·ow`.
    oc_stride: u32,
    /// Repacked weights (or packed codes) `[ci][ki][kj][oc]` — one copy
    /// per layer, read contiguously run by run within each channel slice.
    weight: Vec<W>,
    /// Weights per channel slice (`k²·OC`).
    ch_stride: usize,
    /// Pattern id of each input pixel row.
    row_pattern: Vec<u32>,
    /// Base target (`oy₀·ow + ox₀`) of each input pixel row.
    row_tbase: Vec<u32>,
    /// Base weight index (`ci·k²·OC`) of each input pixel row.
    row_wbase: Vec<u32>,
    /// Edges per pattern (`Σ run_len` over the pattern's runs).
    pat_degree: Vec<u32>,
    /// Total traversed (logical) edges: `Σ_rows degree(row)`.
    logical_edges: usize,
}

impl<W: Copy> ConvPatterns<W> {
    /// Number of input neurons (rows).
    pub fn in_neurons(&self) -> usize {
        self.row_pattern.len()
    }

    /// Number of canonical border-class patterns (channel-independent).
    pub fn patterns(&self) -> usize {
        self.pat_ptr.len() - 1
    }

    /// Physically stored edge-metadata records (runs, after
    /// deduplication).
    pub fn stored_edges(&self) -> usize {
        self.t_start.len()
    }

    /// Logical edges: what a flat per-pixel CSR would store, and what the
    /// integration loop actually traverses.
    pub fn logical_edges(&self) -> usize {
        self.logical_edges
    }

    /// The `(target, weight)` edge list of input neuron `j` (absolute
    /// targets; identical to the flat CSR row, with structural zeros
    /// retained).
    #[inline]
    pub fn edges_of(&self, j: u32) -> EdgeIter<'_, W> {
        EdgeIter::Runs {
            row: self.row_slices(j),
            run: 0,
            i: 0,
        }
    }

    /// The raw run view of input neuron `j` for the batched scatter loop.
    #[inline]
    pub fn row_slices(&self, j: u32) -> PatternRow<'_, W> {
        let p = self.row_pattern[j as usize] as usize;
        let lo = self.pat_ptr[p] as usize;
        let hi = self.pat_ptr[p + 1] as usize;
        let wbase = self.row_wbase[j as usize] as usize;
        PatternRow {
            t_start: &self.t_start[lo..hi],
            w_start: &self.w_start[lo..hi],
            run_len: &self.run_len[lo..hi],
            oc_stride: self.oc_stride,
            t_base: self.row_tbase[j as usize],
            channel_weights: &self.weight[wbase..wbase + self.ch_stride],
            degree: self.pat_degree[p] as usize,
        }
    }

    /// Edge count of input neuron `j`.
    #[inline]
    pub fn degree(&self, j: u32) -> usize {
        self.pat_degree[self.row_pattern[j as usize] as usize] as usize
    }

    /// Bytes of backing storage (pattern table, repacked weights, per-pixel
    /// map).
    pub fn stored_bytes(&self) -> usize {
        (self.pat_ptr.len()
            + self.t_start.len()
            + self.w_start.len()
            + self.run_len.len()
            + self.row_pattern.len()
            + self.row_tbase.len()
            + self.row_wbase.len()
            + self.pat_degree.len())
            * 4
            + self.weight_bytes()
    }

    /// Bytes of the repacked weight (or packed code) array alone.
    pub fn weight_bytes(&self) -> usize {
        self.weight.len() * std::mem::size_of::<W>()
    }

    /// Bytes a flat per-pixel CSR of the same layer would occupy.
    pub fn flat_bytes(&self) -> usize {
        (self.in_neurons() + 1) * 4 + self.logical_edges * 8
    }

    /// Re-stores the repacked weight copy through `f`, preserving the
    /// pattern table, per-pixel map and weight-array layout exactly.
    pub fn map_weights<V: Copy>(&self, f: impl FnMut(W) -> V) -> ConvPatterns<V> {
        ConvPatterns {
            pat_ptr: self.pat_ptr.clone(),
            t_start: self.t_start.clone(),
            w_start: self.w_start.clone(),
            run_len: self.run_len.clone(),
            oc_stride: self.oc_stride,
            weight: self.weight.iter().copied().map(f).collect(),
            ch_stride: self.ch_stride,
            row_pattern: self.row_pattern.clone(),
            row_tbase: self.row_tbase.clone(),
            row_wbase: self.row_wbase.clone(),
            pat_degree: self.pat_degree.clone(),
            logical_edges: self.logical_edges,
        }
    }
}

/// One input pixel's view into a [`ConvPatterns`] table: the shared tap
/// runs plus the pixel's target base and channel weight slice.
#[derive(Debug, Clone, Copy)]
pub struct PatternRow<'a, W = f32> {
    /// Relative first target per run.
    pub t_start: &'a [u32],
    /// First weight index per run, into `channel_weights`.
    pub w_start: &'a [u32],
    /// Edges per run.
    pub run_len: &'a [u32],
    /// Target stride between a run's consecutive edges.
    pub oc_stride: u32,
    /// Added to every relative target.
    pub t_base: u32,
    /// The row's channel slice of the repacked weight array.
    pub channel_weights: &'a [W],
    /// Total edges of the row (`Σ run_len`).
    pub degree: usize,
}

/// Iterator over the `(absolute_target, weight)` edges of one row of a
/// [`SynapseTable`].
#[derive(Debug)]
pub enum EdgeIter<'a, W = f32> {
    /// Flat CSR row: explicit target + weight per edge.
    Flat {
        /// Remaining targets.
        col: std::slice::Iter<'a, u32>,
        /// Remaining weights.
        weight: std::slice::Iter<'a, W>,
    },
    /// Pattern row: expand the runs on the fly.
    Runs {
        /// The run view being expanded.
        row: PatternRow<'a, W>,
        /// Current run index.
        run: usize,
        /// Position within the current run.
        i: u32,
    },
}

impl<W: Copy> Iterator for EdgeIter<'_, W> {
    type Item = (u32, W);

    #[inline]
    fn next(&mut self) -> Option<(u32, W)> {
        match self {
            Self::Flat { col, weight } => Some((*col.next()?, *weight.next()?)),
            Self::Runs { row, run, i } => loop {
                if *run >= row.run_len.len() {
                    return None;
                }
                if *i < row.run_len[*run] {
                    let t = row.t_start[*run] + *i * row.oc_stride + row.t_base;
                    let w = row.channel_weights[(row.w_start[*run] + *i) as usize];
                    *i += 1;
                    return Some((t, w));
                }
                *run += 1;
                *i = 0;
            },
        }
    }
}

/// The synapse storage of one weighted stage: flat CSR for dense layers,
/// pattern-deduplicated for conv layers. Both expose the same row-oriented
/// view — `edges_of(j)` yields identical `(target, weight)` sequences either
/// way; only the memory footprint differs.
#[derive(Debug, Clone)]
pub enum SynapseTable<W = f32> {
    /// One explicit edge list per input neuron.
    Flat(CsrSynapses<W>),
    /// Shared per-(channel, border-class) patterns + per-pixel offsets.
    Patterned(ConvPatterns<W>),
}

impl<W: Copy> SynapseTable<W> {
    /// Number of input neurons (rows).
    pub fn in_neurons(&self) -> usize {
        match self {
            Self::Flat(s) => s.in_neurons(),
            Self::Patterned(p) => p.in_neurons(),
        }
    }

    /// Logical (traversed) edges across all rows.
    pub fn logical_edges(&self) -> usize {
        match self {
            Self::Flat(s) => s.edges(),
            Self::Patterned(p) => p.logical_edges(),
        }
    }

    /// Physically stored edges.
    pub fn stored_edges(&self) -> usize {
        match self {
            Self::Flat(s) => s.edges(),
            Self::Patterned(p) => p.stored_edges(),
        }
    }

    /// Bytes of backing storage.
    pub fn stored_bytes(&self) -> usize {
        match self {
            Self::Flat(s) => s.stored_bytes(),
            Self::Patterned(p) => p.stored_bytes(),
        }
    }

    /// Bytes of the stored weight (or packed code) array alone.
    pub fn weight_bytes(&self) -> usize {
        match self {
            Self::Flat(s) => s.weight_bytes(),
            Self::Patterned(p) => p.weight_bytes(),
        }
    }

    /// The `(target, weight)` edge list of input neuron `j`.
    #[inline]
    pub fn edges_of(&self, j: u32) -> EdgeIter<'_, W> {
        match self {
            Self::Flat(s) => s.edges_of(j),
            Self::Patterned(p) => p.edges_of(j),
        }
    }

    /// Edge count of input neuron `j`.
    #[inline]
    pub fn degree(&self, j: u32) -> usize {
        match self {
            Self::Flat(s) => s.degree(j),
            Self::Patterned(p) => p.degree(j),
        }
    }

    /// Re-stores every edge payload through `f`, preserving structure and
    /// traversal order exactly (see [`CsrSynapses::map_weights`]).
    pub fn map_weights<V: Copy>(&self, f: impl FnMut(W) -> V) -> SynapseTable<V> {
        match self {
            Self::Flat(s) => SynapseTable::Flat(s.map_weights(f)),
            Self::Patterned(p) => SynapseTable::Patterned(p.map_weights(f)),
        }
    }
}

/// One compiled stage of the CSR pipeline.
// Weighted dominates the enum size, but stages are few (one per layer)
// and always heap-backed — boxing would only add an indirection to the
// hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CsrStage<W = f32> {
    /// A weighted layer: synapse table + per-output bias, followed by a
    /// fire phase unless it is the readout. Integration accumulates in
    /// `f64` and rounds once to `f32` before the f32 bias add — the exact
    /// summation discipline of the reference GEMM, so membrane voltages
    /// (and therefore spike times) match `reference_forward` bit-for-bit.
    Weighted {
        /// Synapse adjacency (flat or pattern-deduplicated).
        syn: SynapseTable<W>,
        /// Per-output-neuron bias (broadcast over spatial positions for
        /// conv). Biases stay f32 in every serving mode: the hardware
        /// accumulates them post-LUT, outside the log-coded datapath.
        bias: Vec<f32>,
    },
    /// Event-domain max pooling (not linear — cannot be CSR-folded).
    MaxPool {
        /// Pool window.
        win: usize,
        /// Pool stride.
        stride: usize,
        /// Input grid dims `[C, H, W]`.
        in_dims: Vec<usize>,
    },
    /// Event-domain average pooling.
    AvgPool {
        /// Pool window.
        win: usize,
        /// Pool stride.
        stride: usize,
        /// Input grid dims `[C, H, W]`.
        in_dims: Vec<usize>,
    },
    /// Flatten: identity on flat neuron indices.
    Flatten,
}

impl<W: Copy> CsrStage<W> {
    /// Re-stores a weighted stage's edge payloads through `f` (structural
    /// stages are cloned unchanged) — how the quantized compiler turns the
    /// f32 stage list into its packed-code twin without recompiling the
    /// pattern tables.
    pub fn map_weights<V: Copy>(&self, f: impl FnMut(W) -> V) -> CsrStage<V> {
        match self {
            Self::Weighted { syn, bias } => CsrStage::Weighted {
                syn: syn.map_weights(f),
                bias: bias.clone(),
            },
            Self::MaxPool {
                win,
                stride,
                in_dims,
            } => CsrStage::MaxPool {
                win: *win,
                stride: *stride,
                in_dims: in_dims.clone(),
            },
            Self::AvgPool {
                win,
                stride,
                in_dims,
            } => CsrStage::AvgPool {
                win: *win,
                stride: *stride,
                in_dims: in_dims.clone(),
            },
            Self::Flatten => CsrStage::Flatten,
        }
    }
}

/// Memory accounting of a compiled [`CsrModel`]: what the deduplicated
/// representation stores versus what a flat per-pixel CSR would.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CsrFootprint {
    /// Edges the integration loop traverses (== flat CSR edge count).
    pub logical_edges: usize,
    /// Edges physically materialized after pattern deduplication.
    pub stored_edges: usize,
    /// Bytes of all synapse storage (patterns, offsets, row maps).
    pub stored_bytes: usize,
    /// Bytes of the stored weight payloads alone — f32 weights on the
    /// full-precision path, packed log codes on the quantized path. This
    /// is the number the two serving modes are compared on: the index
    /// structure is shared, only the payload width shrinks.
    pub weight_bytes: usize,
    /// Bytes a fully flat (f32, per-pixel) CSR of the same model would
    /// occupy.
    pub flat_bytes: usize,
    /// Logical edges of conv (patterned) stages only.
    pub conv_logical_edges: usize,
    /// Stored edges of conv (patterned) stages only.
    pub conv_stored_edges: usize,
    /// Canonical `(channel, border-class)` patterns across conv stages.
    pub patterns: usize,
}

impl CsrFootprint {
    /// Conv edge-storage reduction factor achieved by deduplication
    /// (`conv_logical_edges / conv_stored_edges`; 1.0 when no conv stage).
    pub fn conv_dedup_ratio(&self) -> f64 {
        if self.conv_stored_edges == 0 {
            1.0
        } else {
            self.conv_logical_edges as f64 / self.conv_stored_edges as f64
        }
    }
}

/// The compiled model: stages in execution order, for one fixed input
/// geometry.
#[derive(Debug, Clone)]
pub struct CsrModel {
    /// Compiled stages.
    pub stages: Vec<CsrStage>,
    /// Per-sample input dims the model was compiled for.
    pub input_dims: Vec<usize>,
    /// Total traversed synapses across weighted stages (flat-equivalent
    /// edge count; the physically stored count is in [`CsrModel::footprint`]).
    pub total_edges: usize,
}

fn compile_dense(weight: &Tensor) -> CsrSynapses {
    let out_f = weight.dims()[0];
    let in_f = weight.dims()[1];
    let wd = weight.as_slice();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); in_f];
    // Row-major [out, in]: walk outputs outer so each row's edge list ends
    // up sorted by target. Exact-zero weights are kept, like the conv
    // compiler: the reference backend charges `out_f` synaptic ops per
    // spike regardless of weight value, so dropping them would skew
    // RunStats (and thus the energy model) for pruned models — and
    // retention makes every row full, enabling the index-free scatter.
    for o in 0..out_f {
        for (j, row) in rows.iter_mut().enumerate() {
            row.push((o as u32, wd[o * in_f + j]));
        }
    }
    CsrSynapses::from_rows(rows)
}

/// Per-coordinate border class along one spatial axis: which kernel taps
/// survive clipping for input coordinate `i`, as `(k_min, count, out_min)`
/// — tap indices are `k_min, k_min + stride, …` (ascending, which walks
/// output coordinates `out_min + count - 1` **down** to `out_min`, the same
/// direction the flat compiler walks them).
fn axis_class(i: usize, k: usize, stride: usize, padding: usize, out: usize) -> (u32, u32, u32) {
    let a = i + padding;
    let lo = if a + 1 > k {
        (a + 1 - k).div_ceil(stride)
    } else {
        0
    };
    let hi = (a / stride).min(out - 1);
    if lo > hi {
        return (0, 0, 0); // fully clipped: no surviving taps
    }
    ((a - stride * hi) as u32, (hi - lo + 1) as u32, lo as u32)
}

fn compile_conv(
    spec: &snn_tensor::Conv2dSpec,
    weight: &Tensor,
    h: usize,
    w: usize,
) -> ConvPatterns {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let s = spec.stride;
    let oc_n = spec.out_channels;
    let wd = weight.as_slice();

    let y_class: Vec<(u32, u32, u32)> = (0..h)
        .map(|iy| axis_class(iy, k, s, spec.padding, oh))
        .collect();
    let x_class: Vec<(u32, u32, u32)> = (0..w)
        .map(|ix| axis_class(ix, k, s, spec.padding, ow))
        .collect();

    // Repack weights `[oc][ci][ki][kj]` -> `[ci][ki][kj][oc]` so a
    // pattern's channel-independent weight offsets read each channel's
    // slice contiguously in edge order.
    let ch_stride = k * k * oc_n;
    let mut rw = vec![0.0f32; spec.in_channels * ch_stride];
    for oc in 0..oc_n {
        for ci in 0..spec.in_channels {
            for ki in 0..k {
                for kj in 0..k {
                    rw[(ci * k * k + ki * k + kj) * oc_n + oc] =
                        wd[((oc * spec.in_channels + ci) * k + ki) * k + kj];
                }
            }
        }
    }

    // Pattern key: (y tap class, x tap class) — channels share patterns.
    // The per-axis (k_min, count) pair pins down every (tap, relative
    // output) pair, so equal keys guarantee identical run lists.
    let mut ids: std::collections::HashMap<(u32, u32, u32, u32), u32> =
        std::collections::HashMap::new();
    let mut pat_ptr: Vec<u32> = vec![0];
    let mut t_start: Vec<u32> = Vec::new();
    let mut w_start: Vec<u32> = Vec::new();
    let mut run_len: Vec<u32> = Vec::new();
    let mut pat_degree: Vec<u32> = Vec::new();
    let rows = spec.in_channels * h * w;
    let mut row_pattern: Vec<u32> = Vec::with_capacity(rows);
    let mut row_tbase: Vec<u32> = Vec::with_capacity(rows);
    let mut row_wbase: Vec<u32> = Vec::with_capacity(rows);
    let mut logical_edges = 0usize;

    // One pass over the spatial grid resolves all patterns and the
    // per-pixel map of channel 0; other channels reuse it with a shifted
    // weight base.
    let mut grid_pattern: Vec<u32> = Vec::with_capacity(h * w);
    let mut grid_tbase: Vec<u32> = Vec::with_capacity(h * w);
    for &(ky_min, county, oy_lo) in &y_class {
        for &(kx_min, countx, ox_lo) in &x_class {
            let key = (ky_min, county, kx_min, countx);
            let pid = *ids.entry(key).or_insert_with(|| {
                // Materialize the canonical pattern: one run per
                // surviving tap, in the flat compiler's (and the
                // reference loop's) traversal order — ascending kernel
                // row, kernel column, then output channel within the run.
                for ai in 0..county as usize {
                    let ki = ky_min as usize + ai * s;
                    let dy = county as usize - 1 - ai;
                    for bi in 0..countx as usize {
                        let kj = kx_min as usize + bi * s;
                        let dx = countx as usize - 1 - bi;
                        t_start.push((dy * ow + dx) as u32);
                        w_start.push(((ki * k + kj) * oc_n) as u32);
                        run_len.push(oc_n as u32);
                    }
                }
                pat_ptr.push(t_start.len() as u32);
                pat_degree.push(county * countx * oc_n as u32);
                (pat_ptr.len() - 2) as u32
            });
            grid_pattern.push(pid);
            grid_tbase.push(oy_lo * ow as u32 + ox_lo);
        }
    }
    for ci in 0..spec.in_channels {
        for px in 0..h * w {
            let pid = grid_pattern[px];
            row_pattern.push(pid);
            row_tbase.push(grid_tbase[px]);
            row_wbase.push((ci * ch_stride) as u32);
            logical_edges += pat_degree[pid as usize] as usize;
        }
    }

    ConvPatterns {
        pat_ptr,
        t_start,
        w_start,
        run_len,
        oc_stride: (oh * ow) as u32,
        weight: rw,
        ch_stride,
        row_pattern,
        row_tbase,
        row_wbase,
        pat_degree,
        logical_edges,
    }
}

/// The flat per-pixel conv compiler the pattern table replaces — kept as
/// the ground truth for the deduplication tests. Like the pattern
/// compiler (and the reference integration loop, which charges synaptic
/// ops for every surviving tap), it keeps structurally zero weights.
#[cfg(test)]
fn compile_conv_flat(
    spec: &snn_tensor::Conv2dSpec,
    weight: &Tensor,
    h: usize,
    w: usize,
) -> CsrSynapses {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let wd = weight.as_slice();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); spec.in_channels * h * w];
    for ci in 0..spec.in_channels {
        for iy in 0..h {
            for ix in 0..w {
                let row = &mut rows[(ci * h + iy) * w + ix];
                // Same traversal as the reference integration loop, so each
                // (input, output) pair resolves to the same unique weight.
                for ki in 0..k {
                    let oy_num = iy as isize + spec.padding as isize - ki as isize;
                    if oy_num < 0 || oy_num % spec.stride as isize != 0 {
                        continue;
                    }
                    let oy = (oy_num / spec.stride as isize) as usize;
                    if oy >= oh {
                        continue;
                    }
                    for kj in 0..k {
                        let ox_num = ix as isize + spec.padding as isize - kj as isize;
                        if ox_num < 0 || ox_num % spec.stride as isize != 0 {
                            continue;
                        }
                        let ox = (ox_num / spec.stride as isize) as usize;
                        if ox >= ow {
                            continue;
                        }
                        for oc in 0..spec.out_channels {
                            let widx = ((oc * spec.in_channels + ci) * k + ki) * k + kj;
                            row.push(((oc * oh + oy) as u32 * ow as u32 + ox as u32, wd[widx]));
                        }
                    }
                }
            }
        }
    }
    CsrSynapses::from_rows(rows)
}

fn check_u32_bound(edge_bound: usize, kind: &str) -> Result<(), ConvertError> {
    if edge_bound > u32::MAX as usize {
        return Err(ConvertError::Structure(format!(
            "{kind} layer needs up to {edge_bound} CSR edges, beyond u32 \
             indexing; shard the model (see ROADMAP: sharded weight buffers)"
        )));
    }
    Ok(())
}

impl CsrModel {
    /// Compiles `model` for per-sample input dims (`[C, H, W]`).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry.
    pub fn compile(model: &SnnModel, input_dims: &[usize]) -> Result<Self, ConvertError> {
        // Validates geometry up front and gives the dims at each boundary.
        let trace = model.shape_trace(input_dims)?;
        let mut stages = Vec::with_capacity(model.layers().len());
        let mut total_edges = 0usize;
        for (i, layer) in model.layers().iter().enumerate() {
            let in_dims = &trace[i];
            let out_dims = &trace[i + 1];
            match layer {
                SnnLayer::Conv { spec, weight, bias } => {
                    // Targets, weight offsets and row indices are u32.
                    // Deduplication keeps the *stored* pattern table tiny
                    // — worst case (every pixel its own border class) it
                    // is the flat table of ONE channel — so the old
                    // per-pixel-times-channels MAC bound that rejected
                    // full-width VGG-16 no longer applies.
                    check_u32_bound(in_dims.iter().product::<usize>(), "conv input of")?;
                    check_u32_bound(out_dims.iter().product::<usize>(), "conv output of")?;
                    check_u32_bound(weight.len(), "conv weights of")?;
                    check_u32_bound(
                        in_dims[1] * in_dims[2] * spec.kernel * spec.kernel * spec.out_channels,
                        "conv pattern table of",
                    )?;
                    let syn = compile_conv(spec, weight, in_dims[1], in_dims[2]);
                    total_edges += syn.logical_edges();
                    let spatial = out_dims[1] * out_dims[2];
                    // Broadcast per-channel bias over spatial positions.
                    let mut full_bias = vec![0.0f32; out_dims.iter().product()];
                    for (oc, &b) in bias.as_slice().iter().enumerate() {
                        for v in &mut full_bias[oc * spatial..(oc + 1) * spatial] {
                            *v = b;
                        }
                    }
                    stages.push(CsrStage::Weighted {
                        syn: SynapseTable::Patterned(syn),
                        bias: full_bias,
                    });
                }
                SnnLayer::Dense { weight, bias } => {
                    check_u32_bound(weight.len(), "dense")?;
                    let syn = compile_dense(weight);
                    total_edges += syn.edges();
                    stages.push(CsrStage::Weighted {
                        syn: SynapseTable::Flat(syn),
                        bias: bias.as_slice().to_vec(),
                    });
                }
                SnnLayer::MaxPool { spec } => stages.push(CsrStage::MaxPool {
                    win: spec.window,
                    stride: spec.stride,
                    in_dims: in_dims.clone(),
                }),
                SnnLayer::AvgPool { spec } => stages.push(CsrStage::AvgPool {
                    win: spec.window,
                    stride: spec.stride,
                    in_dims: in_dims.clone(),
                }),
                SnnLayer::Flatten => stages.push(CsrStage::Flatten),
            }
        }
        Ok(Self {
            stages,
            input_dims: input_dims.to_vec(),
            total_edges,
        })
    }

    /// Memory accounting: stored versus flat-equivalent synapse storage.
    pub fn footprint(&self) -> CsrFootprint {
        footprint_of(&self.stages)
    }
}

/// Aggregates the [`CsrFootprint`] of a compiled stage list — shared by the
/// f32 [`CsrModel`] and the packed-code [`crate::QuantCsrModel`], whose only
/// accounting difference is the per-edge payload width (`weight_bytes`).
pub(crate) fn footprint_of<W: Copy>(stages: &[CsrStage<W>]) -> CsrFootprint {
    let mut fp = CsrFootprint::default();
    for stage in stages {
        let CsrStage::Weighted { syn, .. } = stage else {
            continue;
        };
        fp.logical_edges += syn.logical_edges();
        fp.stored_edges += syn.stored_edges();
        fp.stored_bytes += syn.stored_bytes();
        fp.weight_bytes += syn.weight_bytes();
        match syn {
            SynapseTable::Flat(s) => {
                fp.flat_bytes += (s.in_neurons() + 1) * 4 + s.edges() * 8;
            }
            SynapseTable::Patterned(p) => {
                fp.flat_bytes += p.flat_bytes();
                fp.conv_logical_edges += p.logical_edges();
                fp.conv_stored_edges += p.stored_edges();
                fp.patterns += p.patterns();
            }
        }
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel, TtfsKernel};

    fn model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 3, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn dense_csr_matches_weight_matrix() {
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        let CsrStage::Weighted { syn, .. } = &csr.stages[2] else {
            panic!("stage 2 should be the dense layer");
        };
        let dense_w = m.layers()[2].weight().unwrap();
        let in_f = dense_w.dims()[1];
        assert_eq!(syn.in_neurons(), in_f);
        for j in 0..in_f as u32 {
            for (o, w) in syn.edges_of(j) {
                let expect = dense_w.as_slice()[o as usize * in_f + j as usize];
                assert_eq!(w, expect);
            }
        }
    }

    #[test]
    fn conv_csr_reproduces_dense_matvec() {
        // CSR gather must equal the conv applied to a one-hot input.
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        let CsrStage::Weighted { syn, bias, .. } = &csr.stages[0] else {
            panic!("stage 0 should be conv");
        };
        let SnnLayer::Conv {
            spec,
            weight,
            bias: cb,
        } = &m.layers()[0]
        else {
            panic!()
        };
        let kernel = m.kernel();
        let psp = kernel.decode(3);
        for j in [0u32, 5, 17, 31] {
            let mut via_csr = [0.0f32; 3 * 4 * 4];
            for (o, w) in syn.edges_of(j) {
                via_csr[o as usize] += w * psp;
            }
            for (v, b) in via_csr.iter_mut().zip(bias.iter()) {
                *v += b;
            }
            let mut one_hot = vec![0.0f32; 2 * 4 * 4];
            one_hot[j as usize] = psp;
            let x = Tensor::from_vec(one_hot, &[1, 2, 4, 4]).unwrap();
            let y = snn_tensor::conv2d(&x, weight, Some(cb), spec).unwrap();
            for (a, b) in via_csr.iter().zip(y.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn edge_count_matches_macs_for_dense_weights() {
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        // No exactly-zero weights in random init: edges == macs.
        let conv_macs = 3 * 4 * 4 * 2 * 9
            - /* border cut by padding: count separately */ missing_border_edges();
        let dense_macs = 3 * 4 * 4 * 5;
        assert_eq!(csr.total_edges, conv_macs + dense_macs);
    }

    fn missing_border_edges() -> usize {
        // 3x3 same-padding conv on 4x4: an interior input reaches 9 outputs,
        // edges reach 6, corners 4.
        let full = 16 * 9;
        let actual: usize = (0..4usize)
            .flat_map(|y| {
                (0..4usize).map(move |x| {
                    let ry = 3 - (y == 0 || y == 3) as usize;
                    let rx = 3 - (x == 0 || x == 3) as usize;
                    ry * rx
                })
            })
            .sum();
        (full - actual) * 2 * 3
    }

    #[test]
    fn compile_rejects_bad_geometry() {
        let m = model();
        assert!(CsrModel::compile(&m, &[3, 4, 4]).is_err());
        assert!(CsrModel::compile(&m, &[2, 9, 9]).is_err());
    }

    /// Ground-truth check of the deduplicated compiler: every row of the
    /// pattern table must be edge-for-edge identical (same order, same
    /// targets, same weights) to the flat per-pixel CSR, across asymmetric
    /// geometries — non-square inputs, stride > 1, padded borders, even
    /// kernels, and kernels larger than the input.
    #[test]
    fn patterns_match_flat_csr_edge_for_edge() {
        let cases: &[(usize, usize, usize, usize, usize, usize, usize)] = &[
            // (in_c, out_c, k, stride, padding, h, w)
            (2, 3, 3, 1, 1, 5, 7), // non-square, same-padding
            (1, 4, 3, 2, 1, 7, 5), // stride 2, non-square the other way
            (3, 2, 5, 2, 2, 9, 6), // big kernel, stride 2
            (2, 2, 2, 2, 0, 6, 8), // even kernel, no padding
            (1, 3, 3, 3, 1, 8, 8), // stride 3: some pixels fully clipped
            (2, 2, 5, 1, 0, 6, 5), // big valid-only kernel: single output column
            (1, 2, 1, 1, 0, 3, 4), // 1x1 conv: every pixel one class per channel
        ];
        let mut rng = StdRng::seed_from_u64(77);
        for &(ci, co, k, s, p, h, w) in cases {
            let spec = Conv2dSpec::new(ci, co, k, s, p);
            let (oh, ow) = spec.output_hw(h, w);
            assert!(oh > 0 && ow > 0, "degenerate case {spec:?} {h}x{w}");
            let weight = snn_tensor::uniform(&[co, ci, k, k], -1.0, 1.0, &mut rng);
            let flat = compile_conv_flat(&spec, &weight, h, w);
            let pat = compile_conv(&spec, &weight, h, w);
            assert_eq!(pat.in_neurons(), flat.in_neurons(), "{spec:?}");
            assert_eq!(pat.logical_edges(), flat.edges(), "{spec:?}");
            for j in 0..flat.in_neurons() as u32 {
                let f: Vec<(u32, f32)> = flat.edges_of(j).collect();
                let d: Vec<(u32, f32)> = pat.edges_of(j).collect();
                assert_eq!(f, d, "row {j} of {spec:?} on {h}x{w}");
                assert_eq!(pat.degree(j), f.len());
            }
        }
    }

    /// Structurally zero conv weights are retained (channels share one tap
    /// pattern, and the reference backend charges synaptic ops for every
    /// surviving tap regardless of value): edge lists still match the flat
    /// compiler exactly, zero entries included.
    #[test]
    fn patterns_keep_structural_zeros_like_reference() {
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1);
        let mut rng = StdRng::seed_from_u64(78);
        let mut weight = snn_tensor::uniform(&[3, 2, 3, 3], -1.0, 1.0, &mut rng);
        // Zero a scattering of taps, including a full kernel slice.
        let wd = weight.as_mut_slice();
        wd[0] = 0.0;
        wd[7] = 0.0;
        for v in &mut wd[18..27] {
            *v = 0.0;
        }
        let flat = compile_conv_flat(&spec, &weight, 6, 6);
        let pat = compile_conv(&spec, &weight, 6, 6);
        assert_eq!(pat.logical_edges(), flat.edges());
        let mut zeros = 0usize;
        for j in 0..flat.in_neurons() as u32 {
            let f: Vec<(u32, f32)> = flat.edges_of(j).collect();
            let d: Vec<(u32, f32)> = pat.edges_of(j).collect();
            assert_eq!(f, d, "row {j}");
            zeros += d.iter().filter(|(_, w)| *w == 0.0).count();
        }
        assert!(zeros > 0, "the zeroed taps must appear as explicit edges");
    }

    /// The point of the exercise: pattern storage must shrink conv edge
    /// memory by ~C·H·W while the logical view is unchanged.
    #[test]
    fn dedup_cuts_conv_storage() {
        let spec = Conv2dSpec::new(2, 4, 3, 1, 1);
        let mut rng = StdRng::seed_from_u64(79);
        let weight = snn_tensor::uniform(&[4, 2, 3, 3], -1.0, 1.0, &mut rng);
        let pat = compile_conv(&spec, &weight, 16, 16);
        // 3 border classes per axis, shared by both channels -> at most 9
        // patterns.
        assert!(pat.patterns() <= 9, "{} patterns", pat.patterns());
        assert!(
            pat.stored_edges() * 10 <= pat.logical_edges(),
            "stored {} vs logical {}",
            pat.stored_edges(),
            pat.logical_edges()
        );
        assert!(pat.stored_bytes() < pat.flat_bytes() / 4);
    }

    #[test]
    fn footprint_aggregates_stages() {
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        let fp = csr.footprint();
        assert_eq!(fp.logical_edges, csr.total_edges);
        assert!(fp.stored_edges < fp.logical_edges);
        // f32 payloads: 4 bytes per stored weight slot, all inside
        // stored_bytes.
        assert_eq!(fp.weight_bytes % 4, 0);
        assert!(fp.weight_bytes > 0 && fp.weight_bytes < fp.stored_bytes);
        assert!(fp.conv_logical_edges > 0 && fp.conv_stored_edges > 0);
        assert!(fp.patterns > 0);
        assert!(fp.conv_dedup_ratio() > 1.0);
        // Dense stage is flat: logical - conv == stored - conv_stored.
        assert_eq!(
            fp.logical_edges - fp.conv_logical_edges,
            fp.stored_edges - fp.conv_stored_edges
        );
    }
}
