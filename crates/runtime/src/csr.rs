//! CSR compilation of a converted [`SnnModel`].
//!
//! The reference backend re-derives every spike's receptive field from conv
//! geometry on each integration step — branchy index arithmetic in the
//! innermost loop. Compilation walks the model once per deployment and
//! materializes, for every weighted layer, the **outgoing synapse list of
//! each input neuron** in CSR form (`row_ptr` / `col` / `weight`): the
//! integration phase then reduces to one contiguous edge scan per spike.
//! Structurally zero weights are dropped at compile time, so weight
//! sparsity translates directly into fewer edges.
//!
//! Pooling and flatten layers stay event-domain operations (max pooling is
//! not linear, so it cannot be folded into synapse weights); they reuse the
//! exact `snn_sim::phase` primitives so the fast path cannot diverge from
//! the reference semantics.

use snn_tensor::Tensor;
use ttfs_core::{ConvertError, SnnLayer, SnnModel};

/// Per-input-neuron adjacency of one weighted layer, in compressed sparse
/// row form.
#[derive(Debug, Clone)]
pub struct CsrSynapses {
    /// `row_ptr[j]..row_ptr[j + 1]` indexes the edges of input neuron `j`.
    row_ptr: Vec<u32>,
    /// Target (output-neuron) index per edge.
    col: Vec<u32>,
    /// Synapse weight per edge.
    weight: Vec<f32>,
}

impl CsrSynapses {
    /// Number of input neurons (rows).
    pub fn in_neurons(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored (non-zero) synapses.
    pub fn edges(&self) -> usize {
        self.col.len()
    }

    /// The `(target, weight)` edge list of input neuron `j`.
    #[inline]
    pub fn edges_of(&self, j: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.row_ptr[j as usize] as usize;
        let hi = self.row_ptr[j as usize + 1] as usize;
        self.col[lo..hi]
            .iter()
            .copied()
            .zip(self.weight[lo..hi].iter().copied())
    }

    /// Edge count of input neuron `j`.
    #[inline]
    pub fn degree(&self, j: u32) -> usize {
        (self.row_ptr[j as usize + 1] - self.row_ptr[j as usize]) as usize
    }

    fn from_rows(rows: Vec<Vec<(u32, f32)>>) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut col = Vec::with_capacity(total);
        let mut weight = Vec::with_capacity(total);
        row_ptr.push(0u32);
        for row in rows {
            for (c, w) in row {
                col.push(c);
                weight.push(w);
            }
            row_ptr.push(col.len() as u32);
        }
        Self {
            row_ptr,
            col,
            weight,
        }
    }
}

/// One compiled stage of the CSR pipeline.
#[derive(Debug, Clone)]
pub enum CsrStage {
    /// A weighted layer: CSR synapses + per-output bias, followed by a fire
    /// phase unless it is the readout. Integration accumulates in `f64`
    /// and rounds once to `f32` before the f32 bias add — the exact
    /// summation discipline of the reference GEMM, so membrane voltages
    /// (and therefore spike times) match `reference_forward` bit-for-bit.
    Weighted {
        /// Synapse adjacency.
        syn: CsrSynapses,
        /// Per-output-neuron bias (broadcast over spatial positions for
        /// conv).
        bias: Vec<f32>,
    },
    /// Event-domain max pooling (not linear — cannot be CSR-folded).
    MaxPool {
        /// Pool window.
        win: usize,
        /// Pool stride.
        stride: usize,
        /// Input grid dims `[C, H, W]`.
        in_dims: Vec<usize>,
    },
    /// Event-domain average pooling.
    AvgPool {
        /// Pool window.
        win: usize,
        /// Pool stride.
        stride: usize,
        /// Input grid dims `[C, H, W]`.
        in_dims: Vec<usize>,
    },
    /// Flatten: identity on flat neuron indices.
    Flatten,
}

/// The compiled model: stages in execution order, for one fixed input
/// geometry.
#[derive(Debug, Clone)]
pub struct CsrModel {
    /// Compiled stages.
    pub stages: Vec<CsrStage>,
    /// Per-sample input dims the model was compiled for.
    pub input_dims: Vec<usize>,
    /// Total stored synapses across weighted stages.
    pub total_edges: usize,
}

fn compile_dense(weight: &Tensor) -> CsrSynapses {
    let out_f = weight.dims()[0];
    let in_f = weight.dims()[1];
    let wd = weight.as_slice();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); in_f];
    // Row-major [out, in]: walk outputs outer so each row's edge list ends
    // up sorted by target.
    for o in 0..out_f {
        for (j, row) in rows.iter_mut().enumerate() {
            let w = wd[o * in_f + j];
            if w != 0.0 {
                row.push((o as u32, w));
            }
        }
    }
    CsrSynapses::from_rows(rows)
}

fn compile_conv(spec: &snn_tensor::Conv2dSpec, weight: &Tensor, h: usize, w: usize) -> CsrSynapses {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let wd = weight.as_slice();
    let mut rows: Vec<Vec<(u32, f32)>> = vec![Vec::new(); spec.in_channels * h * w];
    for ci in 0..spec.in_channels {
        for iy in 0..h {
            for ix in 0..w {
                let row = &mut rows[(ci * h + iy) * w + ix];
                // Same traversal as the reference integration loop, so each
                // (input, output) pair resolves to the same unique weight.
                for ki in 0..k {
                    let oy_num = iy as isize + spec.padding as isize - ki as isize;
                    if oy_num < 0 || oy_num % spec.stride as isize != 0 {
                        continue;
                    }
                    let oy = (oy_num / spec.stride as isize) as usize;
                    if oy >= oh {
                        continue;
                    }
                    for kj in 0..k {
                        let ox_num = ix as isize + spec.padding as isize - kj as isize;
                        if ox_num < 0 || ox_num % spec.stride as isize != 0 {
                            continue;
                        }
                        let ox = (ox_num / spec.stride as isize) as usize;
                        if ox >= ow {
                            continue;
                        }
                        for oc in 0..spec.out_channels {
                            let widx = ((oc * spec.in_channels + ci) * k + ki) * k + kj;
                            let wv = wd[widx];
                            if wv != 0.0 {
                                row.push(((oc * oh + oy) as u32 * ow as u32 + ox as u32, wv));
                            }
                        }
                    }
                }
            }
        }
    }
    CsrSynapses::from_rows(rows)
}

fn check_u32_bound(edge_bound: usize, kind: &str) -> Result<(), ConvertError> {
    if edge_bound > u32::MAX as usize {
        return Err(ConvertError::Structure(format!(
            "{kind} layer needs up to {edge_bound} CSR edges, beyond u32 \
             indexing; shard the model (see ROADMAP: sharded weight buffers)"
        )));
    }
    Ok(())
}

impl CsrModel {
    /// Compiles `model` for per-sample input dims (`[C, H, W]`).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::Structure`] if `input_dims` does not fit the
    /// model geometry.
    pub fn compile(model: &SnnModel, input_dims: &[usize]) -> Result<Self, ConvertError> {
        // Validates geometry up front and gives the dims at each boundary.
        let trace = model.shape_trace(input_dims)?;
        let mut stages = Vec::with_capacity(model.layers().len());
        let mut total_edges = 0usize;
        for (i, layer) in model.layers().iter().enumerate() {
            let in_dims = &trace[i];
            let out_dims = &trace[i + 1];
            match layer {
                SnnLayer::Conv { spec, weight, bias } => {
                    // CSR indices are u32; refuse models whose edge count
                    // would overflow them (full-width ImageNet-scale conv
                    // layers) instead of silently truncating row_ptr. The
                    // upper bound is the dense MAC count of the layer.
                    let bound = in_dims.iter().product::<usize>()
                        * spec.kernel
                        * spec.kernel
                        * spec.out_channels;
                    check_u32_bound(bound, "conv")?;
                    let syn = compile_conv(spec, weight, in_dims[1], in_dims[2]);
                    total_edges += syn.edges();
                    let spatial = out_dims[1] * out_dims[2];
                    // Broadcast per-channel bias over spatial positions.
                    let mut full_bias = vec![0.0f32; out_dims.iter().product()];
                    for (oc, &b) in bias.as_slice().iter().enumerate() {
                        for v in &mut full_bias[oc * spatial..(oc + 1) * spatial] {
                            *v = b;
                        }
                    }
                    stages.push(CsrStage::Weighted {
                        syn,
                        bias: full_bias,
                    });
                }
                SnnLayer::Dense { weight, bias } => {
                    check_u32_bound(weight.len(), "dense")?;
                    let syn = compile_dense(weight);
                    total_edges += syn.edges();
                    stages.push(CsrStage::Weighted {
                        syn,
                        bias: bias.as_slice().to_vec(),
                    });
                }
                SnnLayer::MaxPool { spec } => stages.push(CsrStage::MaxPool {
                    win: spec.window,
                    stride: spec.stride,
                    in_dims: in_dims.clone(),
                }),
                SnnLayer::AvgPool { spec } => stages.push(CsrStage::AvgPool {
                    win: spec.window,
                    stride: spec.stride,
                    in_dims: in_dims.clone(),
                }),
                SnnLayer::Flatten => stages.push(CsrStage::Flatten),
            }
        }
        Ok(Self {
            stages,
            input_dims: input_dims.to_vec(),
            total_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, Conv2dLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_tensor::Conv2dSpec;
    use ttfs_core::{convert, Base2Kernel, TtfsKernel};

    fn model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new(vec![
            Layer::Conv2d(Conv2dLayer::new(Conv2dSpec::new(2, 3, 3, 1, 1), &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(3 * 4 * 4, 5, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn dense_csr_matches_weight_matrix() {
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        let CsrStage::Weighted { syn, .. } = &csr.stages[2] else {
            panic!("stage 2 should be the dense layer");
        };
        let dense_w = m.layers()[2].weight().unwrap();
        let in_f = dense_w.dims()[1];
        assert_eq!(syn.in_neurons(), in_f);
        for j in 0..in_f as u32 {
            for (o, w) in syn.edges_of(j) {
                let expect = dense_w.as_slice()[o as usize * in_f + j as usize];
                assert_eq!(w, expect);
            }
        }
    }

    #[test]
    fn conv_csr_reproduces_dense_matvec() {
        // CSR gather must equal the conv applied to a one-hot input.
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        let CsrStage::Weighted { syn, bias, .. } = &csr.stages[0] else {
            panic!("stage 0 should be conv");
        };
        let SnnLayer::Conv {
            spec,
            weight,
            bias: cb,
        } = &m.layers()[0]
        else {
            panic!()
        };
        let kernel = m.kernel();
        let psp = kernel.decode(3);
        for j in [0u32, 5, 17, 31] {
            let mut via_csr = [0.0f32; 3 * 4 * 4];
            for (o, w) in syn.edges_of(j) {
                via_csr[o as usize] += w * psp;
            }
            for (v, b) in via_csr.iter_mut().zip(bias.iter()) {
                *v += b;
            }
            let mut one_hot = vec![0.0f32; 2 * 4 * 4];
            one_hot[j as usize] = psp;
            let x = Tensor::from_vec(one_hot, &[1, 2, 4, 4]).unwrap();
            let y = snn_tensor::conv2d(&x, weight, Some(cb), spec).unwrap();
            for (a, b) in via_csr.iter().zip(y.as_slice()) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn edge_count_matches_macs_for_dense_weights() {
        let m = model();
        let csr = CsrModel::compile(&m, &[2, 4, 4]).unwrap();
        // No exactly-zero weights in random init: edges == macs.
        let conv_macs = 3 * 4 * 4 * 2 * 9
            - /* border cut by padding: count separately */ missing_border_edges();
        let dense_macs = 3 * 4 * 4 * 5;
        assert_eq!(csr.total_edges, conv_macs + dense_macs);
    }

    fn missing_border_edges() -> usize {
        // 3x3 same-padding conv on 4x4: an interior input reaches 9 outputs,
        // edges reach 6, corners 4.
        let full = 16 * 9;
        let actual: usize = (0..4usize)
            .flat_map(|y| {
                (0..4usize).map(move |x| {
                    let ry = 3 - (y == 0 || y == 3) as usize;
                    let rx = 3 - (x == 0 || x == 3) as usize;
                    ry * rx
                })
            })
            .sum();
        (full - actual) * 2 * 3
    }

    #[test]
    fn compile_rejects_bad_geometry() {
        let m = model();
        assert!(CsrModel::compile(&m, &[3, 4, 4]).is_err());
        assert!(CsrModel::compile(&m, &[2, 9, 9]).is_err());
    }
}
