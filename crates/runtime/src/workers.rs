//! A small fixed-size `std::thread` worker pool with a submission queue.
//!
//! Deliberately dependency-free (no rayon/crossbeam in the offline build):
//! a shared `Mutex<Receiver>` job queue, one OS thread per worker, jobs as
//! boxed closures. Dropping the pool closes the queue and joins every
//! worker.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size thread pool.
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("snn-runtime-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("worker queue poisoned");
                            guard.recv()
                        };
                        match job {
                            // A panicking job must not kill the worker: the
                            // pool outlives individual requests, and a dead
                            // worker would strand every later submission.
                            // The panic surfaces to the requester as a
                            // dropped response channel.
                            Ok(job) => {
                                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            }
                            Err(_) => break, // queue closed
                        }
                    })
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job; some worker will run it.
    ///
    /// # Panics
    ///
    /// Panics if the pool has already been shut down; use
    /// [`try_execute`](Self::try_execute) where shutdown can race
    /// submission.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.try_execute(job).expect("worker queue closed");
    }

    /// Enqueues a job, reporting a closed queue instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] if the pool has shut down; the job is
    /// dropped, so any response channels it held close on the caller's
    /// side.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let Some(sender) = self.sender.as_ref() else {
            return Err(PoolClosed);
        };
        sender.send(Box::new(job)).map_err(|_| PoolClosed)
    }

    /// Closes the queue and joins every worker after it drains; idempotent.
    /// [`Drop`] calls this, but an explicit call lets shutdown sequencing
    /// be observable (all previously queued jobs have finished on return).
    pub fn shutdown(&mut self) {
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// The pool's queue is closed: jobs can no longer be submitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool already shut down")
    }
}

impl std::error::Error for PoolClosed {}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_all_jobs_across_threads() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..64 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..64 {
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn drop_joins_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..8 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop waits for queue drain + join.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn try_execute_reports_closed_pool() {
        let mut pool = WorkerPool::new(1);
        assert!(pool.try_execute(|| {}).is_ok());
        pool.shutdown();
        assert_eq!(pool.try_execute(|| {}).unwrap_err(), PoolClosed);
        pool.shutdown(); // idempotent
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("job blew up"));
        // The single worker must survive to run this job.
        let (tx, rx) = channel();
        pool.execute(move || {
            tx.send(42u32).unwrap();
        });
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap(),
            42
        );
    }
}
