//! The batched inference server: splits incoming batches into chunk
//! requests, fans them out over the [`WorkerPool`] submission queue, and
//! reassembles ordered logits, merged [`RunStats`] and per-request latency
//! metrics.

use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use snn_sim::RunStats;
use snn_tensor::Tensor;
use ttfs_core::ConvertError;

use crate::metrics::{LatencyRecorder, ThroughputMetrics};
use crate::workers::WorkerPool;
use crate::InferenceBackend;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Images per request chunk (0 = clamp to 1).
    pub chunk_size: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 8,
        }
    }
}

impl ServerConfig {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        }
    }
}

/// Result of one batched run through the server.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Decoded logits `[N, classes]`, in submission order.
    pub logits: Tensor,
    /// Event statistics merged over all chunks.
    pub stats: RunStats,
    /// Latency/throughput metrics over the chunk requests.
    pub metrics: ThroughputMetrics,
}

/// Multi-threaded batched inference front-end over any
/// [`InferenceBackend`].
pub struct InferenceServer {
    backend: Arc<dyn InferenceBackend>,
    pool: WorkerPool,
    chunk_size: usize,
}

impl InferenceServer {
    /// Builds a server around `backend`.
    pub fn new(backend: Arc<dyn InferenceBackend>, config: ServerConfig) -> Self {
        let threads = config.resolved_threads();
        Self {
            backend,
            pool: WorkerPool::new(threads),
            chunk_size: config.chunk_size.max(1),
        }
    }

    /// The wrapped backend's identifier.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Runs a `[N, C, H, W]` batch across the worker pool.
    ///
    /// The batch is split into `chunk_size` requests; each request is one
    /// submission-queue job and one latency sample. Logits come back in
    /// submission order regardless of completion order.
    ///
    /// # Errors
    ///
    /// Returns the first chunk error if any request fails (remaining
    /// results are drained and discarded).
    pub fn run(&self, images: &Tensor) -> Result<BatchReport, ConvertError> {
        let dims = images.dims();
        if dims.len() < 2 {
            return Err(ConvertError::Structure(format!(
                "expected batched input, got {:?}",
                dims
            )));
        }
        let n = dims[0];
        let sample_dims = dims[1..].to_vec();
        let sample_len: usize = sample_dims.iter().product();
        let start_all = Instant::now();

        // Split into chunk requests up front (cheap copies of input slices;
        // inference dominates by orders of magnitude).
        let mut chunks: Vec<Tensor> = Vec::new();
        let mut begin = 0usize;
        while begin < n {
            let end = (begin + self.chunk_size).min(n);
            let mut chunk_dims = vec![end - begin];
            chunk_dims.extend_from_slice(&sample_dims);
            let chunk = Tensor::from_vec(
                images.as_slice()[begin * sample_len..end * sample_len].to_vec(),
                &chunk_dims,
            )
            .map_err(|e| ConvertError::Structure(e.to_string()))?;
            chunks.push(chunk);
            begin = end;
        }

        let (tx, rx) = channel::<(usize, Duration, Result<(Tensor, RunStats), ConvertError>)>();
        let requests = chunks.len();
        for (idx, chunk) in chunks.into_iter().enumerate() {
            let backend = Arc::clone(&self.backend);
            let tx = tx.clone();
            self.pool.execute(move || {
                let start = Instant::now();
                let result = backend.run_batch(&chunk);
                // A closed channel means the caller gave up; nothing to do.
                let _ = tx.send((idx, start.elapsed(), result));
            });
        }
        drop(tx);

        let mut slots: Vec<Option<(Tensor, RunStats)>> = (0..requests).map(|_| None).collect();
        let mut recorder = LatencyRecorder::new();
        let mut first_error: Option<ConvertError> = None;
        for _ in 0..requests {
            let Ok((idx, latency, result)) = rx.recv() else {
                return Err(ConvertError::Structure(
                    "worker pool dropped a request (worker panicked?)".into(),
                ));
            };
            recorder.record(latency);
            match result {
                Ok(ok) => slots[idx] = Some(ok),
                Err(e) => first_error = first_error.or(Some(e)),
            }
        }
        if let Some(e) = first_error {
            return Err(e);
        }

        // Reassemble in submission order.
        let mut merged_stats: Option<RunStats> = None;
        let mut logits_data: Vec<f32> = Vec::new();
        let mut classes = 0usize;
        for slot in slots {
            let (logits, stats) = slot.expect("all request slots filled");
            classes = logits.dims()[1];
            logits_data.extend_from_slice(logits.as_slice());
            match &mut merged_stats {
                None => merged_stats = Some(stats),
                Some(m) => m.absorb(&stats),
            }
        }
        let logits = Tensor::from_vec(logits_data, &[n, classes])
            .map_err(|e| ConvertError::Structure(e.to_string()))?;
        let metrics = recorder.summarize(n, start_all.elapsed());
        Ok(BatchReport {
            logits,
            stats: merged_stats.unwrap_or_default(),
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrEngine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snn_nn::{ActivationLayer, DenseLayer, Flatten, Layer, Relu, Sequential};
    use snn_sim::EventSnn;
    use ttfs_core::{convert, Base2Kernel, SnnModel};

    fn dense_model() -> SnnModel {
        let mut rng = StdRng::seed_from_u64(31);
        let net = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(DenseLayer::new(12, 8, &mut rng)),
            Layer::Activation(ActivationLayer::new(Box::new(Relu))),
            Layer::Dense(DenseLayer::new(8, 3, &mut rng)),
        ]);
        convert(&net, Base2Kernel::paper_default(), 24).unwrap()
    }

    #[test]
    fn pooled_run_matches_single_thread_order() {
        let model = dense_model();
        let mut rng = StdRng::seed_from_u64(32);
        let x = snn_tensor::uniform(&[13, 1, 3, 4], 0.0, 1.0, &mut rng);
        let single = EventSnn::new(&model).run(&x).unwrap().0;

        let backend = Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap());
        let server = InferenceServer::new(
            backend,
            ServerConfig {
                threads: 4,
                chunk_size: 3, // uneven last chunk on purpose
            },
        );
        let report = server.run(&x).unwrap();
        assert_eq!(report.logits.dims(), &[13, 3]);
        assert_eq!(report.logits.as_slice(), single.as_slice());
        assert_eq!(report.stats.batch, 13);
        assert_eq!(report.metrics.requests, 5);
        assert_eq!(report.metrics.images, 13);
        assert!(report.metrics.images_per_sec > 0.0);
        assert!(report.metrics.latency_p99_us >= report.metrics.latency_p50_us);
    }

    #[test]
    fn stats_merge_across_chunks() {
        let model = dense_model();
        let mut rng = StdRng::seed_from_u64(33);
        let x = snn_tensor::uniform(&[8, 1, 3, 4], 0.0, 1.0, &mut rng);
        let reference_stats = EventSnn::new(&model).run(&x).unwrap().1;

        let backend = Arc::new(EventSnn::new(&model));
        let server = InferenceServer::new(
            backend,
            ServerConfig {
                threads: 2,
                chunk_size: 2,
            },
        );
        let report = server.run(&x).unwrap();
        assert_eq!(report.stats, reference_stats);
    }

    struct PanickingBackend(SnnModel);

    impl crate::InferenceBackend for PanickingBackend {
        fn name(&self) -> &'static str {
            "panic"
        }
        fn model(&self) -> &SnnModel {
            &self.0
        }
        fn run_batch(&self, _images: &Tensor) -> Result<(Tensor, RunStats), ConvertError> {
            panic!("backend exploded mid-request");
        }
    }

    #[test]
    fn backend_panic_surfaces_as_error_and_pool_survives() {
        let model = dense_model();
        let server = InferenceServer::new(
            Arc::new(PanickingBackend(model.clone())),
            ServerConfig {
                threads: 2,
                chunk_size: 2,
            },
        );
        let x = Tensor::zeros(&[4, 1, 3, 4]);
        let err = server.run(&x).unwrap_err();
        assert!(
            format!("{err:?}").contains("dropped a request"),
            "structured error, got {err:?}"
        );
        // The pool must survive the panicking jobs for later requests.
        let err2 = server.run(&x).unwrap_err();
        assert!(format!("{err2:?}").contains("dropped a request"));
    }

    #[test]
    fn geometry_error_propagates() {
        let model = dense_model();
        let backend = Arc::new(CsrEngine::compile(&model, &[1, 3, 4]).unwrap());
        let server = InferenceServer::new(backend, ServerConfig::default());
        let bad = Tensor::zeros(&[4, 1, 5, 5]);
        assert!(server.run(&bad).is_err());
        let scalarish = Tensor::zeros(&[4]);
        assert!(server.run(&scalarish).is_err());
    }
}
